//! Integration tests for the obs v2 flight recorder and time-series
//! sampler over the real store pipeline.
//!
//! Three properties, end to end:
//!
//! * a **forced validation abort** (a second session flips a validated
//!   read before commit) snapshots a flight-recorder anomaly whose tail
//!   contains the `abort_invalidated` event itself — on all three
//!   backends;
//! * a non-blocking submission rejected by a full ingest queue
//!   (`try_submit_batch` against a depth-1 lingering queue) snapshots a
//!   `queue_full` anomaly and records the rejection event;
//! * a background [`obs::TimeseriesSampler`] over a live multi-threaded
//!   store emits windows whose per-shard op deltas **sum exactly** to
//!   the final `store.shard<i>.ops` counters (nothing double-counted,
//!   nothing lost between windows).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bundled_refs::obs;
use bundled_refs::prelude::*;
use bundled_refs::txn::ReadWriteTxn;

const SHARDS: usize = 4;
const KEY_RANGE: u64 = 1_000;

fn obs_store<S>(slots: usize) -> BundledStore<u64, u64, S>
where
    S: ShardBackend<u64, u64>,
{
    BundledStore::<u64, u64, S>::with_obs(
        slots,
        ReclaimMode::Reclaim,
        uniform_splits(SHARDS, KEY_RANGE),
        &MetricsRegistry::new(),
    )
}

/// tid 0 = the transaction, tid 1 = the interferer.
fn forced_abort_dumps_anomaly<S: ShardBackend<u64, u64>>(label: &str) {
    let store = obs_store::<S>(2);
    for k in (0..KEY_RANGE).step_by(2) {
        store.insert(0, k, k);
    }
    let trace = Arc::clone(
        store
            .obs_trace()
            .expect("with_obs attaches a flight recorder"),
    );

    let mut txn = ReadWriteTxn::with_tid(&store, 0);
    let v = txn
        .get(&2)
        .unwrap_or_else(|| panic!("{label}: prefilled key"));
    // Flip the validated read through another session before the commit.
    assert!(store.remove(1, &2), "{label}");
    txn.set(2, v.wrapping_add(1));
    assert_eq!(
        txn.commit(),
        Err(TxnAborted),
        "{label}: a stale validated read must abort"
    );

    assert_eq!(trace.anomaly_total(), 1, "{label}");
    let anomalies = trace.anomalies();
    let snap = anomalies
        .iter()
        .find(|a| matches!(a.cause, obs::AnomalyCause::InvalidatedAbort))
        .unwrap_or_else(|| panic!("{label}: abort must snapshot an anomaly"));
    assert_eq!(snap.tid, 0, "{label}: the aborting session's tid");
    assert!(
        snap.events
            .iter()
            .any(|e| e.kind == obs::TraceKind::AbortInvalidated && e.tid == 0),
        "{label}: the anomaly tail must contain the abort event itself"
    );
    // The tail also holds the pipeline stages that led up to the abort.
    assert!(
        snap.events
            .iter()
            .any(|e| e.kind == obs::TraceKind::StageEnd),
        "{label}: the tail must show pipeline history"
    );
    // Counter and recorder agree on the abort count.
    let metrics = store.obs_snapshot(0).expect("store built with obs");
    assert_eq!(
        metrics.get("store.txn.aborts.invalidated"),
        Some(&obs::SnapshotValue::Counter(1)),
        "{label}"
    );
}

#[test]
fn forced_validation_abort_dumps_anomaly_skiplist() {
    forced_abort_dumps_anomaly::<BundledSkipList<u64, u64>>("skiplist");
}

#[test]
fn forced_validation_abort_dumps_anomaly_lazylist() {
    forced_abort_dumps_anomaly::<BundledLazyList<u64, u64>>("lazylist");
}

#[test]
fn forced_validation_abort_dumps_anomaly_citrus() {
    forced_abort_dumps_anomaly::<BundledCitrusTree<u64, u64>>("citrus");
}

#[test]
fn queue_full_rejection_snapshots_an_anomaly() {
    let store = Arc::new(obs_store::<BundledSkipList<u64, u64>>(4));
    // Depth-1 queues and a long linger: the committer sits on the first
    // submission while the burst below fills and overflows the queue.
    let ingest = Ingest::spawn(
        Arc::clone(&store),
        IngestConfig {
            committers: 1,
            max_queue_depth: 1,
            linger: Duration::from_millis(200),
            ..IngestConfig::default()
        },
    );
    let mut tickets = Vec::new();
    let mut rejected = None;
    for i in 0..10_000u64 {
        match ingest.try_submit_batch(vec![TxnOp::Put(i % KEY_RANGE, i)]) {
            Ok(t) => tickets.push(t),
            Err(qf) => {
                rejected = Some(qf);
                break;
            }
        }
    }
    let qf = rejected.expect("a depth-1 lingering queue must reject a burst");
    assert_eq!(qf.ops.len(), 1, "the rejected batch comes back whole");

    let trace = store
        .obs_trace()
        .expect("with_obs attaches a flight recorder");
    assert!(
        trace
            .anomalies()
            .iter()
            .any(|a| matches!(a.cause, obs::AnomalyCause::QueueFull)),
        "the rejection must snapshot a queue_full anomaly"
    );
    assert!(
        trace
            .dump()
            .iter()
            .any(|e| e.kind == obs::TraceKind::QueueFull),
        "the rejection event itself must be in the ring"
    );
    ingest.flush();
    for t in tickets {
        t.wait();
    }
    ingest.shutdown();
}

#[test]
fn window_shard_deltas_reconcile_with_final_counters() {
    const THREADS: usize = 2;
    // Reserved slot `THREADS` is the sampler's dedicated tid.
    let store = Arc::new(obs_store::<BundledSkipList<u64, u64>>(THREADS + 1));
    let st = Arc::clone(&store);
    let sampler = obs::TimeseriesSampler::spawn(Duration::from_millis(10), 512, move || {
        st.obs_snapshot(THREADS).expect("store built with obs")
    });

    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..THREADS)
        .map(|w| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let handle = store.register();
                let mut k = w as u64;
                while !stop.load(Ordering::Relaxed) {
                    handle.insert(k % KEY_RANGE, k);
                    let _ = handle.get(&((k + 7) % KEY_RANGE));
                    k = k.wrapping_add(13);
                }
            })
        })
        .collect();
    let deadline = Instant::now() + Duration::from_millis(80);
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("worker panicked");
    }

    assert_eq!(sampler.dropped(), 0, "512-slot ring must not evict");
    let windows = sampler.stop();
    assert!(
        windows.len() >= 3,
        "an 80ms run at 10ms cadence must emit at least 3 windows, got {}",
        windows.len()
    );
    // Windows are consecutive and internally consistent.
    for (i, w) in windows.iter().enumerate() {
        assert_eq!(w.index, i as u64);
        assert_eq!(
            w.skew.total_ops,
            w.shard_ops.iter().sum::<u64>(),
            "window {i}: skew totals must match the shard vector"
        );
    }
    // The reconciliation: per-shard window deltas sum exactly to the
    // final counters — the sampler's base snapshot predates every op and
    // its final partial window closed after the last one.
    let finals = store.obs_snapshot(0).expect("store built with obs");
    for shard in 0..SHARDS {
        let summed: u64 = windows
            .iter()
            .map(|w| w.shard_ops.get(shard).copied().unwrap_or(0))
            .sum();
        let name = format!("store.shard{shard}.ops");
        match finals.get(&name) {
            Some(&obs::SnapshotValue::Counter(total)) => assert_eq!(
                summed, total,
                "shard {shard}: window deltas must sum to the final counter"
            ),
            other => panic!("{name} missing or mistyped: {other:?}"),
        }
    }
}
