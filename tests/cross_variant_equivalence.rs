//! The bundled structures and their Unsafe counterparts must agree with a
//! `BTreeMap` model (and therefore with each other) on any sequential
//! history — property-based over seeded random operation programs.
//!
//! (This test originally used `proptest`; the build environment has no
//! crates.io access, so the strategy is replaced by an in-file generator:
//! many independent seeds, each expanded into a random op sequence through
//! the workspace `rand` shim. Coverage is equivalent — every op kind, small
//! key universe, hundreds of ops per case.)

use std::collections::BTreeMap;

use bundled_refs::workloads::{make_structure, StructureKind, ALL_KINDS};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Contains(u64),
    Get(u64),
    Range(u64, u64),
}

/// Expand one seed into a random operation program over a 64-key universe.
fn gen_ops(seed: u64) -> Vec<Op> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let len = rng.gen_range(1usize..300);
    (0..len)
        .map(|_| {
            let k = rng.gen_range(0u64..64);
            match rng.gen_range(0u32..5) {
                0 => Op::Insert(k, rng.gen_range(0..u64::MAX)),
                1 => Op::Remove(k),
                2 => Op::Contains(k),
                3 => Op::Get(k),
                _ => {
                    let k2 = rng.gen_range(0u64..64);
                    Op::Range(k.min(k2), k.max(k2))
                }
            }
        })
        .collect()
}

fn check_kind(kind: StructureKind, ops: &[Op]) {
    let s = make_structure(kind, 1);
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut out = Vec::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                // Set semantics: inserting an existing key fails and leaves
                // the original value untouched (model mirrors that).
                let was_absent = !model.contains_key(&k);
                assert_eq!(s.insert(0, k, v), was_absent, "{kind:?} insert {k}");
                if was_absent {
                    model.insert(k, v);
                }
                assert_eq!(
                    s.get(0, &k),
                    model.get(&k).copied(),
                    "{kind:?} value after insert {k}"
                );
            }
            Op::Remove(k) => {
                assert_eq!(
                    s.remove(0, &k),
                    model.remove(&k).is_some(),
                    "{kind:?} remove {k}"
                )
            }
            Op::Contains(k) => {
                assert_eq!(
                    s.contains(0, &k),
                    model.contains_key(&k),
                    "{kind:?} contains {k}"
                )
            }
            Op::Get(k) => assert_eq!(s.get(0, &k), model.get(&k).copied(), "{kind:?} get {k}"),
            Op::Range(lo, hi) => {
                s.range_query(0, &lo, &hi, &mut out);
                let expected: Vec<(u64, u64)> =
                    model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
                assert_eq!(out, expected, "{kind:?} range [{lo}, {hi}]");
            }
        }
    }
    assert_eq!(s.len(0), model.len(), "{kind:?} final size");
}

/// Sequence semantics must hold for every variant, bundled or not.
#[test]
fn all_variants_match_btreemap_model() {
    const CASES: u64 = 24;
    for case in 0..CASES {
        let ops = gen_ops(0xe9_u64 ^ (case.wrapping_mul(0x9e3779b97f4a7c15)));
        for kind in ALL_KINDS {
            check_kind(kind, &ops);
        }
    }
}

/// A failed insert must keep the original value (set semantics), on every
/// variant.
#[test]
fn duplicate_insert_preserves_original_value() {
    for kind in ALL_KINDS {
        let s = make_structure(kind, 1);
        assert!(s.insert(0, 7, 70));
        assert!(!s.insert(0, 7, 99));
        assert_eq!(s.get(0, &7), Some(70), "{kind:?}");
    }
}
