//! The bundled structures and their Unsafe counterparts must agree with a
//! `BTreeMap` model (and therefore with each other) on any sequential
//! history — property-based, via proptest.

use std::collections::BTreeMap;

use bundled_refs::workloads::{make_structure, StructureKind, ALL_KINDS};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Contains(u64),
    Get(u64),
    Range(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..64, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0u64..64).prop_map(Op::Remove),
        (0u64..64).prop_map(Op::Contains),
        (0u64..64).prop_map(Op::Get),
        (0u64..64, 0u64..64).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
    ]
}

fn check_kind(kind: StructureKind, ops: &[Op]) {
    let s = make_structure(kind, 1);
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut out = Vec::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                // Set semantics: inserting an existing key fails and leaves
                // the original value untouched (model mirrors that).
                let was_absent = !model.contains_key(&k);
                assert_eq!(s.insert(0, k, v), was_absent, "{kind:?} insert {k}");
                if was_absent {
                    model.insert(k, v);
                }
                assert_eq!(s.get(0, &k), model.get(&k).copied(), "{kind:?} value after insert {k}");
            }
            Op::Remove(k) => {
                assert_eq!(s.remove(0, &k), model.remove(&k).is_some(), "{kind:?} remove {k}")
            }
            Op::Contains(k) => {
                assert_eq!(s.contains(0, &k), model.contains_key(&k), "{kind:?} contains {k}")
            }
            Op::Get(k) => assert_eq!(s.get(0, &k), model.get(&k).copied(), "{kind:?} get {k}"),
            Op::Range(lo, hi) => {
                s.range_query(0, &lo, &hi, &mut out);
                let expected: Vec<(u64, u64)> =
                    model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
                assert_eq!(out, expected, "{kind:?} range [{lo}, {hi}]");
            }
        }
    }
    assert_eq!(s.len(0), model.len(), "{kind:?} final size");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn all_variants_match_btreemap_model(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        // Sequence semantics must hold for every variant, bundled or not.
        for kind in ALL_KINDS {
            check_kind(kind, &ops);
        }
    }
}

/// Wait: a failed insert must keep the original value (set semantics), on
/// every variant.
#[test]
fn duplicate_insert_preserves_original_value() {
    for kind in ALL_KINDS {
        let s = make_structure(kind, 1);
        assert!(s.insert(0, 7, 70));
        assert!(!s.insert(0, 7, 99));
        assert_eq!(s.get(0, &7), Some(70), "{kind:?}");
    }
}
