//! Prepare-cursor equivalence and torture properties.
//!
//! The cursor protocol (`ShardBackend::txn_cursor` + the
//! `bundle::PrepareCursor` seeks) must be **observationally identical**
//! to the point prepares it replaced — only faster. Two seeded
//! property suites check that on all three backends:
//!
//! 1. **Pipeline equivalence.** Identical key-sorted batches (random
//!    put/set/remove mixes) replay through the cursor-driven
//!    `apply_grouped` store pipeline and through a test-local
//!    point-descent replay — a raw shard staging every op via a **fresh
//!    one-op cursor** (root descent per op, the shape the removed
//!    `apply_grouped_unhinted` shim measured), all committed under one
//!    timestamp — asserting identical per-op outcomes, identical
//!    post-state range queries, and agreement with a `BTreeMap`
//!    reference model throughout.
//! 2. **Backward-seek / frontier-invalidation torture.** A cursor builds
//!    *unlocked* frontier hints through `seek_read`s, foreign primitive
//!    updates invalidate the retained positions (removals mark frontier
//!    nodes; Citrus two-children removals relocate keys upward across
//!    the retained spine), and the cursor then stages writes in
//!    *descending* key order — every seek either resumes correctly or
//!    falls back to a root descent, and every outcome must still match
//!    the model exactly. Aborted cursor batches must leave no trace.

use std::collections::BTreeMap;

use bundled_refs::prelude::*;
use bundled_refs::store::BundledStore;

fn xorshift(seed: &mut u64) -> u64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    *seed
}

/// A random key-sorted, duplicate-free batch over `key_range`.
fn random_batch(seed: &mut u64, key_range: u64, max_len: usize) -> Vec<TxnOp<u64, u64>> {
    let len = 1 + (xorshift(seed) as usize) % max_len;
    let mut keys: Vec<u64> = (0..len).map(|_| xorshift(seed) % key_range).collect();
    keys.sort_unstable();
    keys.dedup();
    keys.into_iter()
        .map(|k| match xorshift(seed) % 3 {
            0 => TxnOp::Put(k, xorshift(seed)),
            1 => TxnOp::Set(k, xorshift(seed)),
            _ => TxnOp::Remove(k),
        })
        .collect()
}

/// What one op does to the reference model; returns the op's expected
/// outcome bit (put inserted / set replaced / remove removed).
fn apply_model(model: &mut BTreeMap<u64, u64>, op: &TxnOp<u64, u64>) -> bool {
    match op {
        TxnOp::Put(k, v) => {
            if model.contains_key(k) {
                false
            } else {
                model.insert(*k, *v);
                true
            }
        }
        TxnOp::Set(k, v) => model.insert(*k, *v).is_some(),
        TxnOp::Remove(k) => model.remove(k).is_some(),
    }
}

/// Replay one key-sorted batch on a raw shard through **fresh one-op
/// cursors** — every op pays its own root descent, the point-prepare
/// shape the removed `apply_grouped_unhinted` shim exercised — with all
/// staged changes committed under one timestamp. Returns per-op
/// outcomes.
fn replay_point<S: ShardBackend<u64, u64>>(
    ctx: &bundle::RqContext,
    shard: &S,
    ops: &[TxnOp<u64, u64>],
) -> Vec<bool> {
    let mut txn = shard.txn_begin(0);
    let mut outcomes = Vec::with_capacity(ops.len());
    for op in ops {
        let mut cur = shard.txn_cursor(txn);
        let applied = match op {
            TxnOp::Put(k, v) => cur.seek_prepare_put(*k, *v),
            TxnOp::Set(k, v) => cur
                .seek_prepare_remove(k)
                .and_then(|existed| cur.seek_prepare_put(*k, *v).map(|_| existed)),
            TxnOp::Remove(k) => cur.seek_prepare_remove(k),
        }
        .expect("single-threaded replay cannot conflict");
        txn = cur.finish();
        outcomes.push(applied);
    }
    let ts = ctx.advance(0);
    shard.txn_finalize(txn, ts);
    outcomes
}

fn pipeline_equivalence<S: ShardBackend<u64, u64>>(label: &str) {
    const KEY_RANGE: u64 = 600;
    const ROUNDS: usize = 200;
    let hinted = BundledStore::<u64, u64, S>::new(2, uniform_splits(4, KEY_RANGE));
    let ctx = bundle::RqContext::new(2);
    let point = S::build(2, ebr::ReclaimMode::Reclaim, &ctx);
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut seed = 0xc0ff_ee5e_ed00_u64 ^ label.len() as u64;
    let mut out_h = Vec::new();
    let mut out_p = Vec::new();
    for round in 0..ROUNDS {
        let ops = random_batch(&mut seed, KEY_RANGE, 48);
        let expected: Vec<bool> = ops.iter().map(|op| apply_model(&mut model, op)).collect();
        let rh = hinted.apply_grouped(0, &ops);
        let rp = replay_point(&ctx, &point, &ops);
        assert_eq!(rh.applied, expected, "{label}: cursor outcomes vs model");
        assert_eq!(
            rh.applied, rp,
            "{label}: cursor vs point outcomes (round {round})"
        );
        if round.is_multiple_of(16) || round == ROUNDS - 1 {
            hinted.range_query(1, &0, &KEY_RANGE, &mut out_h);
            let announced = ctx.start_rq(1);
            point.range_query_at(1, announced, &0, &KEY_RANGE, &mut out_p);
            ctx.finish_rq(1);
            let reference: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
            assert_eq!(out_h, reference, "{label}: cursor post-state vs model");
            assert_eq!(out_p, reference, "{label}: point post-state vs model");
        }
    }
    assert_eq!(
        hinted.txn_stats().commits,
        ROUNDS as u64,
        "{label}: every grouped batch commits"
    );
}

#[test]
fn cursor_and_point_pipelines_are_equivalent_on_all_backends() {
    pipeline_equivalence::<skiplist::BundledSkipList<u64, u64>>("skiplist");
    pipeline_equivalence::<lazylist::BundledLazyList<u64, u64>>("lazylist");
    pipeline_equivalence::<citrus::BundledCitrusTree<u64, u64>>("citrus");
}

fn backward_and_invalidation_torture<S: ShardBackend<u64, u64>>(label: &str) {
    const KEY_RANGE: u64 = 400;
    const ROUNDS: usize = 150;
    let ctx = bundle::RqContext::new(2);
    let shard = S::build(2, ebr::ReclaimMode::Reclaim, &ctx);
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut seed = 0xdeadf00d_u64 ^ label.len() as u64;
    for _ in 0..KEY_RANGE / 2 {
        let k = xorshift(&mut seed) % KEY_RANGE;
        if shard.insert(0, k, k) {
            model.insert(k, k);
        }
    }
    for round in 0..ROUNDS {
        let mut cur = shard.txn_cursor(shard.txn_begin(1));
        // Phase 1: reads build *unlocked* frontier hints (ascending, so
        // they resume; the cursor holds no locks yet).
        let mut probes: Vec<u64> = (0..6).map(|_| xorshift(&mut seed) % KEY_RANGE).collect();
        probes.sort_unstable();
        for k in &probes {
            assert_eq!(
                cur.seek_read(k),
                model.get(k).copied(),
                "{label}: hinted read (round {round})"
            );
        }
        // Phase 2: foreign primitive updates invalidate retained
        // positions — removals mark frontier nodes, inserts shift gaps,
        // and Citrus two-children removals relocate keys upward across
        // the retained spine. Safe: the cursor still holds no locks.
        for _ in 0..4 {
            let k = xorshift(&mut seed) % KEY_RANGE;
            if xorshift(&mut seed).is_multiple_of(2) {
                if shard.insert(0, k, k + 1) {
                    model.insert(k, k + 1);
                }
            } else if shard.remove(0, &k) {
                model.remove(&k);
            }
        }
        // Phase 3: stage writes in DESCENDING key order — every seek is
        // a backward seek over a (possibly invalidated) frontier, and
        // every outcome must still be exact.
        let mut keys: Vec<u64> = (0..8).map(|_| xorshift(&mut seed) % KEY_RANGE).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.reverse();
        let abort = xorshift(&mut seed).is_multiple_of(4);
        let rollback = model.clone();
        for k in keys {
            if xorshift(&mut seed).is_multiple_of(2) {
                let v = xorshift(&mut seed);
                assert_eq!(
                    cur.seek_prepare_put(k, v),
                    Ok(!model.contains_key(&k)),
                    "{label}: descending put outcome (round {round})"
                );
                model.entry(k).or_insert(v);
            } else {
                assert_eq!(
                    cur.seek_prepare_remove(&k),
                    Ok(model.remove(&k).is_some()),
                    "{label}: descending remove outcome (round {round})"
                );
            }
        }
        let stats = cur.stats();
        assert!(
            stats.hinted + stats.descents >= 6,
            "{label}: every seek is counted: {stats:?}"
        );
        let txn = cur.finish();
        if abort {
            shard.txn_abort(txn);
            model = rollback;
        } else {
            let ts = ctx.advance(1);
            shard.txn_finalize(txn, ts);
        }
        // The shard must match the model exactly after commit or abort.
        if round.is_multiple_of(10) || round == ROUNDS - 1 {
            let mut out = Vec::new();
            let announced = ctx.start_rq(1);
            shard.range_query_at(1, announced, &0, &KEY_RANGE, &mut out);
            ctx.finish_rq(1);
            let reference: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
            assert_eq!(out, reference, "{label}: post-round state (round {round})");
        }
    }
}

#[test]
fn backward_seeks_and_invalidated_frontiers_stay_exact_on_all_backends() {
    backward_and_invalidation_torture::<skiplist::BundledSkipList<u64, u64>>("skiplist");
    backward_and_invalidation_torture::<lazylist::BundledLazyList<u64, u64>>("lazylist");
    backward_and_invalidation_torture::<citrus::BundledCitrusTree<u64, u64>>("citrus");
}

/// Ascending staged batches must actually ride the frontier (the
/// performance contract behind the whole protocol, pinned as behaviour:
/// a cursor that silently root-descends per op would still pass the
/// equivalence suite).
fn ascending_batches_resume<S: ShardBackend<u64, u64>>(label: &str) {
    let ctx = bundle::RqContext::new(1);
    let shard = S::build(1, ebr::ReclaimMode::Reclaim, &ctx);
    for k in (1..2_000u64).step_by(2) {
        shard.insert(0, k, k);
    }
    let mut cur = shard.txn_cursor(shard.txn_begin(0));
    for k in (100..1_000u64).step_by(2) {
        assert_eq!(cur.seek_prepare_put(k, k), Ok(true), "{label}: key {k}");
    }
    let stats = cur.stats();
    assert!(
        stats.hinted as f64 >= 0.9 * (stats.hinted + stats.descents) as f64,
        "{label}: ascending seeks must mostly resume from the frontier: {stats:?}"
    );
    let ts = ctx.advance(0);
    shard.txn_finalize(cur.finish(), ts);
}

#[test]
fn ascending_batches_ride_the_frontier_on_all_backends() {
    ascending_batches_resume::<skiplist::BundledSkipList<u64, u64>>("skiplist");
    ascending_batches_resume::<lazylist::BundledLazyList<u64, u64>>("lazylist");
    ascending_batches_resume::<citrus::BundledCitrusTree<u64, u64>>("citrus");
}
