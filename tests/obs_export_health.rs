//! Integration tests for the obs v3 live introspection endpoint and the
//! health/SLO monitor over the real store pipeline.
//!
//! Two properties, end to end:
//!
//! * an [`obs::ExportServer`] wired to a live multi-threaded store
//!   answers a raw-`TcpStream` scrape **while workers hammer the
//!   store**: `/metrics` is valid Prometheus text exposition (shard
//!   labels lifted out of metric names, cumulative histogram buckets),
//!   the JSON endpoints answer, and an unknown path 404s;
//! * a deliberately skewed workload (every put routed to shard 0)
//!   driven through a sampler + [`obs::HealthMonitor`] sustains a
//!   `hot_shard` **critical** finding naming shard 0 — the resharding
//!   trigger the ROADMAP's skew handoff contract consumes.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bundled_refs::obs;
use bundled_refs::prelude::*;

const SHARDS: usize = 4;
const KEY_RANGE: u64 = 1_000;

fn obs_store(slots: usize) -> BundledStore<u64, u64, BundledSkipList<u64, u64>> {
    BundledStore::with_obs(
        slots,
        ReclaimMode::Reclaim,
        uniform_splits(SHARDS, KEY_RANGE),
        &MetricsRegistry::new(),
    )
}

/// One raw HTTP/1.0 GET against `addr`; returns (status line, body).
fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to export server");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nConnection: close\r\n\r\n").as_bytes())
        .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    (
        head.lines().next().unwrap_or_default().to_string(),
        body.to_string(),
    )
}

/// Every `<name>_bucket` family in a Prometheus body must be cumulative:
/// within one label set, counts never decrease as `le` grows, and the
/// `+Inf` bucket equals the family's `_count`.
fn assert_cumulative_buckets(body: &str, family: &str) {
    let mut prev: Option<u64> = None;
    let mut inf: Option<u64> = None;
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix(&format!("{family}_bucket{{le=\"")) {
            let (le, count) = rest.split_once("\"}").expect("bucket line shape");
            let count: u64 = count.trim().parse().expect("bucket count");
            if let Some(p) = prev {
                assert!(
                    count >= p,
                    "{family}: bucket counts must be cumulative ({count} < {p} at le={le})"
                );
            }
            prev = Some(count);
            if le == "+Inf" {
                inf = Some(count);
            }
        }
    }
    let inf = inf.unwrap_or_else(|| panic!("{family}: missing +Inf bucket"));
    let count_line = format!("{family}_count ");
    let count: u64 = body
        .lines()
        .find_map(|l| l.strip_prefix(&count_line))
        .unwrap_or_else(|| panic!("{family}: missing _count"))
        .trim()
        .parse()
        .expect("_count value");
    assert_eq!(inf, count, "{family}: +Inf bucket must equal _count");
}

#[test]
fn live_scrape_answers_while_store_is_hammered() {
    const THREADS: usize = 2;
    // Reserved slots beyond the workers: tid THREADS for the export
    // server's snapshot closure.
    let store = Arc::new(obs_store(THREADS + 1));
    let st = Arc::clone(&store);
    let sources = obs::ExportSources::new()
        .with_snapshot(move || st.obs_snapshot(THREADS).expect("store built with obs"))
        .with_build_info(vec![
            ("schema".into(), "5".into()),
            ("bench".into(), "integration".into()),
        ]);
    let server = obs::ExportServer::spawn("127.0.0.1:0", sources).expect("bind loopback");
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..THREADS)
        .map(|w| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let handle = store.register();
                let mut k = w as u64;
                while !stop.load(Ordering::Relaxed) {
                    let _ = handle.apply_txn(&[TxnOp::Put(k % KEY_RANGE, k)]);
                    let _ = handle.get(&((k + 7) % KEY_RANGE));
                    k = k.wrapping_add(13);
                }
            })
        })
        .collect();
    // Let the pipeline histograms fill before the scrape.
    std::thread::sleep(Duration::from_millis(50));

    // Mid-flight scrapes: repeat a few to exercise concurrent conns.
    for _ in 0..3 {
        let (status, body) = get(addr, "/metrics");
        assert!(status.contains("200"), "scrape status {status:?}");
        assert!(
            body.contains("store_shard_ops{shard=\"0\"}"),
            "shard index must be lifted into a label:\n{body}"
        );
        assert!(
            body.contains("# TYPE store_pipeline_finalize_ns histogram"),
            "pipeline histograms must be exposed"
        );
        assert!(body.contains("store_pipeline_finalize_ns_bucket{le="));
        assert_cumulative_buckets(&body, "store_pipeline_finalize_ns");
        assert_cumulative_buckets(&body, "store_pipeline_intents_ns");
        assert!(
            body.contains("store_build_info{") && body.contains("schema=\"5\""),
            "build info must render as an info metric"
        );
        assert!(body.contains("obs_uptime_ns"), "uptime gauge");
        assert!(body.contains("obs_export_scrapes"), "scrape counter");
    }

    // The JSON endpoints answer mid-flight too; unwired ones degrade.
    let (status, body) = get(addr, "/snapshot.json");
    assert!(status.contains("200"));
    assert!(body.contains("\"store.txn.commits\""));
    let (status, body) = get(addr, "/windows.json");
    assert!(status.contains("200"));
    assert_eq!(body, "{\"disabled\":true}", "no sampler wired");
    let (status, _) = get(addr, "/health.json");
    assert!(status.contains("200"));
    let (status, _) = get(addr, "/nope");
    assert!(
        status.contains("404"),
        "unknown path must 404, got {status}"
    );

    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("worker panicked");
    }
    assert!(server.scrapes() >= 7, "every GET above counts as a scrape");
}

#[test]
fn skewed_load_sustains_a_hot_shard_finding() {
    const THREADS: usize = 2;
    // Reserved slot THREADS is the sampler's dedicated tid.
    let store = Arc::new(obs_store(THREADS + 1));
    let registry = store.obs_registry().expect("store built with obs").clone();
    let policy = obs::SloPolicy::parse("max_skew_share=0.5,sustain=2,recover=2,min_window_ops=50")
        .expect("valid spec");
    let monitor = Arc::new(obs::HealthMonitor::new(
        policy,
        &registry,
        store.obs_trace().cloned(),
    ));
    let st = Arc::clone(&store);
    let m = Arc::clone(&monitor);
    let sampler = obs::TimeseriesSampler::spawn_with(
        Duration::from_millis(10),
        512,
        move || st.obs_snapshot(THREADS).expect("store built with obs"),
        Some(Box::new(move |w: &obs::Window| {
            let _ = m.observe(w);
        })),
        None,
    );

    // Every put lands below the first split: shard 0 takes ~all traffic.
    let hot_span = (KEY_RANGE / SHARDS as u64).max(1);
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..THREADS)
        .map(|w| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let handle = store.register();
                let mut k = w as u64;
                while !stop.load(Ordering::Relaxed) {
                    let _ = handle.apply_txn(&[TxnOp::Put(k % hot_span, k)]);
                    k = k.wrapping_add(13);
                }
            })
        })
        .collect();

    // Wait until the monitor escalates instead of sleeping a fixed time;
    // 2 sustained 10ms windows suffice, 5s is the hang backstop.
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline && monitor.report().worst_level() < obs::HealthLevel::Critical {
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("worker panicked");
    }
    let _ = sampler.stop();

    let report = monitor.report();
    assert!(
        report.windows_observed >= 2,
        "the sampler must have fed the monitor, saw {}",
        report.windows_observed
    );
    let finding = report
        .findings
        .iter()
        .find(|f| f.check == obs::HealthCheck::HotShard)
        .unwrap_or_else(|| {
            panic!(
                "sustained skew must escalate hot_shard to critical; report: {}",
                report.json()
            )
        });
    assert_eq!(finding.level, obs::HealthLevel::Critical);
    assert_eq!(finding.shard, 0, "the finding must name the hot shard");
    assert!(finding.value > 0.5, "observed share above the threshold");
    // The escalation is cross-checked in the registry and the recorder.
    let snap = store.obs_snapshot(0).expect("store built with obs");
    match snap.get("obs.health.transitions.critical") {
        Some(&obs::SnapshotValue::Counter(n)) => assert!(n >= 1, "critical transition counted"),
        other => panic!("obs.health.transitions.critical missing: {other:?}"),
    }
    let trace = store.obs_trace().expect("with_obs attaches a recorder");
    assert!(
        trace
            .anomalies()
            .iter()
            .any(|a| matches!(a.cause, obs::AnomalyCause::SloViolation)),
        "a critical escalation must snapshot an slo_violation anomaly"
    );
    // The report's JSON embeds the finding the --json records carry.
    let json = report.json();
    assert!(json.contains("\"check\":\"hot_shard\""), "{json}");
    assert!(json.contains("\"level\":\"critical\""), "{json}");
}
