//! End-to-end crash-recovery: a store with an attached [`GroupWal`]
//! commits known groups through the real pipeline, the log is cut at an
//! arbitrary byte boundary (simulating a crash mid-write), and
//! [`WalRecovery::replay`] rebuilds a fresh store that must equal a
//! plain decode-and-fold of the surviving log prefix — on every backend.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use bundled_refs::prelude::*;
use bundled_refs::store::{uniform_splits, BundledStore, CommitLog, ShardBackend, TxnOp};
use bundled_refs::wal::{LogPosition, WalRecovery};

const KEY_RANGE: u64 = 1024;
const SHARDS: usize = 4;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "wal-int-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic op mix: group `g` touches keys spread over every shard,
/// mixing fresh puts, upserts, duplicate puts and removes so the logged
/// outcome flags carry real information.
fn group_ops(g: u64) -> Vec<TxnOp<u64, u64>> {
    let base = (g * 37) % (KEY_RANGE / 2);
    vec![
        TxnOp::Put(base, g),
        TxnOp::Set(base + 200, g * 10),
        TxnOp::Put(base + 400, g + 1),
        TxnOp::Remove((g * 53) % KEY_RANGE),
    ]
}

/// Run `groups` commits through a WAL-attached store, then return the
/// log dir and the final durable position.
fn write_log<S>(dir: &PathBuf, groups: u64) -> LogPosition
where
    S: ShardBackend<u64, u64> + Send + Sync + 'static,
{
    let splits = uniform_splits(SHARDS, KEY_RANGE);
    let mut store = BundledStore::<u64, u64, S>::new(2, splits);
    let wal = Arc::new(GroupWal::<u64, u64>::create(dir, SyncPolicy::Always).expect("create"));
    store.attach_commit_log(Arc::clone(&wal) as Arc<dyn CommitLog<u64, u64>>);
    let store = Arc::new(store);
    let handle = store.register();
    for g in 0..groups {
        let mut ops = group_ops(g);
        ops.sort_by_key(|op| *op.key());
        ops.dedup_by(|a, b| a.key() == b.key());
        handle.apply_grouped(&ops);
    }
    wal.durable_position()
}

/// Fold the decoded log into the expected final map (`Set` always lands,
/// `Put`/`Remove` only when their logged outcome applied).
fn fold_log(dir: &PathBuf) -> BTreeMap<u64, u64> {
    let decoded = WalRecovery::scan::<u64, u64>(dir).expect("scan");
    let mut state = BTreeMap::new();
    for record in &decoded.records {
        for gop in &record.ops {
            match &gop.op {
                TxnOp::Put(k, v) if gop.applied => {
                    state.insert(*k, *v);
                }
                TxnOp::Set(k, v) => {
                    state.insert(*k, *v);
                }
                TxnOp::Remove(k) if gop.applied => {
                    state.remove(k);
                }
                _ => {}
            }
        }
    }
    state
}

/// Replay the (possibly cut) log into a fresh store and return its full
/// contents.
fn replay_state<S>(dir: &PathBuf) -> BTreeMap<u64, u64>
where
    S: ShardBackend<u64, u64> + Send + Sync + 'static,
{
    let splits = uniform_splits(SHARDS, KEY_RANGE);
    let store = Arc::new(BundledStore::<u64, u64, S>::new(2, splits));
    WalRecovery::replay(dir, &store).expect("replay");
    let handle = store.register();
    handle.range_query_vec(&0, &u64::MAX).into_iter().collect()
}

/// Clean replay (no cut): the recovered store equals the decode-fold and
/// replays every group, on every backend.
#[test]
fn clean_replay_matches_fold_on_every_backend() {
    fn check<S>(tag: &str)
    where
        S: ShardBackend<u64, u64> + Send + Sync + 'static,
    {
        let dir = tmpdir(tag);
        write_log::<S>(&dir, 40);
        let recovered = replay_state::<S>(&dir);
        let expected = fold_log(&dir);
        assert_eq!(recovered, expected, "{tag}: recovered != decode-fold");
        assert!(!recovered.is_empty(), "{tag}: writes survived");
        let _ = std::fs::remove_dir_all(&dir);
    }
    check::<BundledSkipList<u64, u64>>("clean-skiplist");
    check::<BundledCitrusTree<u64, u64>>("clean-citrus");
    check::<BundledLazyList<u64, u64>>("clean-list");
}

/// Cut the log at every byte boundary of its tail region: whatever
/// survives must decode to a group-aligned prefix and the replayed store
/// must equal its fold — a crash at any byte is recoverable.
#[test]
fn cut_at_every_byte_boundary_recovers_a_group_prefix() {
    type S = BundledSkipList<u64, u64>;
    let dir = tmpdir("sweep");
    let durable = write_log::<S>(&dir, 12);
    let full = std::fs::read(
        std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path(),
    )
    .expect("read segment");
    assert_eq!(full.len() as u64, durable.bytes);
    let full_groups = WalRecovery::scan::<u64, u64>(&dir)
        .expect("scan")
        .stats
        .groups;
    assert_eq!(full_groups, 12);
    // Sweep the last few frames byte-by-byte (the whole file would be
    // slow for no extra coverage — every tear class appears in the tail).
    let start = full.len().saturating_sub(200);
    let seg_path = wal_segment_path(&dir, durable.segment);
    for cut in (start..=full.len()).rev() {
        std::fs::write(&seg_path, &full[..cut]).expect("rewrite");
        let outcome = WalRecovery::scan::<u64, u64>(&dir).expect("scan cut");
        assert!(
            outcome.stats.groups <= full_groups,
            "cut {cut}: groups grew"
        );
        let recovered = replay_state::<S>(&dir);
        let expected = fold_log(&dir);
        assert_eq!(recovered, expected, "cut at byte {cut}: replay != fold");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `WalRecovery::cut` at a sampled durable position plus torn bytes:
/// replay on every backend equals the fold of the surviving prefix, and
/// the prefix is exactly the groups durable at the sample.
#[test]
fn kill_point_recovery_on_every_backend() {
    fn check<S>(tag: &str)
    where
        S: ShardBackend<u64, u64> + Send + Sync + 'static,
    {
        let dir = tmpdir(tag);
        let durable = write_log::<S>(&dir, 20);
        // Re-open and append 5 more groups WITHOUT syncing (policy Off):
        // they are past the sampled durable position.
        {
            let wal = GroupWal::<u64, u64>::open(&dir, SyncPolicy::Off).expect("open");
            for g in 100..105u64 {
                let mut ops = group_ops(g);
                ops.sort_by_key(|op| *op.key());
                ops.dedup_by(|a, b| a.key() == b.key());
                let order: Vec<usize> = (0..ops.len()).collect();
                let applied = vec![true; ops.len()];
                wal.log_group(0, g, &ops, &order, &applied, &[0]);
            }
        }
        // Crash: drop everything past the durable sample except 7 torn
        // bytes of the next frame.
        WalRecovery::cut(&dir, durable, 7).expect("cut");
        let outcome = WalRecovery::scan::<u64, u64>(&dir).expect("scan");
        assert_eq!(outcome.stats.groups, 20, "{tag}: durable groups survive");
        assert_eq!(outcome.stats.truncated_bytes, 7, "{tag}: torn tail cut");
        let recovered = replay_state::<S>(&dir);
        assert_eq!(recovered, fold_log(&dir), "{tag}: replay != fold");
        let _ = std::fs::remove_dir_all(&dir);
    }
    check::<BundledSkipList<u64, u64>>("kill-skiplist");
    check::<BundledCitrusTree<u64, u64>>("kill-citrus");
    check::<BundledLazyList<u64, u64>>("kill-list");
}

fn wal_segment_path(dir: &std::path::Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:06}.log"))
}
