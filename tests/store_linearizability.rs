//! Cross-shard linearizability oracle for the sharded store.
//!
//! Acceptance property: every `BundledStore::range_query` result must
//! correspond to a single atomic snapshot of the **whole** store — one
//! shared timestamp, no shard skew, and no *partial transaction* — for
//! several shard counts and all three backends.
//!
//! Method: update operations (single-key inserts/removes, multi-key
//! `apply_txn` batches, and read-write `ReadWriteTxn`s) are serialized
//! through a mutex that holds a `BTreeMap` oracle and a versioned log;
//! each update is applied to the store *inside* the critical section and
//! its result is checked against the oracle exactly. One log version is
//! one **atomic batch** (a singleton for a primitive op, the whole write
//! set for a transaction). Range queries run **concurrently with no
//! serialization**: a query records the log version `v1` before it starts
//! and `v2` after it finishes (both read under the lock, so in-flight
//! updates are fully logged), then the result must equal the oracle's
//! range at *some* version in `[v1, v2]` — i.e. the query result is a
//! real atomic cut of the serialized update history. A skewed cross-shard
//! query (shards read at different logical times) matches no single
//! version and fails — and because a committed transaction occupies
//! exactly one version, a snapshot containing *part* of a transaction's
//! write set matches no version either (all-or-nothing visibility).
//!
//! Read-write transactions extend the replay: a committed `ReadWriteTxn`
//! runs inside the critical section, so its serialization point is this
//! log position — every one of its validated reads (point and range) must
//! therefore equal the oracle's **current** state exactly
//! (reads-see-latest-committed at the commit point), its commit must
//! succeed (no foreign writer can intervene inside the lock), and its
//! write outcomes must match what the freshly-validated reads imply.

//! **Ingest super-batches** get their own replay (see
//! `run_ingest_oracle_stress`): writers hold the serialization lock
//! across a whole *wave* of submissions (singles and multi-key batches,
//! same-key collisions included), wait every ticket, and re-order the
//! wave by each ticket's `(ts, seq)` commit metadata — the linearization
//! order the front-end claims. Every per-ticket outcome must then replay
//! exactly against the oracle, and every concurrent range query must
//! match the history at a **group boundary**: groups publish at one
//! timestamp, so a snapshot containing part of a group matches either no
//! version at all or only a mid-group version, and both fail the check.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use bundled_refs::ingest::{Ingest, IngestConfig, IngestOutcome, Ticket};
use bundled_refs::prelude::*;
use bundled_refs::store::ShardBackend;
use bundled_refs::store::{uniform_splits, BundledStore};
use bundled_refs::txn::ReadWriteTxn;

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
}

/// One atomic step of the serialized history: a primitive op or a whole
/// committed transaction.
type Batch = Vec<Op>;

/// The serialized update history: current oracle state plus the batch log.
struct History {
    oracle: BTreeMap<u64, u64>,
    log: Vec<Batch>,
}

/// An ingest submission awaiting (or holding) its resolved outcome,
/// paired with the ops it staged.
type PendingSubmission<O> = (O, Vec<TxnOp<u64, u64>>);

struct QueryObs {
    v1: usize,
    v2: usize,
    lo: u64,
    hi: u64,
    result: Vec<(u64, u64)>,
}

fn xorshift(seed: &mut u64) -> u64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    *seed
}

/// Replay-check: `obs.result` must equal the oracle range at some version
/// in `[v1, v2]`. `model` has been replayed to exactly `upto` batches.
fn matches_some_version(
    obs: &QueryObs,
    log: &[Batch],
    model: &mut BTreeMap<u64, u64>,
    upto: &mut usize,
) -> bool {
    // Advance the rolling model to v1 (observations are checked in
    // ascending v1 order, so `upto <= v1` always holds).
    while *upto < obs.v1 {
        apply(model, &log[*upto]);
        *upto += 1;
    }
    let mut probe = model.clone();
    let mut v = *upto;
    loop {
        let expected: Vec<(u64, u64)> = probe
            .range(obs.lo..=obs.hi)
            .map(|(k, v)| (*k, *v))
            .collect();
        if expected == obs.result {
            return true;
        }
        if v >= obs.v2 {
            return false;
        }
        apply(&mut probe, &log[v]);
        v += 1;
    }
}

fn apply(model: &mut BTreeMap<u64, u64>, batch: &Batch) {
    for op in batch {
        match *op {
            Op::Insert(k, v) => {
                model.insert(k, v);
            }
            Op::Remove(k) => {
                model.remove(&k);
            }
        }
    }
}

/// Drive the oracle with `txn_pct`% multi-key cross-shard transactions
/// (`apply_txn` batches logged as one atomic version each) and the rest
/// single-key primitive updates.
fn run_oracle_stress<S>(shards: usize, txn_pct: u64, label: &'static str)
where
    S: ShardBackend<u64, u64> + Send + Sync + 'static,
{
    const KEY_RANGE: u64 = 240;
    const WRITERS: usize = 3;
    const READERS: usize = 2;
    const OPS_PER_WRITER: usize = 1_500;

    let store = Arc::new(BundledStore::<u64, u64, S>::new(
        WRITERS + READERS,
        uniform_splits(shards, KEY_RANGE),
    ));
    let history = Arc::new(Mutex::new(History {
        oracle: BTreeMap::new(),
        log: Vec::new(),
    }));
    let done = Arc::new(std::sync::atomic::AtomicUsize::new(0));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = Arc::clone(&store);
            let history = Arc::clone(&history);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut seed = (w as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15);
                for _ in 0..OPS_PER_WRITER {
                    let k = xorshift(&mut seed) % KEY_RANGE;
                    if xorshift(&mut seed) % 100 < txn_pct {
                        if xorshift(&mut seed).is_multiple_of(2) {
                            // A read-write transaction: validated reads
                            // (one point, one range) feeding derived
                            // writes. Inside the lock the commit IS the
                            // serialization point, so the reads must equal
                            // the oracle's current state exactly, the
                            // commit cannot be invalidated, and every
                            // write outcome is determined by the reads.
                            let mut h = history.lock().unwrap();
                            let mut t = ReadWriteTxn::with_tid(&store, w);
                            let va = t.get(&k);
                            assert_eq!(
                                va,
                                h.oracle.get(&k).copied(),
                                "{label}: rw point read must see latest committed"
                            );
                            let lo = xorshift(&mut seed) % KEY_RANGE;
                            let hi = (lo + 1 + xorshift(&mut seed) % 12).min(KEY_RANGE - 1);
                            let mut out = Vec::new();
                            t.range(&lo, &hi, &mut out);
                            let expect: Vec<(u64, u64)> =
                                h.oracle.range(lo..=hi).map(|(a, b)| (*a, *b)).collect();
                            assert_eq!(
                                out, expect,
                                "{label}: rw range read must see latest committed"
                            );
                            let nv = match va {
                                Some(v) => v.wrapping_add(1),
                                None => xorshift(&mut seed),
                            };
                            match va {
                                Some(_) => t.set(k, nv),
                                None => t.put(k, nv),
                            };
                            if let Some(kb) = out.iter().map(|(a, _)| *a).find(|a| *a != k) {
                                t.remove(&kb);
                            }
                            let receipt = t.commit().expect(
                                "rw txn inside the serialization lock cannot be invalidated",
                            );
                            let mut batch: Batch = Vec::new();
                            for (key, applied) in receipt.applied {
                                assert!(
                                    applied,
                                    "{label}: outcome of a validated rw write (key {key}) \
                                     is determined by its reads"
                                );
                                if key == k {
                                    h.oracle.insert(k, nv);
                                    batch.push(Op::Insert(k, nv));
                                } else {
                                    assert!(h.oracle.remove(&key).is_some());
                                    batch.push(Op::Remove(key));
                                }
                            }
                            h.log.push(batch);
                            continue;
                        }
                        // A multi-key transaction: 2-4 distinct keys spread
                        // over the keyspace (usually several shards),
                        // mixing inserts, upserts and removes.
                        let n = 2 + xorshift(&mut seed) % 3;
                        let mut ops: Vec<TxnOp<u64, u64>> = Vec::new();
                        for i in 0..n {
                            let tk =
                                (k + i * (KEY_RANGE / 4) + xorshift(&mut seed) % 13) % KEY_RANGE;
                            if ops.iter().any(|op| *op.key() == tk) {
                                continue;
                            }
                            match xorshift(&mut seed) % 3 {
                                0 => ops.push(TxnOp::Put(tk, xorshift(&mut seed))),
                                1 => ops.push(TxnOp::Set(tk, xorshift(&mut seed))),
                                _ => ops.push(TxnOp::Remove(tk)),
                            }
                        }
                        ops.sort_by_key(|op| *op.key());
                        let mut h = history.lock().unwrap();
                        // Inside the lock: the whole transaction's single
                        // linearization point lies within this log entry's
                        // window and must agree with the oracle per-op.
                        let results = store.apply_txn(w, &ops);
                        let mut batch: Batch = Vec::new();
                        for (op, applied) in ops.iter().zip(results) {
                            match op {
                                TxnOp::Put(tk, v) => {
                                    assert_eq!(
                                        applied,
                                        !h.oracle.contains_key(tk),
                                        "{label}: store/oracle disagree on txn put({tk})"
                                    );
                                    if applied {
                                        h.oracle.insert(*tk, *v);
                                        batch.push(Op::Insert(*tk, *v));
                                    }
                                }
                                TxnOp::Set(tk, v) => {
                                    // Upsert: reports whether the key
                                    // existed; always leaves tk -> v.
                                    assert_eq!(
                                        applied,
                                        h.oracle.contains_key(tk),
                                        "{label}: store/oracle disagree on txn set({tk})"
                                    );
                                    h.oracle.insert(*tk, *v);
                                    batch.push(Op::Insert(*tk, *v));
                                }
                                TxnOp::Remove(tk) => {
                                    let oracle_removed = h.oracle.remove(tk).is_some();
                                    assert_eq!(
                                        applied, oracle_removed,
                                        "{label}: store/oracle disagree on txn remove({tk})"
                                    );
                                    if applied {
                                        batch.push(Op::Remove(*tk));
                                    }
                                }
                            }
                        }
                        if !batch.is_empty() {
                            h.log.push(batch);
                        }
                        continue;
                    }
                    let mut h = history.lock().unwrap();
                    if xorshift(&mut seed).is_multiple_of(2) {
                        let v = xorshift(&mut seed);
                        // Inside the lock: the store op's linearization
                        // point lies within this log entry's window, and
                        // its result must agree with the oracle exactly.
                        let store_new = store.insert(w, k, v);
                        assert_eq!(
                            store_new,
                            !h.oracle.contains_key(&k),
                            "{label}: store/oracle disagree on insert({k})"
                        );
                        // Set semantics: a failed insert changes nothing.
                        if store_new {
                            h.oracle.insert(k, v);
                            h.log.push(vec![Op::Insert(k, v)]);
                        }
                    } else {
                        let store_removed = store.remove(w, &k);
                        let oracle_removed = h.oracle.remove(&k).is_some();
                        assert_eq!(
                            store_removed, oracle_removed,
                            "{label}: store/oracle disagree on remove({k})"
                        );
                        if store_removed {
                            h.log.push(vec![Op::Remove(k)]);
                        }
                    }
                }
                done.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            })
        })
        .collect();

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let store = Arc::clone(&store);
            let history = Arc::clone(&history);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let tid = WRITERS + r;
                let mut seed = (r as u64 + 7).wrapping_mul(0x517cc1b727220a95);
                let mut observations = Vec::new();
                let mut out = Vec::new();
                // Keep scanning while writers run; in any case take a
                // minimum number of snapshots (a query against the final
                // quiescent state is still a valid observation).
                while observations.len() < 50
                    || done.load(std::sync::atomic::Ordering::SeqCst) < WRITERS
                {
                    let a = xorshift(&mut seed) % KEY_RANGE;
                    let b = xorshift(&mut seed) % KEY_RANGE;
                    let (lo, hi) = (a.min(b), a.max(b));
                    let v1 = history.lock().unwrap().log.len();
                    store.range_query(tid, &lo, &hi, &mut out);
                    let v2 = history.lock().unwrap().log.len();
                    observations.push(QueryObs {
                        v1,
                        v2,
                        lo,
                        hi,
                        result: out.clone(),
                    });
                }
                observations
            })
        })
        .collect();

    for w in writers {
        w.join().unwrap();
    }
    let mut all_obs: Vec<QueryObs> = Vec::new();
    for r in readers {
        all_obs.extend(r.join().unwrap());
    }
    assert!(
        !all_obs.is_empty(),
        "{label}: readers must observe at least one snapshot"
    );

    // Validate every observation against the serialized history.
    let h = history.lock().unwrap();
    all_obs.sort_by_key(|o| o.v1);
    let mut model = BTreeMap::new();
    let mut upto = 0usize;
    for (i, obs) in all_obs.iter().enumerate() {
        assert!(
            matches_some_version(obs, &h.log, &mut model, &mut upto),
            "{label}: range query #{i} [{}..={}] (window v{}..v{}) matches no \
             atomic snapshot of the update history — shard skew",
            obs.lo,
            obs.hi,
            obs.v1,
            obs.v2
        );
    }

    // Final state agreement, via a cross-shard scan of everything.
    let mut final_scan = Vec::new();
    store.range_query(0, &0, &KEY_RANGE, &mut final_scan);
    let expected: Vec<(u64, u64)> = h.oracle.iter().map(|(k, v)| (*k, *v)).collect();
    assert_eq!(final_scan, expected, "{label}: final store state diverged");
}

#[test]
fn skiplist_store_snapshots_are_atomic_2_shards() {
    run_oracle_stress::<BundledSkipList<u64, u64>>(2, 0, "skiplist/2");
}

#[test]
fn skiplist_store_snapshots_are_atomic_5_shards() {
    run_oracle_stress::<BundledSkipList<u64, u64>>(5, 0, "skiplist/5");
}

#[test]
fn lazylist_store_snapshots_are_atomic_2_shards() {
    run_oracle_stress::<BundledLazyList<u64, u64>>(2, 0, "lazylist/2");
}

#[test]
fn lazylist_store_snapshots_are_atomic_6_shards() {
    run_oracle_stress::<BundledLazyList<u64, u64>>(6, 0, "lazylist/6");
}

#[test]
fn citrus_store_snapshots_are_atomic_2_shards() {
    run_oracle_stress::<BundledCitrusTree<u64, u64>>(2, 0, "citrus/2");
}

#[test]
fn citrus_store_snapshots_are_atomic_5_shards() {
    run_oracle_stress::<BundledCitrusTree<u64, u64>>(5, 0, "citrus/5");
}

// Multi-key transactions mixed with primitive updates: every concurrent
// snapshot must contain each committed transaction's writes entirely or
// not at all (a partial batch matches no log version).

#[test]
fn skiplist_store_txn_snapshots_are_all_or_nothing() {
    run_oracle_stress::<BundledSkipList<u64, u64>>(5, 40, "skiplist-txn/5");
}

#[test]
fn lazylist_store_txn_snapshots_are_all_or_nothing() {
    run_oracle_stress::<BundledLazyList<u64, u64>>(3, 40, "lazylist-txn/3");
}

#[test]
fn citrus_store_txn_snapshots_are_all_or_nothing() {
    run_oracle_stress::<BundledCitrusTree<u64, u64>>(4, 40, "citrus-txn/4");
}

/// The grouped update history of the ingest replay: oracle state plus a
/// versioned log where every version carries the commit timestamp of the
/// group that produced it (all versions of one group share it).
struct GroupedHistory {
    oracle: BTreeMap<u64, u64>,
    log: Vec<Batch>,
    /// Group (commit-timestamp) tag of each log version.
    group: Vec<u64>,
}

/// Like [`matches_some_version`], but the matching version must lie on a
/// **group boundary**: a group publishes every one of its submissions at
/// one timestamp, so a true snapshot can never correspond to a state
/// with a group half-applied. A result that only matches mid-group —
/// which is exactly what a torn group commit would produce — fails.
fn matches_group_boundary(
    obs: &QueryObs,
    log: &[Batch],
    group: &[u64],
    model: &mut BTreeMap<u64, u64>,
    upto: &mut usize,
) -> bool {
    while *upto < obs.v1 {
        apply(model, &log[*upto]);
        *upto += 1;
    }
    let boundary = |v: usize| v == 0 || v == log.len() || group[v - 1] != group[v];
    let mut probe = model.clone();
    let mut v = *upto;
    loop {
        if boundary(v) {
            let expected: Vec<(u64, u64)> = probe
                .range(obs.lo..=obs.hi)
                .map(|(k, v)| (*k, *v))
                .collect();
            if expected == obs.result {
                return true;
            }
        }
        if v >= obs.v2 {
            return false;
        }
        apply(&mut probe, &log[v]);
        v += 1;
    }
}

/// Ingest-front-end oracle: writers push *waves* of submissions (singles
/// and multi-key batches, same-key collisions across sessions included)
/// through a group-commit `Ingest` while holding the serialization lock,
/// wait every ticket, and replay the wave in the `(ts, seq)` order the
/// tickets claim — checking every per-op outcome against the oracle
/// exactly. Concurrent unserialized range queries must each match the
/// history at a group boundary (a group is visible entirely or not at
/// all).
fn run_ingest_oracle_stress<S>(shards: usize, label: &'static str)
where
    S: ShardBackend<u64, u64> + Send + Sync + 'static,
{
    const KEY_RANGE: u64 = 240;
    const WRITERS: usize = 3;
    const READERS: usize = 2;
    const COMMITTERS: usize = 2;
    const WAVES_PER_WRITER: usize = 250;

    let store = Arc::new(BundledStore::<u64, u64, S>::new(
        WRITERS + READERS + COMMITTERS,
        uniform_splits(shards, KEY_RANGE),
    ));
    // Register every writer/reader session BEFORE spawning the ingest
    // front-end, so the committers' sessions cannot collide with them.
    let mut handles: Vec<_> = (0..WRITERS + READERS).map(|_| store.register()).collect();
    let reader_handles: Vec<_> = handles.split_off(WRITERS);
    let ingest = Arc::new(Ingest::spawn(
        Arc::clone(&store),
        IngestConfig {
            committers: COMMITTERS,
            ..IngestConfig::default()
        },
    ));
    let history = Arc::new(Mutex::new(GroupedHistory {
        oracle: BTreeMap::new(),
        log: Vec::new(),
        group: Vec::new(),
    }));
    let done = Arc::new(std::sync::atomic::AtomicUsize::new(0));

    let writers: Vec<_> = handles
        .into_iter()
        .enumerate()
        .map(|(w, handle)| {
            let ingest = Arc::clone(&ingest);
            let history = Arc::clone(&history);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut seed = (w as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15);
                for _ in 0..WAVES_PER_WRITER {
                    let mut h = history.lock().unwrap();
                    // A wave: 1-3 submissions, each a single op or a
                    // small batch; keys collide freely across (and
                    // within) submissions, exercising the committer's
                    // same-key fold.
                    let n_sub = 1 + xorshift(&mut seed) % 3;
                    let mut waiting: Vec<PendingSubmission<Ticket<IngestOutcome>>> = Vec::new();
                    for _ in 0..n_sub {
                        let n_ops = 1 + xorshift(&mut seed) % 3;
                        let ops: Vec<TxnOp<u64, u64>> = (0..n_ops)
                            .map(|_| {
                                let k = xorshift(&mut seed) % KEY_RANGE;
                                match xorshift(&mut seed) % 3 {
                                    0 => TxnOp::Put(k, xorshift(&mut seed)),
                                    1 => TxnOp::Set(k, xorshift(&mut seed)),
                                    _ => TxnOp::Remove(k),
                                }
                            })
                            .collect();
                        waiting.push((ingest.submit_batch(ops.clone()), ops));
                    }
                    let mut resolved: Vec<PendingSubmission<IngestOutcome>> = waiting
                        .into_iter()
                        .map(|(t, ops)| (t.wait(), ops))
                        .collect();
                    // The tickets' commit metadata IS the claimed
                    // linearization order: groups by ascending ts,
                    // queue order inside a group by seq.
                    resolved.sort_by_key(|(o, _)| (o.ts, o.seq));
                    for (outcome, ops) in resolved {
                        assert_eq!(outcome.applied.len(), ops.len(), "{label}");
                        let mut batch: Batch = Vec::new();
                        for (op, &applied) in ops.iter().zip(&outcome.applied) {
                            match op {
                                TxnOp::Put(k, v) => {
                                    assert_eq!(
                                        applied,
                                        !h.oracle.contains_key(k),
                                        "{label}: ticket outcome for put({k}) diverged"
                                    );
                                    if applied {
                                        h.oracle.insert(*k, *v);
                                        batch.push(Op::Insert(*k, *v));
                                    }
                                }
                                TxnOp::Set(k, v) => {
                                    assert_eq!(
                                        applied,
                                        h.oracle.contains_key(k),
                                        "{label}: ticket outcome for set({k}) diverged"
                                    );
                                    h.oracle.insert(*k, *v);
                                    batch.push(Op::Insert(*k, *v));
                                }
                                TxnOp::Remove(k) => {
                                    assert_eq!(
                                        applied,
                                        h.oracle.remove(k).is_some(),
                                        "{label}: ticket outcome for remove({k}) diverged"
                                    );
                                    if applied {
                                        batch.push(Op::Remove(*k));
                                    }
                                }
                            }
                        }
                        if !batch.is_empty() {
                            h.log.push(batch);
                            h.group.push(outcome.ts);
                        }
                    }
                }
                done.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                // The writer's session slot stays reserved (its handle is
                // owned here) until the wave loop finishes.
                drop(handle);
            })
        })
        .collect();

    let readers: Vec<_> = reader_handles
        .into_iter()
        .enumerate()
        .map(|(r, handle)| {
            let history = Arc::clone(&history);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut seed = (r as u64 + 7).wrapping_mul(0x517cc1b727220a95);
                let mut observations = Vec::new();
                let mut out = Vec::new();
                while observations.len() < 50
                    || done.load(std::sync::atomic::Ordering::SeqCst) < WRITERS
                {
                    let a = xorshift(&mut seed) % KEY_RANGE;
                    let b = xorshift(&mut seed) % KEY_RANGE;
                    let (lo, hi) = (a.min(b), a.max(b));
                    let v1 = history.lock().unwrap().log.len();
                    handle.range_query(&lo, &hi, &mut out);
                    let v2 = history.lock().unwrap().log.len();
                    observations.push(QueryObs {
                        v1,
                        v2,
                        lo,
                        hi,
                        result: out.clone(),
                    });
                }
                observations
            })
        })
        .collect();

    for w in writers {
        w.join().unwrap();
    }
    let mut all_obs: Vec<QueryObs> = Vec::new();
    for r in readers {
        all_obs.extend(r.join().unwrap());
    }
    ingest.flush();

    let h = history.lock().unwrap();
    all_obs.sort_by_key(|o| o.v1);
    let mut model = BTreeMap::new();
    let mut upto = 0usize;
    for (i, obs) in all_obs.iter().enumerate() {
        assert!(
            matches_group_boundary(obs, &h.log, &h.group, &mut model, &mut upto),
            "{label}: range query #{i} [{}..={}] (window v{}..v{}) matches no \
             group-boundary snapshot of the grouped history — a group was \
             observed partially applied",
            obs.lo,
            obs.hi,
            obs.v1,
            obs.v2
        );
    }

    // Final state agreement plus grouping really happened.
    let stats = store.txn_stats();
    assert!(stats.group_commits >= 1, "{label}: nothing group-committed");
    assert!(
        stats.grouped_ops >= stats.group_commits,
        "{label}: groups must carry ops"
    );
    ingest.shutdown();
    let h2 = store.register();
    let final_scan = h2.range_query_vec(&0, &KEY_RANGE);
    let expected: Vec<(u64, u64)> = h.oracle.iter().map(|(k, v)| (*k, *v)).collect();
    assert_eq!(final_scan, expected, "{label}: final store state diverged");
}

#[test]
fn skiplist_ingest_groups_are_atomic_and_outcome_exact() {
    run_ingest_oracle_stress::<BundledSkipList<u64, u64>>(5, "skiplist-ingest/5");
}

#[test]
fn lazylist_ingest_groups_are_atomic_and_outcome_exact() {
    run_ingest_oracle_stress::<BundledLazyList<u64, u64>>(3, "lazylist-ingest/3");
}

#[test]
fn citrus_ingest_groups_are_atomic_and_outcome_exact() {
    run_ingest_oracle_stress::<BundledCitrusTree<u64, u64>>(4, "citrus-ingest/4");
}

/// Sanity for the boundary matcher: a state that only exists *inside* a
/// group (between two versions sharing a group tag) must be rejected,
/// while the surrounding boundary states are accepted.
#[test]
fn oracle_rejects_mid_group_snapshots() {
    // One group committed two submissions (two versions, same tag 7),
    // then another group one more (tag 9).
    let log = vec![
        vec![Op::Insert(10, 1)],
        vec![Op::Insert(200, 2)],
        vec![Op::Insert(30, 3)],
    ];
    let group = vec![7, 7, 9];
    // State after version 1 = {10} — real only mid-group.
    let mid = QueryObs {
        v1: 0,
        v2: 3,
        lo: 0,
        hi: 240,
        result: vec![(10, 1)],
    };
    let mut model = BTreeMap::new();
    let mut upto = 0;
    assert!(
        !matches_group_boundary(&mid, &log, &group, &mut model, &mut upto),
        "a half-visible group must match no boundary"
    );
    // The plain (non-boundary-aware) matcher would have accepted it.
    let mut model = BTreeMap::new();
    let mut upto = 0;
    assert!(matches_some_version(&mid, &log, &mut model, &mut upto));
    // Boundary states all pass: empty, whole first group, everything.
    for result in [
        vec![],
        vec![(10, 1), (200, 2)],
        vec![(10, 1), (30, 3), (200, 2)],
    ] {
        let obs = QueryObs {
            v1: 0,
            v2: 3,
            lo: 0,
            hi: 240,
            result,
        };
        let mut model = BTreeMap::new();
        let mut upto = 0;
        assert!(matches_group_boundary(
            &obs, &log, &group, &mut model, &mut upto
        ));
    }
}

/// Sanity for the oracle itself: a deliberately skewed "snapshot" (mixing
/// two different versions) must be rejected by the checker.
#[test]
fn oracle_rejects_skewed_snapshots() {
    let log = vec![
        vec![Op::Insert(10, 1)],
        vec![Op::Insert(200, 2)],
        vec![Op::Remove(10)],
    ];
    // Claimed observation window covers versions 0..=3. A true snapshot
    // sees one of: {}, {10}, {10,200}, {200}. The skewed result {} + {200}
    // at v<=1 — i.e. seeing key 200 (written second) without key 10
    // (written first) — must only match version 3, so restricting the
    // window to v1=v2=2 makes it unsatisfiable.
    let skewed = QueryObs {
        v1: 2,
        v2: 2,
        lo: 0,
        hi: 240,
        result: vec![(200, 2)],
    };
    let mut model = BTreeMap::new();
    let mut upto = 0;
    assert!(!matches_some_version(&skewed, &log, &mut model, &mut upto));

    // The same result IS a legal snapshot once version 3 is in the window.
    let honest = QueryObs {
        v1: 2,
        v2: 3,
        lo: 0,
        hi: 240,
        result: vec![(200, 2)],
    };
    let mut model = BTreeMap::new();
    let mut upto = 0;
    assert!(matches_some_version(&honest, &log, &mut model, &mut upto));
}

/// Sanity for the batched oracle: a snapshot containing only *part* of a
/// committed transaction's write set matches no version, while the full
/// set and the empty set both do.
#[test]
fn oracle_rejects_partial_transactions() {
    // One committed transaction writing {10, 200} atomically.
    let log = vec![vec![Op::Insert(10, 1), Op::Insert(200, 2)]];
    let partial = QueryObs {
        v1: 0,
        v2: 1,
        lo: 0,
        hi: 240,
        result: vec![(200, 2)],
    };
    let mut model = BTreeMap::new();
    let mut upto = 0;
    assert!(
        !matches_some_version(&partial, &log, &mut model, &mut upto),
        "a partial transaction must match no atomic cut"
    );
    for result in [vec![], vec![(10, 1), (200, 2)]] {
        let whole = QueryObs {
            v1: 0,
            v2: 1,
            lo: 0,
            hi: 240,
            result,
        };
        let mut model = BTreeMap::new();
        let mut upto = 0;
        assert!(matches_some_version(&whole, &log, &mut model, &mut upto));
    }
}
