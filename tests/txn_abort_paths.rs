//! Abort-path property test for read-write transactions.
//!
//! Every round opens a `ReadWriteTxn`, performs validated reads, then —
//! with probability 1/2 — a second session commits a conflicting update
//! to a read key *before* the transaction commits, forcing a validation
//! failure. The properties checked after every round, on all three
//! backends:
//!
//! * a forced-stale commit returns `TxnAborted` and an undisturbed one
//!   succeeds — deterministically;
//! * **no snapshot ever observes an abort artifact**: the aborted
//!   transaction's pending bundle entries were neutralized (duplicates of
//!   the entry beneath, or `TOMBSTONE_TS` for transaction-created nodes),
//!   so a full range scan at the *current* timestamp and a re-scan of a
//!   snapshot whose timestamp was leased *before* the abort both equal
//!   the reference model exactly — nothing of the rolled-back write set,
//!   no resurrected removed keys, no tombstone-satisfying ghosts;
//! * the store keeps matching the model for every later round, i.e. the
//!   abort left the structures fully operational (locks released, clock
//!   untouched, no wedged bundles).

use std::collections::BTreeMap;

use bundled_refs::prelude::*;
use bundled_refs::store::{BundledStore, ShardBackend, TxnAborted};
use bundled_refs::txn::ReadWriteTxn;

fn xorshift(seed: &mut u64) -> u64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    *seed
}

fn forced_validation_aborts<S: ShardBackend<u64, u64>>(label: &str) {
    const KEY_RANGE: u64 = 240;
    const ROUNDS: u64 = 300;
    // tid 0 = the transaction, tid 1 = the interferer, tid 2 = snapshots.
    let store = BundledStore::<u64, u64, S>::new(3, uniform_splits(4, KEY_RANGE));
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut seed = 0x5eed_cafe_u64;
    for k in (0..KEY_RANGE).step_by(3) {
        store.insert(0, k, k);
        model.insert(k, k);
    }
    let scan_hi = KEY_RANGE + ROUNDS + 1;

    let mut forced = 0u64;
    for round in 0..ROUNDS {
        let k = xorshift(&mut seed) % KEY_RANGE;
        let mut txn = ReadWriteTxn::with_tid(&store, 0);
        // Validated reads: the target key and a small range around it.
        let v = txn.get(&k);
        assert_eq!(v, model.get(&k).copied(), "{label}: leased read");
        let lo = k.saturating_sub(8);
        let hi = (k + 8).min(KEY_RANGE - 1);
        let mut out = Vec::new();
        txn.range(&lo, &hi, &mut out);

        // Inject the conflict: flip the read key through another session.
        let interfere = xorshift(&mut seed).is_multiple_of(2);
        if interfere {
            forced += 1;
            if model.remove(&k).is_some() {
                assert!(store.remove(1, &k));
            } else {
                assert!(store.insert(1, k, round));
                model.insert(k, round);
            }
        }

        // A snapshot leased *now*, before the commit attempt: whatever the
        // commit does (succeed or neutralize an abort), this snapshot's
        // view must stay exactly the current model.
        let pre_model: Vec<(u64, u64)> = model.iter().map(|(a, b)| (*a, *b)).collect();
        let pre_snap = store.snapshot(2);

        // Writes derived from the reads: an update of the read key plus a
        // fresh key in the last shard (so the abort path also exercises
        // the transaction-created-node tombstone).
        match v {
            Some(x) => txn.set(k, x.wrapping_add(1)),
            None => txn.put(k, round),
        };
        txn.put(KEY_RANGE + round, round);
        let outcome = txn.commit();

        if interfere {
            assert_eq!(
                outcome,
                Err(TxnAborted),
                "{label}: a stale validated read must abort the commit"
            );
        } else {
            let receipt = outcome.unwrap_or_else(|_| {
                panic!("{label}: an undisturbed rw txn must commit (round {round})")
            });
            assert_eq!(receipt.applied_count(), 2, "{label}");
            match v {
                Some(x) => model.insert(k, x.wrapping_add(1)),
                None => model.insert(k, round),
            };
            model.insert(KEY_RANGE + round, round);
        }

        // The pre-commit snapshot re-reads its own (older) timestamp: an
        // aborted transaction's neutralized entries and tombstones must
        // resolve as if the prepare never happened.
        let mut view = Vec::new();
        pre_snap.range(&0, &scan_hi, &mut view);
        assert_eq!(
            view, pre_model,
            "{label}: round {round}: a snapshot fixed before the commit \
             attempt observed an abort artifact"
        );
        drop(pre_snap);

        // And the current state equals the model exactly.
        let now = store.snapshot(2);
        let mut all = Vec::new();
        now.range(&0, &scan_hi, &mut all);
        let expect: Vec<(u64, u64)> = model.iter().map(|(a, b)| (*a, *b)).collect();
        assert_eq!(
            all, expect,
            "{label}: round {round}: post-commit state diverged from the model"
        );
        drop(now);
    }
    assert!(forced > ROUNDS / 4, "{label}: the test must force aborts");
    assert_eq!(
        store.txn_stats().validation_failures,
        forced,
        "{label}: every forced conflict aborted exactly once"
    );
}

#[test]
fn forced_validation_aborts_leave_no_artifacts_skiplist() {
    forced_validation_aborts::<BundledSkipList<u64, u64>>("skiplist");
}

#[test]
fn forced_validation_aborts_leave_no_artifacts_lazylist() {
    forced_validation_aborts::<BundledLazyList<u64, u64>>("lazylist");
}

#[test]
fn forced_validation_aborts_leave_no_artifacts_citrus() {
    forced_validation_aborts::<BundledCitrusTree<u64, u64>>("citrus");
}
