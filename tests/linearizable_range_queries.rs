//! Cross-crate linearizability checks: every bundled structure must deliver
//! atomic range-query snapshots while being updated concurrently.

use std::sync::Arc;

use bundled_refs::prelude::*;
use bundled_refs::workloads::{make_structure, StructureKind};

/// With a single writer inserting keys in increasing order, a linearizable
/// range query can only ever observe a gap-free prefix.
fn prefix_check(kind: StructureKind) {
    const MAX: u64 = 2_000;
    let s = make_structure(kind, 2);
    let writer = {
        let s = Arc::clone(&s);
        std::thread::spawn(move || {
            for k in 0..MAX {
                assert!(s.insert(0, k, k + 1));
            }
        })
    };
    let reader = {
        let s = Arc::clone(&s);
        std::thread::spawn(move || {
            let mut out = Vec::new();
            for _ in 0..150 {
                s.range_query(1, &0, &MAX, &mut out);
                for (i, (k, v)) in out.iter().enumerate() {
                    assert_eq!(*k, i as u64, "{kind:?}: observed a gap");
                    assert_eq!(*v, *k + 1);
                }
            }
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();
    assert_eq!(s.len(0), MAX as usize);
}

#[test]
fn bundled_list_snapshots_are_prefixes() {
    prefix_check(StructureKind::ListBundle);
}

#[test]
fn bundled_skiplist_snapshots_are_prefixes() {
    prefix_check(StructureKind::SkipListBundle);
}

#[test]
fn bundled_citrus_snapshots_are_prefixes() {
    prefix_check(StructureKind::CitrusBundle);
}

/// Concurrent churn (remove + reinsert of the same key set) must never make
/// a snapshot show fewer than `N - writers` or more than `N` keys.
fn churn_bounds_check(kind: StructureKind) {
    const N: u64 = 500;
    const WRITERS: usize = 2;
    let s = make_structure(kind, WRITERS + 1);
    for k in 0..N {
        s.insert(0, k, k);
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writers: Vec<_> = (0..WRITERS)
        .map(|tid| {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seed = tid as u64 + 1;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    let k = seed % N;
                    // Remove then immediately reinsert the same key.
                    if s.remove(tid, &k) {
                        s.insert(tid, k, k);
                    }
                }
            })
        })
        .collect();
    let mut out = Vec::new();
    for _ in 0..200 {
        s.range_query(WRITERS, &0, &N, &mut out);
        assert!(
            out.len() as u64 >= N - WRITERS as u64 && out.len() as u64 <= N,
            "{kind:?}: snapshot size {} outside [{}, {N}]",
            out.len(),
            N - WRITERS as u64
        );
        assert!(
            out.windows(2).all(|w| w[0].0 < w[1].0),
            "{kind:?}: unsorted/duplicate"
        );
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    assert_eq!(s.len(0), N as usize);
}

#[test]
fn bundled_list_churn_snapshot_bounds() {
    churn_bounds_check(StructureKind::ListBundle);
}

#[test]
fn bundled_skiplist_churn_snapshot_bounds() {
    churn_bounds_check(StructureKind::SkipListBundle);
}

#[test]
fn bundled_citrus_churn_snapshot_bounds() {
    churn_bounds_check(StructureKind::CitrusBundle);
}

/// The pending-entry protocol (§3.3 example): once a contains() observes a
/// key, a subsequent range query by the same thread must also observe it.
#[test]
fn range_query_not_older_than_prior_contains() {
    let s: Arc<BundledSkipList<u64, u64>> = Arc::new(BundledSkipList::new(2));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let s = Arc::clone(&s);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut k = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                s.insert(0, k, k);
                k += 1;
            }
            k
        })
    };
    let mut out = Vec::new();
    for probe in 0..2_000u64 {
        if s.contains(1, &probe) {
            s.range_query(1, &probe, &probe, &mut out);
            assert_eq!(
                out.len(),
                1,
                "key {probe} was visible to contains() but missing from the snapshot"
            );
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();
}
