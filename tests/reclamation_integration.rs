//! End-to-end reclamation: background bundle recycling and EBR node
//! reclamation running underneath a live mixed workload (Appendix B).

use std::sync::Arc;
use std::time::Duration;

use bundled_refs::prelude::*;

#[test]
fn recycler_reclaims_while_workload_runs() {
    const THREADS: usize = 2;
    let list = Arc::new(BundledSkipList::<u64, u64>::with_mode(
        THREADS + 1,
        ReclaimMode::Reclaim,
    ));
    for k in 0..400u64 {
        list.insert(0, k, k);
    }
    let recycler = list.spawn_recycler(THREADS, Duration::from_millis(1));
    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let list = Arc::clone(&list);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                for round in 0..30u64 {
                    for k in 0..400u64 {
                        if (k + round) % 3 == 0 {
                            list.remove(tid, &k);
                            list.insert(tid, k, k + round);
                        }
                    }
                    list.range_query(tid, &0, &400, &mut out);
                    assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Give the recycler a few more passes in quiescence, then verify the
    // bundles have been pruned down and memory has actually been freed.
    std::thread::sleep(Duration::from_millis(50));
    let passes = recycler.passes();
    recycler.stop();
    assert!(passes > 0, "recycler must have run");
    let entries = list.bundle_entries(0);
    // In quiescence each reachable bundle needs at most one entry, plus the
    // head sentinel's. Allow slack for the last unreclaimed round.
    assert!(
        entries <= list.len(0) * 2 + 2,
        "bundles not pruned: {entries} entries for {} nodes",
        list.len(0)
    );
    assert!(
        list.collector().stats().freed() > 0,
        "EBR should have freed retired nodes"
    );
    assert_eq!(list.len(0), 400);
}

#[test]
fn leaky_mode_matches_paper_default_and_counts_retires() {
    let list = BundledLazyList::<u64, u64>::with_mode(1, ReclaimMode::Leaky);
    for k in 0..100u64 {
        list.insert(0, k, k);
    }
    for k in 0..100u64 {
        assert!(list.remove(0, &k));
    }
    assert_eq!(list.collector().stats().retired(), 100);
    assert_eq!(list.collector().stats().freed(), 0);
    assert!(list.is_empty(0));
}

#[test]
fn relaxed_structures_remain_correct_sets() {
    // Appendix A: relaxation weakens range query freshness, not set
    // correctness. Run a quick mixed workload on a heavily relaxed clock.
    let s = Arc::new(BundledCitrusTree::<u64, u64>::with_relaxation(3, 50));
    let handles: Vec<_> = (0..2)
        .map(|tid| {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for k in 0..2_000u64 {
                    let key = k * 2 + tid as u64;
                    s.insert(tid, key, key);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(s.len(0), 4_000);
    let mut out = Vec::new();
    s.range_query(2, &0, &4_000, &mut out);
    assert_eq!(out.len(), 4_000 - 1 + 1);
}
