//! Offline stand-in for the `crossbeam-utils` crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the handful of external APIs the code depends on are provided by small
//! local crates with the same names and signatures (see `shims/README.md`).
//! Only [`CachePadded`] is needed here.

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line, preventing false
/// sharing between adjacent per-thread slots.
///
/// 128 bytes covers the common cases: x86-64 prefetches cache lines in
/// pairs of 64 bytes, and Apple/ARM big cores use 128-byte lines.
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

unsafe impl<T: Send> Send for CachePadded<T> {}
unsafe impl<T: Sync> Sync for CachePadded<T> {}

impl<T> CachePadded<T> {
    /// Pads and aligns a value to the length of a cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded")
            .field("value", &self.value)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_to_cache_line() {
        assert_eq!(core::mem::align_of::<CachePadded<u8>>(), 128);
        let slots: [CachePadded<u64>; 2] = [CachePadded::new(1), CachePadded::new(2)];
        let a = &slots[0] as *const _ as usize;
        let b = &slots[1] as *const _ as usize;
        assert!(b - a >= 128, "adjacent slots must not share a cache line");
    }

    #[test]
    fn deref_round_trip() {
        let mut p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        *p = 9;
        assert_eq!(p.into_inner(), 9);
    }
}
