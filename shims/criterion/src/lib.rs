//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Exposes the subset of the criterion 0.5 API this workspace's benches
//! use (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, the `criterion_group!`/`criterion_main!` macros) and runs
//! each benchmark as a plain warmup + timed-samples loop, reporting
//! mean/min/max wall-clock time per iteration. No statistics machinery, no
//! HTML reports — just enough to keep `cargo bench` meaningful in an
//! environment without crates.io access (see `shims/README.md`).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A two-part id, rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter (rendered as-is).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly: first for the warmup window, then once per
    /// sample, recording the wall-clock time of each sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion default: 100; the
    /// benches in this workspace set 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warmup duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Accepted for API compatibility; the shim's measurement time is
    /// `sample_size` iterations, whatever they take.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (throughput is not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark a routine.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
        };
        f(&mut b);
        self.report(&id, &b.samples);
        self
    }

    /// Benchmark a routine parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (prints nothing extra; provided for compatibility).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{}: no samples", self.name, id.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().unwrap();
        let max = samples.iter().max().unwrap();
        println!(
            "{}/{}: mean {:?}  min {:?}  max {:?}  ({} samples)",
            self.name,
            id.name,
            mean,
            min,
            max,
            samples.len()
        );
    }
}

/// Throughput hint (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark manager created by [`criterion_main!`].
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Begin a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 100,
            warm_up_time: Duration::from_millis(500),
            _criterion: self,
        }
    }

    /// Benchmark a routine outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function(BenchmarkId::from(name), f);
        group.finish();
        self
    }

    /// Final-report hook run by [`criterion_main!`] (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// Prevent the compiler from optimizing a benchmark value away
/// (`criterion::black_box` compatibility re-export).
pub use std::hint::black_box;

/// Define a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Define the `main` that runs one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_samples_and_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(1));
        let mut runs = 0u32;
        group.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs >= 3, "warmup + 3 samples must all run (ran {runs})");
        let input = 21u64;
        group.bench_with_input(BenchmarkId::new("double", input), &input, |b, &i| {
            b.iter(|| i * 2)
        });
        group.finish();
    }
}
