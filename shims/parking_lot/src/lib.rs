//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` behind `parking_lot`'s panic-free, non-poisoning
//! API surface: `lock()` returns the guard directly and a panicking holder
//! does not poison the lock for everyone else. Only the pieces this
//! workspace uses are provided (see `shims/README.md`).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::TryLockError;

/// A mutual exclusion primitive (non-poisoning `lock`/`try_lock` API).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex in an unlocked state.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking the current thread until it is able to
    /// do so. Unlike `std`, a panic in a previous holder is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: guard }
    }

    /// Attempts to acquire the mutex without blocking; `None` if it is held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking:
    /// `&mut self` guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// An RAII guard returned by [`Mutex::lock`] and [`Mutex::try_lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_try_lock() {
        let m = Mutex::new(1u64);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(
                m.try_lock().is_none(),
                "held lock must not be re-acquirable"
            );
        }
        assert_eq!(*m.try_lock().expect("released lock is acquirable"), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn not_poisoned_by_panicking_holder() {
        let m = Arc::new(Mutex::new(0u64));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is usable afterwards.
        *m.lock() = 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn contended_counter() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
