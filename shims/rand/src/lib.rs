//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset this workspace uses — `rngs::SmallRng`,
//! [`SeedableRng::seed_from_u64`] and [`Rng::gen_range`] over integer and
//! float ranges — with the same call-site syntax as rand 0.8 (see
//! `shims/README.md`). The generator is xoshiro256++, the same family the
//! real `SmallRng` uses on 64-bit targets; it is deterministic per seed and
//! NOT cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// A random number generator: the only primitive is a 64-bit draw.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type that can be created from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed (distinct seeds give
    /// independent-looking streams).
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (`low..high` or `low..=high`).
    ///
    /// Panics if the range is empty, like the real `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that a uniform value can be drawn from (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range using `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Lemire-style unbiased bounded draw in `0..n` (`n > 0`).
#[inline]
fn bounded(rng: &mut impl RngCore, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Rejection sampling over the widening multiply keeps the draw unbiased
    // for every bound, not just powers of two.
    let zone = n.wrapping_neg() % n; // (2^64 - n) % n
    loop {
        let v = rng.next_u64();
        let m = (v as u128).wrapping_mul(n as u128);
        if (m as u64) >= zone || zone == 0 {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(bounded(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind the real `SmallRng` on 64-bit
    /// platforms. 256 bits of state, seeded through splitmix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            // splitmix64 expansion guarantees a non-zero xoshiro state.
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// `rand::prelude` look-alike for glob imports.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u64..=15);
            assert!((5..=15).contains(&w));
            let f = rng.gen_range(1.0..5000.0);
            assert!((1.0..5000.0).contains(&f));
            let i = rng.gen_range(0..100);
            assert!((0..100i32).contains(&i));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform draw must cover the range");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = rng.gen_range(5u64..5);
    }
}
