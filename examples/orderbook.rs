//! A price-level order book built on the bundled Citrus tree.
//!
//! Market-data threads add and cancel orders at random price levels while a
//! strategy thread repeatedly takes *consistent* top-of-book snapshots (a
//! range query over the best N price levels). With a non-linearizable scan
//! the strategy could see a bid above the best ask that never coexisted;
//! the bundled range query rules that out.
//!
//! Run with: `cargo run --release --example orderbook`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bundled_refs::prelude::*;

/// Price levels 0..=9_999 are bids, 10_000..=19_999 are asks; the value is
/// the resting quantity at that level.
const ASK_BASE: u64 = 10_000;

fn main() {
    const MAKERS: usize = 3;
    const STRATEGY_TID: usize = MAKERS;

    let book = Arc::new(BundledCitrusTree::<u64, u64>::new(MAKERS + 1));
    // Seed the book: bids below 5_000, asks above 15_000 (spread in between).
    for p in 0..2_000u64 {
        book.insert(0, 4_999 - p, 10);
        book.insert(0, ASK_BASE + 5_000 + p, 10);
    }
    let stop = Arc::new(AtomicBool::new(false));

    let makers: Vec<_> = (0..MAKERS)
        .map(|tid| {
            let book = Arc::clone(&book);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seed = 0x5eed_0000 + tid as u64;
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    // Tighten or widen the spread around the mid randomly,
                    // but never let bids (< 5_000+x) cross asks (> 15_000-x).
                    let level = seed % 5_000;
                    if seed.is_multiple_of(2) {
                        book.insert(tid, level, 5 + seed % 100);
                        book.remove(tid, &(ASK_BASE + 19_999 - level));
                    } else {
                        book.insert(tid, ASK_BASE + 10_000 + level, 5 + seed % 100);
                        book.remove(tid, &(4_999 - level % 4_999));
                    }
                    ops += 1;
                }
                ops
            })
        })
        .collect();

    // Strategy: take top-of-book snapshots and check bid/ask invariant.
    let strategy = {
        let book = Arc::clone(&book);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut bids = Vec::new();
            let mut asks = Vec::new();
            let mut snapshots = 0u64;
            while !stop.load(Ordering::Relaxed) {
                book.range_query(STRATEGY_TID, &0, &(ASK_BASE - 1), &mut bids);
                book.range_query(STRATEGY_TID, &ASK_BASE, &(2 * ASK_BASE), &mut asks);
                let best_bid = bids.last().map(|(p, _)| *p).unwrap_or(0);
                let best_ask = asks.first().map(|(p, _)| *p - ASK_BASE).unwrap_or(u64::MAX);
                assert!(
                    best_bid < best_ask,
                    "crossed book observed: bid {best_bid} >= ask {best_ask}"
                );
                snapshots += 1;
            }
            snapshots
        })
    };

    std::thread::sleep(Duration::from_millis(500));
    stop.store(true, Ordering::Relaxed);
    let maker_ops: u64 = makers.into_iter().map(|h| h.join().unwrap()).sum();
    let snapshots = strategy.join().unwrap();
    println!("makers applied {maker_ops} order-book updates");
    println!("strategy took {snapshots} consistent top-of-book snapshots");
    println!("book now holds {} price levels", book.len(0));
}
