//! Quickstart: a bundled skip list shared by writers and a range-query
//! reader, demonstrating linearizable snapshots under concurrent updates.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;
use std::time::Instant;

use bundled_refs::prelude::*;

fn main() {
    const WRITERS: usize = 3;
    const READER_TID: usize = WRITERS;
    const KEYS_PER_WRITER: u64 = 20_000;

    // One slot per worker thread (writers + reader).
    let set = Arc::new(BundledSkipList::<u64, u64>::new(WRITERS + 1));

    let start = Instant::now();
    let writers: Vec<_> = (0..WRITERS)
        .map(|tid| {
            let set = Arc::clone(&set);
            std::thread::spawn(move || {
                // Each writer owns a disjoint key slice and inserts it in
                // increasing order.
                let base = tid as u64 * KEYS_PER_WRITER;
                for k in base..base + KEYS_PER_WRITER {
                    set.insert(tid, k, k * 10);
                }
            })
        })
        .collect();

    // The reader repeatedly takes atomic snapshots while writers insert.
    let reader = {
        let set = Arc::clone(&set);
        std::thread::spawn(move || {
            let mut out = Vec::new();
            let mut snapshots = 0u64;
            loop {
                set.range_query(
                    READER_TID,
                    &0,
                    &(WRITERS as u64 * KEYS_PER_WRITER),
                    &mut out,
                );
                snapshots += 1;
                // Snapshot sanity: sorted and duplicate free.
                assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
                if out.len() == WRITERS * KEYS_PER_WRITER as usize {
                    return snapshots;
                }
            }
        })
    };

    for w in writers {
        w.join().unwrap();
    }
    let snapshots = reader.join().unwrap();
    println!(
        "inserted {} keys from {} writers in {:?}",
        set.len(0),
        WRITERS,
        start.elapsed()
    );
    println!("reader took {snapshots} linearizable snapshots while writers ran");

    let sample = set.range_query_vec(0, &100, &110);
    println!("snapshot of [100, 110]: {sample:?}");
}
