//! A sharded KV store under concurrent multi-shard traffic.
//!
//! Four writer sessions hammer different regions of the keyspace of an
//! 8-shard `BundledStore` while an analytics session takes whole-store
//! range queries. Every insert writes a *pair* of sentinel keys — one near
//! the bottom of the keyspace (shard 0) and one near the top (last shard)
//! — in that order, so any snapshot that contained a top key without its
//! bottom twin would expose shard skew. The run asserts that never
//! happens: cross-shard range queries are linearizable.
//!
//! Run with: `cargo run --release --example sharded_store`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bundled_refs::prelude::*;

const SHARDS: usize = 8;
const KEY_RANGE: u64 = 80_000;
/// Sentinel pairs: low key i (shard 0) and high key TOP + i (last shard).
const TOP: u64 = KEY_RANGE - 10_000;
const PAIRS: u64 = 5_000;

fn main() {
    let store = Arc::new(SkipListStore::<u64, u64>::new(
        6,
        uniform_splits(SHARDS, KEY_RANGE),
    ));
    let start = Instant::now();

    // One writer lays down sentinel pairs: low half first, high half
    // second. Seeing `TOP + i` in a snapshot without `i` would mean the
    // last shard was read "later" than shard 0 — impossible with the
    // shared-clock snapshot.
    let pair_writer = {
        let h = store.register();
        std::thread::spawn(move || {
            for i in 0..PAIRS {
                assert!(h.insert(i, i));
                assert!(h.insert(TOP + i, i));
            }
        })
    };

    // Three more writers churn the middle shards.
    let stop = Arc::new(AtomicBool::new(false));
    let churners: Vec<_> = (0..3u64)
        .map(|w| {
            let h = store.register();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut k = 10_000 + w * 20_000;
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = 10_000 + (k % 60_000);
                    if h.insert(key, k) {
                        ops += 1;
                    } else {
                        h.remove(&key);
                    }
                    k = k.wrapping_mul(6364136223846793005).wrapping_add(w + 1);
                    ops += 1;
                }
                ops
            })
        })
        .collect();

    // Analytics: whole-store snapshots while everything above runs.
    let analytics = {
        let h = store.register();
        std::thread::spawn(move || {
            let mut out = Vec::new();
            let mut scans = 0u64;
            let mut max_seen = 0usize;
            loop {
                h.range_query(&0, &KEY_RANGE, &mut out);
                scans += 1;
                max_seen = max_seen.max(out.len());
                // Linearizability check on the sentinel pairs.
                let lows: Vec<u64> = out.iter().map(|(k, _)| *k).filter(|k| *k < PAIRS).collect();
                let highs: Vec<u64> = out
                    .iter()
                    .map(|(k, _)| *k)
                    .filter(|k| *k >= TOP)
                    .map(|k| k - TOP)
                    .collect();
                for h in &highs {
                    assert!(
                        lows.binary_search(h).is_ok(),
                        "snapshot saw high sentinel {h} without its low twin: shard skew!"
                    );
                }
                if lows.len() == PAIRS as usize && highs.len() == PAIRS as usize {
                    return (scans, max_seen);
                }
            }
        })
    };

    pair_writer.join().unwrap();
    let (scans, max_seen) = analytics.join().unwrap();
    stop.store(true, Ordering::Relaxed);
    let churn_ops: u64 = churners.into_iter().map(|c| c.join().unwrap()).sum();

    let h = store.register();
    println!("sharded_store: {SHARDS} shards over [0, {KEY_RANGE})");
    println!(
        "  {} sentinel pairs written, {churn_ops} churn ops, {scans} whole-store snapshots",
        PAIRS
    );
    println!(
        "  final size {} (largest snapshot observed {max_seen}), elapsed {:?}",
        h.len(),
        start.elapsed()
    );
    println!("  every snapshot was skew-free: cross-shard range queries are linearizable");
}
