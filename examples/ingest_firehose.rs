//! Group-commit ingestion in action: a producer fleet firehoses updates
//! at the store and a conserved-sum audit proves the tickets told the
//! truth.
//!
//! Sixteen producer threads funnel puts and removes (value == key)
//! through a 2-committer `Ingest` front-end, pipelining windows of
//! outstanding tickets. Each producer keeps a running ledger from its
//! ticket outcomes alone: an *applied* put of key `k` adds `k`, an
//! *applied* remove subtracts it, no-ops add nothing — the same-key fold
//! inside each group must therefore report every outcome exactly as if
//! the operations had executed one by one in queue order. Meanwhile
//! auditor sessions take whole-store range queries and check every
//! snapshot is internally consistent (`value == key` for every entry).
//! At shutdown, the sum of everything left in the store must equal the
//! fleet's combined ledger: one misreported ticket anywhere — a fold
//! that lied, a group torn in half, a submission dropped at shutdown —
//! breaks the audit.
//!
//! Run with: `cargo run --release --example ingest_firehose`

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bundled_refs::prelude::*;

const SHARDS: usize = 8;
const KEY_RANGE: u64 = 50_000;
const PRODUCERS: usize = 16;
const COMMITTERS: usize = 2;
const OPS_PER_PRODUCER: usize = 30_000;
const WINDOW: usize = 64;
const PIPELINE: usize = 4;

/// A submitted batch awaiting its ticket, with the ops it staged.
type PendingBatch = (Ticket<IngestOutcome>, Vec<TxnOp<u64, u64>>);

fn xorshift(seed: &mut u64) -> u64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    *seed
}

fn main() {
    // Producers never register store sessions (they only talk to the
    // ingest queues); slots cover the committers plus auditors + final
    // scan.
    let store = Arc::new(SkipListStore::<u64, u64>::new(
        COMMITTERS + 3,
        uniform_splits(SHARDS, KEY_RANGE),
    ));
    let ingest = Arc::new(Ingest::spawn(
        Arc::clone(&store),
        IngestConfig {
            committers: COMMITTERS,
            ..IngestConfig::default()
        },
    ));
    let start = Instant::now();
    let advances_before = store.context().advance_calls();

    let stop = Arc::new(AtomicBool::new(false));
    let auditors: Vec<_> = (0..2)
        .map(|_| {
            let h = store.register();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                let mut audits = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    h.range_query(&0, &KEY_RANGE, &mut out);
                    for (k, v) in &out {
                        assert_eq!(k, v, "a snapshot saw a half-applied op");
                    }
                    audits += 1;
                }
                audits
            })
        })
        .collect();

    // The fleet: every producer submits put/remove windows (70% put) and
    // settles a pipeline of batch tickets, accounting strictly from the
    // outcomes.
    let producers: Vec<_> = (0..PRODUCERS as u64)
        .map(|p| {
            let ingest = Arc::clone(&ingest);
            std::thread::spawn(move || {
                let mut seed = 0xf1e7 ^ (p + 1).wrapping_mul(0x9e3779b97f4a7c15);
                let mut ledger = 0i64;
                let mut pending: VecDeque<PendingBatch> = VecDeque::with_capacity(PIPELINE);
                let settle = |entry: PendingBatch| {
                    let (ticket, ops) = entry;
                    let outcome = ticket.wait();
                    let mut sum = 0i64;
                    for (op, &applied) in ops.iter().zip(&outcome.applied) {
                        if applied {
                            match op {
                                TxnOp::Put(k, _) => sum += *k as i64,
                                TxnOp::Remove(k) => sum -= *k as i64,
                                TxnOp::Set(..) => unreachable!("no upserts in this fleet"),
                            }
                        }
                    }
                    sum
                };
                let mut submitted = 0usize;
                while submitted < OPS_PER_PRODUCER {
                    let ops: Vec<TxnOp<u64, u64>> = (0..WINDOW.min(OPS_PER_PRODUCER - submitted))
                        .map(|_| {
                            let k = xorshift(&mut seed) % KEY_RANGE;
                            if xorshift(&mut seed) % 10 < 7 {
                                TxnOp::Put(k, k)
                            } else {
                                TxnOp::Remove(k)
                            }
                        })
                        .collect();
                    submitted += ops.len();
                    pending.push_back((ingest.submit_batch(ops.clone()), ops));
                    if pending.len() >= PIPELINE {
                        ledger += settle(pending.pop_front().expect("pipeline non-empty"));
                    }
                }
                for entry in pending {
                    ledger += settle(entry);
                }
                ledger
            })
        })
        .collect();

    let fleet_ledger: i64 = producers.into_iter().map(|p| p.join().unwrap()).sum();
    stop.store(true, Ordering::Relaxed);
    let audits: u64 = auditors.into_iter().map(|a| a.join().unwrap()).sum();

    // Shutdown drains every queue; afterwards the store is quiescent.
    ingest.flush();
    let stats = ingest.stats();
    let advances = store.context().advance_calls() - advances_before;
    ingest.shutdown();

    let h = store.register();
    let store_sum: i64 = h
        .range_query_vec(&0, &KEY_RANGE)
        .iter()
        .map(|(k, _)| *k as i64)
        .sum();
    let total_ops = PRODUCERS * OPS_PER_PRODUCER;
    println!(
        "ingest_firehose: {PRODUCERS} producers x {OPS_PER_PRODUCER} ops \
         through {COMMITTERS} committers over {SHARDS} shards"
    );
    println!(
        "  {} groups, {:.1} ops/group (largest {}), {} of {} ops folded away, \
         {:.4} clock advances/op, {audits} audits, elapsed {:?}",
        stats.groups,
        stats.ops_per_group(),
        stats.largest_group,
        stats.ops - stats.folded_ops,
        stats.ops,
        advances as f64 / total_ops as f64,
        start.elapsed()
    );
    assert_eq!(stats.ops, total_ops as u64, "every op was resolved");
    assert_eq!(
        store_sum, fleet_ledger,
        "conserved-sum audit failed: the tickets lied about what committed"
    );
    println!("  conserved-sum audit held: store sum {store_sum} == fleet ledger");
}
