//! Run the DBx1000-style TPC-C workload (§8.2) on bundled skip list
//! indexes and print transaction / index-operation throughput.
//!
//! Run with: `cargo run --release --example tpcc_demo`

use std::sync::Arc;

use bundled_refs::dbsim::{run_tpcc, DynIndex, TpccConfig};
use bundled_refs::prelude::*;

fn main() {
    let threads = std::env::var("BUNDLE_THREADS")
        .ok()
        .and_then(|s| s.split(',').next_back().and_then(|t| t.parse().ok()))
        .unwrap_or(4usize);
    let cfg = TpccConfig::default();

    println!(
        "TPC-C: {} warehouses, {} customers/district, {} items, {} threads",
        cfg.warehouses, cfg.customers_per_district, cfg.items, threads
    );

    fn skiplist_factory(t: usize) -> DynIndex {
        Arc::new(BundledSkipList::<u64, u64>::new(t))
    }
    fn citrus_factory(t: usize) -> DynIndex {
        Arc::new(BundledCitrusTree::<u64, u64>::new(t))
    }
    type Factory = fn(usize) -> DynIndex;

    for (name, factory) in [
        ("bundled skip list", skiplist_factory as Factory),
        ("bundled citrus tree", citrus_factory as Factory),
    ] {
        let result = run_tpcc(cfg, &factory, threads, 1_000);
        println!(
            "{name:>22}: {:>8.0} txn/s, {:>7.3} index Mops/s ({} transactions committed)",
            result.tps(),
            result.index_mops(),
            result.transactions
        );
    }
}
