//! Serializable cross-shard transactions in action.
//!
//! A "bank" keeps one account per shard of an 8-shard store; transfers
//! move one unit between two random accounts by committing a
//! `ReadWriteTxn`: both balances are *read* at one leased snapshot
//! timestamp, rewritten based on those reads, and **validated at
//! commit** — two transfers racing on the same account cannot lose an
//! update (the loser aborts and re-runs against a fresh snapshot).
//! Auditor sessions continuously take whole-store range queries and
//! assert the invariant: the sum of all balances never changes. A torn
//! commit would show money in flight; a lost update would mint or burn a
//! unit (the debit lost, the credit kept). Neither can happen.
//!
//! Run with: `cargo run --release --example txn_store`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bundled_refs::prelude::*;

const SHARDS: usize = 8;
const KEY_RANGE: u64 = 8_000;
const SPAN: u64 = KEY_RANGE / SHARDS as u64;
/// One account at the middle of each shard, starting balance 1000.
const START_BALANCE: u64 = 1_000;
const TRANSFERS: u64 = 20_000;

fn account(shard: u64) -> u64 {
    shard * SPAN + SPAN / 2
}

fn main() {
    let store = Arc::new(CitrusStore::<u64, u64>::new(
        4,
        uniform_splits(SHARDS, KEY_RANGE),
    ));
    let start = Instant::now();
    {
        let h = store.register();
        let accounts: Vec<(u64, u64)> = (0..SHARDS as u64)
            .map(|s| (account(s), START_BALANCE))
            .collect();
        // Seeding is itself one atomic batch.
        assert_eq!(h.multi_put(&accounts), SHARDS);
    }
    let total: u64 = SHARDS as u64 * START_BALANCE;

    let stop = Arc::new(AtomicBool::new(false));
    let auditors: Vec<_> = (0..2)
        .map(|_| {
            let h = store.register();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                let mut audits = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    h.range_query(&0, &KEY_RANGE, &mut out);
                    let sum: u64 = out.iter().map(|(_, v)| *v).sum();
                    assert_eq!(out.len(), SHARDS, "an account vanished mid-transfer");
                    assert_eq!(
                        sum, total,
                        "snapshot caught money in flight: transfer not atomic"
                    );
                    audits += 1;
                }
                audits
            })
        })
        .collect();

    // Two transferrer threads hammer the SAME account set — before
    // validated read sets existed this had to be partitioned (a
    // concurrent read-modify-write of one account was a lost update);
    // now the commit validates both balance reads and the loser simply
    // re-runs against a fresh snapshot.
    let transferrers: Vec<_> = (0..2u64)
        .map(|t| {
            let h = store.register();
            std::thread::spawn(move || {
                let mut rng = 0x5eed ^ (t + 1);
                for _ in 0..TRANSFERS / 2 {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let from = account(rng % SHARDS as u64);
                    let to = account((rng >> 17) % SHARDS as u64);
                    if from == to {
                        continue;
                    }
                    // Serializable transfer, retried on validation abort.
                    let (_, receipt) = h.run_rw(|txn| {
                        let a = txn.get(&from).expect("account exists");
                        let b = txn.get(&to).expect("account exists");
                        if a > 0 {
                            txn.set(from, a - 1).set(to, b + 1);
                        }
                    });
                    assert!(receipt.applied_count() == 2 || receipt.applied.is_empty());
                }
            })
        })
        .collect();

    for t in transferrers {
        t.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let audits: u64 = auditors.into_iter().map(|a| a.join().unwrap()).sum();

    let h = store.register();
    let final_sum: u64 = h
        .range_query_vec(&0, &KEY_RANGE)
        .iter()
        .map(|(_, v)| v)
        .sum();
    let stats = h.store().txn_stats();
    println!("txn_store: {SHARDS} accounts across {SHARDS} shards");
    println!(
        "  {} transfer commits ({} conflict retries, {} validation aborts), \
         {audits} audits, elapsed {:?}",
        stats.commits,
        stats.conflicts,
        stats.validation_failures,
        start.elapsed()
    );
    assert_eq!(final_sum, total);
    println!("  invariant held in every snapshot: total balance stayed {total}");
}
