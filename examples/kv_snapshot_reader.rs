//! An analytics reader over a concurrently-updated key-value store.
//!
//! Writers append monotonically increasing event ids to a bundled lazy
//! list while an analytics thread scans key ranges. Because range queries
//! are linearized at their start, every scan sees a *gap-free prefix* of
//! the event stream — the property a log reader relies on.
//!
//! Run with: `cargo run --release --example kv_snapshot_reader`

use std::sync::Arc;

use bundled_refs::prelude::*;

fn main() {
    const EVENTS: u64 = 30_000;
    let log = Arc::new(BundledLazyList::<u64, u64>::new(2));

    let writer = {
        let log = Arc::clone(&log);
        std::thread::spawn(move || {
            for id in 0..EVENTS {
                // Value is a payload checksum; here simply id * 7.
                log.insert(0, id, id * 7);
            }
        })
    };

    let reader = {
        let log = Arc::clone(&log);
        std::thread::spawn(move || {
            let mut out = Vec::new();
            let mut scans = 0u64;
            let mut max_prefix = 0usize;
            loop {
                log.range_query(1, &0, &EVENTS, &mut out);
                scans += 1;
                // The snapshot must be a gap-free prefix of the event ids.
                for (i, (k, v)) in out.iter().enumerate() {
                    assert_eq!(*k, i as u64, "gap in supposedly atomic snapshot");
                    assert_eq!(*v, k * 7, "payload mismatch");
                }
                max_prefix = max_prefix.max(out.len());
                if out.len() as u64 == EVENTS {
                    return (scans, max_prefix);
                }
            }
        })
    };

    writer.join().unwrap();
    let (scans, max_prefix) = reader.join().unwrap();
    println!("writer appended {EVENTS} events");
    println!("reader performed {scans} scans; every one was a gap-free prefix");
    println!("largest observed prefix: {max_prefix}");
}
