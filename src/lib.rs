//! # bundled-refs
//!
//! Rust reproduction of *"Bundled References: An Abstraction for
//! Highly-Concurrent Linearizable Range Queries"* (Nelson, Hassan,
//! Palmieri — PPoPP 2021).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`bundle`] — the bundled-reference building block (global timestamp,
//!   bundles, `LinearizeUpdateOperation`, range-query tracker, recycler)
//!   and the [`bundle::api`] traits.
//! * [`ebr`] — DEBRA-style epoch-based reclamation.
//! * [`lazylist`], [`skiplist`], [`citrus`] — the three bundled data
//!   structures of the paper plus their `Unsafe` baselines.
//! * [`store`] — the production-direction subsystem grown on top of the
//!   paper: a [`store::BundledStore`] shards the keyspace across many
//!   bundled structures (any backend) that all share one
//!   [`bundle::RqContext`] clock, preserving linearizable range queries
//!   **across shards** while spreading update traffic over independent
//!   lock domains. Includes a tid-managing session API
//!   ([`store::StoreHandle`]) and batched `multi_get` / `multi_put`.
//! * [`txn`] — **serializable cross-shard transactions** over the store:
//!   [`txn::ReadWriteTxn`] answers all of its reads at one leased
//!   snapshot timestamp, records them as a validated read set, and
//!   commits through an explicit prepare → validate → advance-clock →
//!   finalize pipeline (per-shard 2PL intents + the bundle pending-entry
//!   protocol generalized to N shards), so reads still hold at the commit
//!   timestamp — full OCC serializability. [`txn::WriteTxn`] is the
//!   write-only degenerate case (empty read set, infallible commit).
//! * [`ingest`] — the **group-commit ingestion front-end**: clients
//!   fire operations (and whole `WriteTxn`-shaped batches) at per-shard
//!   submission queues and get back waitable [`ingest::Ticket`]s;
//!   committer threads coalesce submissions from different sessions into
//!   super-batches published through
//!   [`store::BundledStore::apply_grouped`] — one shared-clock advance
//!   per *group*, every group an atomic cut, same-key submissions
//!   serialized in queue order with outcome-exact tickets.
//! * [`obs`] — the **unified observability layer**: thread-sharded
//!   lock-free counters, gauges and power-of-two-bucket latency
//!   histograms behind an [`obs::MetricsRegistry`]. A store built with
//!   [`store::BundledStore::with_obs`] (and any `ingest` front-end
//!   spawned over it) records commit-pipeline stage latencies,
//!   conflict/abort causes, per-shard key-skew counters, queue
//!   depth / group size distributions, and EBR/tracker/clock gauges —
//!   one [`obs::MetricsSnapshot`] covers the whole pipeline. The
//!   default constructors skip it all at one never-taken branch per
//!   record site.
//! * [`wal`] — the **group-commit write-ahead log**: an append-only,
//!   CRC-checksummed segment log ([`wal::GroupWal`]) a store attaches as
//!   its [`store::CommitLog`]. Every published group is logged between
//!   validation and finalization — while readers still spin on the
//!   pending entries — so the durable prefix of the log is always a
//!   prefix of the visible history; [`wal::SyncPolicy`] trades fsync
//!   frequency for loss window, and [`wal::WalRecovery`] rebuilds a
//!   fresh store from the log after a crash at any byte boundary.
//! * [`dbsim`] — the DBx1000-style TPC-C substrate of §8.2, including
//!   the ingest-backed NEW_ORDER firehose
//!   ([`dbsim::run_new_order_firehose`]).
//! * [`workloads`] — the benchmark harness regenerating every figure and
//!   table of the evaluation, plus the sharded-store scaling scenario
//!   (`store_scaling` binary, `Store*` registry kinds).
//!
//! ## Quickstart
//!
//! ```
//! use bundled_refs::prelude::*;
//!
//! // A bundled skip list shared by up to 4 registered threads.
//! let set = BundledSkipList::<u64, u64>::new(4);
//! set.insert(0, 10, 100);
//! set.insert(0, 20, 200);
//! set.insert(0, 30, 300);
//! assert!(set.contains(0, &20));
//!
//! // A linearizable range query: an atomic snapshot of [10, 25].
//! let snapshot = set.range_query_vec(0, &10, &25);
//! assert_eq!(snapshot, vec![(10, 100), (20, 200)]);
//! ```
//!
//! ## Sharded store
//!
//! ```
//! use bundled_refs::prelude::*;
//! use std::sync::Arc;
//!
//! // 4 range shards over [0, 1000), each a bundled Citrus tree, all on
//! // one shared clock; sessions manage dense thread-id registration.
//! let store = Arc::new(CitrusStore::<u64, u64>::new(2, uniform_splits(4, 1000)));
//! let session = store.register();
//! session.multi_put(&[(10, 1), (400, 2), (900, 3)]);
//!
//! // One atomic snapshot spanning three shards.
//! assert_eq!(session.range_query_vec(&0, &999), vec![(10, 1), (400, 2), (900, 3)]);
//! ```

pub use bundle;
pub use citrus;
pub use dbsim;
pub use ebr;
pub use ingest;
pub use lazylist;
pub use obs;
pub use skiplist;
pub use store;
pub use txn;
pub use wal;
pub use workloads;

/// Convenient glob-importable set of the most commonly used items.
pub mod prelude {
    pub use bundle::api::{ConcurrentSet, RangeQuerySet};
    pub use bundle::{
        Bundle, CursorStats, GlobalTimestamp, PrepareCursor, Recycler, RqContext, RqTracker,
    };
    pub use citrus::{BundledCitrusTree, UnsafeCitrusTree};
    pub use ebr::{Collector, ReclaimMode};
    pub use ingest::{Ingest, IngestConfig, IngestOutcome, IngestStats, QueueFull, Ticket};
    pub use lazylist::{BundledLazyList, UnsafeLazyList};
    pub use obs::{MetricsRegistry, MetricsSnapshot};
    pub use skiplist::{BundledSkipList, UnsafeSkipList};
    pub use store::{
        uniform_splits, BundledStore, CitrusStore, GroupReceipt, LazyListStore, ShardBackend,
        ShardRead, SkipListStore, StoreHandle, StoreSnapshot, TxnAborted, TxnOp, TxnStats,
    };
    pub use txn::{ReadWriteTxn, StoreTxnExt, TxnReceipt, TxnStore, WriteTxn};
    pub use wal::{GroupWal, SyncPolicy, WalRecovery};
}
