//! # bundled-refs
//!
//! Rust reproduction of *"Bundled References: An Abstraction for
//! Highly-Concurrent Linearizable Range Queries"* (Nelson, Hassan,
//! Palmieri — PPoPP 2021).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`bundle`] — the bundled-reference building block (global timestamp,
//!   bundles, `LinearizeUpdateOperation`, range-query tracker, recycler)
//!   and the [`bundle::api`] traits.
//! * [`ebr`] — DEBRA-style epoch-based reclamation.
//! * [`lazylist`], [`skiplist`], [`citrus`] — the three bundled data
//!   structures of the paper plus their `Unsafe` baselines.
//! * [`dbsim`] — the DBx1000-style TPC-C substrate of §8.2.
//! * [`workloads`] — the benchmark harness regenerating every figure and
//!   table of the evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use bundled_refs::prelude::*;
//!
//! // A bundled skip list shared by up to 4 registered threads.
//! let set = BundledSkipList::<u64, u64>::new(4);
//! set.insert(0, 10, 100);
//! set.insert(0, 20, 200);
//! set.insert(0, 30, 300);
//! assert!(set.contains(0, &20));
//!
//! // A linearizable range query: an atomic snapshot of [10, 25].
//! let snapshot = set.range_query_vec(0, &10, &25);
//! assert_eq!(snapshot, vec![(10, 100), (20, 200)]);
//! ```

pub use bundle;
pub use citrus;
pub use dbsim;
pub use ebr;
pub use lazylist;
pub use skiplist;
pub use workloads;

/// Convenient glob-importable set of the most commonly used items.
pub mod prelude {
    pub use bundle::api::{ConcurrentSet, RangeQuerySet};
    pub use bundle::{Bundle, GlobalTimestamp, Recycler, RqTracker};
    pub use citrus::{BundledCitrusTree, UnsafeCitrusTree};
    pub use ebr::{Collector, ReclaimMode};
    pub use lazylist::{BundledLazyList, UnsafeLazyList};
    pub use skiplist::{BundledSkipList, UnsafeSkipList};
}
