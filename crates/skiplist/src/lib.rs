//! Lazy skip list implementations (§5 of the paper).
//!
//! The base algorithm is the optimistic lazy skip list of Herlihy, Lev,
//! Luchangco and Shavit (SIROCCO 2007): wait-free `contains`, fine-grained
//! locking updates, logical deletion, and a `fullyLinked` flag that marks
//! the linearization point of insertions.
//!
//! * [`BundledSkipList`] applies bundled references to the bottom (data)
//!   layer only — the paper's optimization: index layers are used to reach
//!   the range quickly, bundles are used to traverse it consistently.
//! * [`UnsafeSkipList`] is the paper's `Unsafe` baseline: identical
//!   primitive operations, non-linearizable range scans over the data
//!   layer.

mod bundled;
mod unsafe_rq;

pub use bundled::{BundledSkipList, ShardCursor, ShardTxn};
pub use unsafe_rq::UnsafeSkipList;

/// Number of levels in every tower array (level 0 is the data layer).
pub const MAX_LEVEL: usize = 20;
