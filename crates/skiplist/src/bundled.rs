//! The bundled lazy skip list (§5).

use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam_utils::CachePadded;
use parking_lot::{Mutex, MutexGuard};

use bundle::api::{ConcurrentSet, RangeQuerySet};
use bundle::{
    linearize_update, Bundle, Conflict, CursorStats, GlobalTimestamp, PrepareCursor, Recycler,
    RqContext, RqTracker, StagedOutcomes, TwoPhaseState, TxnValidateError,
};
use ebr::{Collector, Guard, ReclaimMode};

use crate::MAX_LEVEL;

struct Node<K, V> {
    key: K,
    val: Option<V>,
    top_level: usize,
    lock: Mutex<()>,
    marked: AtomicBool,
    fully_linked: AtomicBool,
    next: [AtomicPtr<Node<K, V>>; MAX_LEVEL],
    /// Bundled reference for the bottom (data) layer link only — the
    /// paper's optimization: index layers are never consulted by in-range
    /// traversals, so they are left unbundled.
    bundle: Bundle<Node<K, V>>,
}

impl<K, V> Node<K, V> {
    fn new(key: K, val: Option<V>, top_level: usize) -> *mut Node<K, V> {
        Box::into_raw(Box::new(Node {
            key,
            val,
            top_level,
            lock: Mutex::new(()),
            marked: AtomicBool::new(false),
            fully_linked: AtomicBool::new(false),
            next: std::array::from_fn(|_| AtomicPtr::new(ptr::null_mut())),
            bundle: Bundle::new(),
        }))
    }
}

/// Lazy skip list with bundled references on the data layer, providing
/// linearizable range queries (§5 of the paper).
pub struct BundledSkipList<K, V> {
    head: *mut Node<K, V>,
    tail: *mut Node<K, V>,
    /// Possibly shared with other structures (see [`RqContext`]); a list
    /// built through [`Self::new`] owns a private clock, matching the paper.
    clock: Arc<GlobalTimestamp>,
    tracker: Arc<RqTracker>,
    collector: Collector,
    seeds: Box<[CachePadded<AtomicU64>]>,
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for BundledSkipList<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for BundledSkipList<K, V> {}

impl<K, V> BundledSkipList<K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Create a skip list supporting `max_threads` registered threads.
    pub fn new(max_threads: usize) -> Self {
        Self::with_mode(max_threads, ReclaimMode::Reclaim)
    }

    /// Create a skip list with an explicit reclamation mode.
    pub fn with_mode(max_threads: usize, mode: ReclaimMode) -> Self {
        Self::with_context(max_threads, mode, &RqContext::new(max_threads))
    }

    /// Create a skip list ordering its updates through a possibly *shared*
    /// linearization context.
    ///
    /// Structures built from clones of the same [`RqContext`] totally order
    /// their updates on one clock, so a caller that fixes a snapshot
    /// timestamp once can traverse all of them atomically with
    /// [`Self::range_query_at`] — the basis of the sharded store's
    /// cross-shard linearizable range queries.
    pub fn with_context(max_threads: usize, mode: ReclaimMode, ctx: &RqContext) -> Self {
        let tail = Node::new(K::default(), None, MAX_LEVEL - 1);
        let head = Node::new(K::default(), None, MAX_LEVEL - 1);
        unsafe {
            for lvl in 0..MAX_LEVEL {
                (*head).next[lvl].store(tail, Ordering::Release);
            }
            (*head).fully_linked.store(true, Ordering::Release);
            (*tail).fully_linked.store(true, Ordering::Release);
            (*head).bundle.init(tail, 0);
        }
        let seeds = (0..max_threads.max(1))
            .map(|i| {
                CachePadded::new(AtomicU64::new(
                    0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1),
                ))
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        BundledSkipList {
            head,
            tail,
            clock: Arc::clone(ctx.clock()),
            tracker: Arc::clone(ctx.tracker()),
            collector: Collector::new(max_threads, mode),
            seeds,
        }
    }

    /// Skip list whose global timestamp only advances every `t`-th update
    /// per thread (Appendix A relaxation; `t = 0` means never).
    pub fn with_relaxation(max_threads: usize, t: u64) -> Self {
        Self::with_context(
            max_threads,
            ReclaimMode::Reclaim,
            &RqContext::with_threshold(max_threads, t),
        )
    }

    /// The structure's epoch collector (diagnostics).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// The structure's global timestamp (diagnostics).
    pub fn clock(&self) -> &GlobalTimestamp {
        &self.clock
    }

    /// A handle to the linearization context this skip list uses (shared
    /// with every other structure built from the same context).
    pub fn context(&self) -> RqContext {
        RqContext::from_parts(Arc::clone(&self.clock), Arc::clone(&self.tracker))
    }

    fn pin(&self, tid: usize) -> Guard<'_> {
        self.collector.pin(tid)
    }

    /// Geometric (p = 1/2) tower height from a per-thread xorshift PRNG.
    fn random_level(&self, tid: usize) -> usize {
        let slot = &self.seeds[tid % self.seeds.len()];
        let mut x = slot.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        slot.store(x, Ordering::Relaxed);
        ((x.trailing_ones()) as usize).min(MAX_LEVEL - 1)
    }

    /// Standard skip list search: fill `preds`/`succs` at every level and
    /// return the highest level at which `key` was found.
    fn find(
        &self,
        key: &K,
        preds: &mut [*mut Node<K, V>; MAX_LEVEL],
        succs: &mut [*mut Node<K, V>; MAX_LEVEL],
    ) -> Option<usize> {
        let mut lfound = None;
        let mut pred = self.head;
        for lvl in (0..MAX_LEVEL).rev() {
            let mut curr = unsafe { &*pred }.next[lvl].load(Ordering::Acquire);
            while curr != self.tail && unsafe { &*curr }.key < *key {
                pred = curr;
                curr = unsafe { &*pred }.next[lvl].load(Ordering::Acquire);
            }
            if lfound.is_none() && curr != self.tail && unsafe { &*curr }.key == *key {
                lfound = Some(lvl);
            }
            preds[lvl] = pred;
            succs[lvl] = curr;
        }
        lfound
    }

    /// [`Self::find`] resuming from a retained predecessor/successor
    /// frontier (finger search). Returns the found level plus whether the
    /// frontier was resumed (`false` = full root descent ran).
    ///
    /// The finger search is O(log distance), not O(log n): an **ascend
    /// probe** climbs from level 0 to the highest level at which the
    /// frontier can still advance toward the target (~log₂ of the key
    /// distance), a plain descent runs from that single validated entry
    /// down to level 0, and every level *above* the start is filled by
    /// copying the frontier as-is — no pointer chasing at all. The
    /// stale-copied positions are only trustworthy under the callers'
    /// existing under-lock validation: an insert never links above its
    /// pre-drawn tower height (passed as `min_levels`, so every level
    /// the insert links is genuinely walked), and a remove validates
    /// every level against the victim (`expect_succ`), falling back to a
    /// root descent when a stale upper entry disagrees. For the same
    /// reason the found level is derived only from walked levels: a
    /// found node whose tower outgrows the walk deflects the remove into
    /// a root-descent retry (geometrically rare).
    ///
    /// A frontier entry that goes stale *after* its validity check
    /// (unlinked mid-walk) can only yield a stale position, never a torn
    /// one (an unlinked node's forward pointers are not cleared), and
    /// every caller re-validates positions under node locks before
    /// acting.
    fn find_hinted(
        &self,
        key: &K,
        hint: Option<&Frontier<K, V>>,
        min_levels: usize,
        preds: &mut [*mut Node<K, V>; MAX_LEVEL],
        succs: &mut [*mut Node<K, V>; MAX_LEVEL],
    ) -> (Option<usize>, bool) {
        let Some(front) = hint else {
            return (self.find(key, preds, succs), false);
        };
        // Ascend probe: the highest level at which the frontier entry is
        // still usable (live, fully linked, strictly before the target)
        // and can still advance toward the target. Breaks on the first
        // level that cannot advance — higher frontier entries sit at
        // even smaller keys, so walking would start further back.
        let mut ascend = usize::MAX; // MAX = no usable level (full descent)
        for lvl in 0..MAX_LEVEL {
            let cand = front.preds[lvl];
            if cand.is_null() || cand == self.head {
                break;
            }
            let c = unsafe { &*cand };
            if c.key >= *key
                || c.marked.load(Ordering::Acquire)
                || !c.fully_linked.load(Ordering::Acquire)
            {
                break;
            }
            ascend = lvl;
            let nxt = c.next[lvl].load(Ordering::Acquire);
            if nxt == self.tail || unsafe { &*nxt }.key >= *key {
                break;
            }
        }
        if ascend == usize::MAX {
            return (self.find(key, preds, succs), false);
        }
        // An insert must genuinely walk every level it will link; when
        // its tower outgrows the probe, the start entry at that height
        // needs its own validation (rare — towers are geometric).
        let start = ascend.max(min_levels).min(MAX_LEVEL - 1);
        if start > ascend {
            let cand = front.preds[start];
            if cand.is_null() || cand == self.head {
                return (self.find(key, preds, succs), false);
            }
            let c = unsafe { &*cand };
            if c.key >= *key
                || c.marked.load(Ordering::Acquire)
                || !c.fully_linked.load(Ordering::Acquire)
            {
                return (self.find(key, preds, succs), false);
            }
        }
        // Levels above the start: the frontier position verbatim (plain
        // copies; re-validated under locks before any use).
        preds[(start + 1)..].copy_from_slice(&front.preds[(start + 1)..]);
        succs[(start + 1)..].copy_from_slice(&front.succs[(start + 1)..]);
        // Plain descent from the validated start entry.
        let mut lfound = None;
        let mut pred = front.preds[start];
        for lvl in (0..=start).rev() {
            let mut curr = unsafe { &*pred }.next[lvl].load(Ordering::Acquire);
            while curr != self.tail && unsafe { &*curr }.key < *key {
                pred = curr;
                curr = unsafe { &*pred }.next[lvl].load(Ordering::Acquire);
            }
            if lfound.is_none() && curr != self.tail && unsafe { &*curr }.key == *key {
                lfound = Some(lvl);
            }
            preds[lvl] = pred;
            succs[lvl] = curr;
        }
        (lfound, true)
    }

    /// Total number of bundle entries on the data layer (diagnostic).
    pub fn bundle_entries(&self, tid: usize) -> usize {
        let _guard = self.pin(tid);
        let mut n = 0;
        let mut curr = self.head;
        while !curr.is_null() {
            let node = unsafe { &*curr };
            n += node.bundle.len();
            if curr == self.tail {
                break;
            }
            curr = node.next[0].load(Ordering::Acquire);
        }
        n
    }

    /// One cleanup pass pruning stale bundle entries (Appendix B).
    pub fn cleanup_bundles(&self, tid: usize) -> usize {
        let guard = self.pin(tid);
        let oldest = self.tracker.oldest_active(self.clock.read());
        let mut reclaimed = 0;
        let mut curr = self.head;
        while !curr.is_null() && curr != self.tail {
            let node = unsafe { &*curr };
            reclaimed += node.bundle.reclaim_up_to(oldest, &guard);
            curr = node.next[0].load(Ordering::Acquire);
        }
        self.collector.try_advance();
        reclaimed
    }

    /// Spawn a background recycler running [`Self::cleanup_bundles`] every
    /// `delay` on thread slot `tid`.
    pub fn spawn_recycler(self: &std::sync::Arc<Self>, tid: usize, delay: Duration) -> Recycler
    where
        K: 'static,
        V: 'static,
    {
        let sl = std::sync::Arc::clone(self);
        Recycler::spawn(delay, move || {
            sl.cleanup_bundles(tid);
        })
    }

    /// One optimistic attempt to collect the snapshot at `ts`: descend the
    /// index layers over the newest pointers, then hop strictly through the
    /// data-layer bundles.
    ///
    /// `None` means the optimistic entry landed on a node created after the
    /// snapshot and the caller must retry. The caller holds the EBR guard.
    /// When `nodes` is supplied, the address of every collected node is
    /// recorded alongside (see [`Self::txn_range_read`]).
    fn try_collect_at(
        &self,
        ts: u64,
        low: &K,
        high: &K,
        out: &mut Vec<(K, V)>,
        mut nodes: Option<&mut Vec<(K, usize)>>,
    ) -> Option<usize> {
        out.clear();
        if let Some(ns) = nodes.as_deref_mut() {
            ns.clear();
        }
        // Phase 1 (GetFirstNodeInRange): descend through the index layers
        // using the newest pointers to reach the data-layer node preceding
        // the range.
        let mut pred = self.head;
        for lvl in (0..MAX_LEVEL).rev() {
            let mut curr = unsafe { &*pred }.next[lvl].load(Ordering::Acquire);
            while curr != self.tail && unsafe { &*curr }.key < *low {
                pred = curr;
                curr = unsafe { &*pred }.next[lvl].load(Ordering::Acquire);
            }
        }

        // Phase 2: enter and traverse the range strictly through the
        // data-layer bundles.
        let mut node = unsafe { &*pred }.bundle.dereference(ts)?;
        while node != self.tail && unsafe { &*node }.key < *low {
            node = unsafe { &*node }.bundle.dereference(ts)?;
        }
        while node != self.tail && unsafe { &*node }.key <= *high {
            let n = unsafe { &*node };
            out.push((n.key, n.val.clone().expect("data node has a value")));
            if let Some(ns) = nodes.as_deref_mut() {
                ns.push((n.key, node as usize));
            }
            node = n.bundle.dereference(ts)?;
        }
        Some(out.len())
    }

    /// Guaranteed snapshot collection at `ts`: walk the data layer from the
    /// head sentinel strictly through bundles (no index layers). Never
    /// restarts — the head's bundle is initialized at timestamp 0 and
    /// cleanup keeps every entry the oldest announced snapshot needs.
    fn collect_snapshot_at(
        &self,
        ts: u64,
        low: &K,
        high: &K,
        out: &mut Vec<(K, V)>,
        mut nodes: Option<&mut Vec<(K, usize)>>,
    ) -> usize {
        out.clear();
        if let Some(ns) = nodes.as_deref_mut() {
            ns.clear();
        }
        let mut node = unsafe { &*self.head }
            .bundle
            .dereference(ts)
            .expect("head bundle must satisfy an announced snapshot");
        while node != self.tail && unsafe { &*node }.key < *low {
            node = unsafe { &*node }
                .bundle
                .dereference(ts)
                .expect("snapshot path must stay satisfiable");
        }
        while node != self.tail && unsafe { &*node }.key <= *high {
            let n = unsafe { &*node };
            out.push((n.key, n.val.clone().expect("data node has a value")));
            if let Some(ns) = nodes.as_deref_mut() {
                ns.push((n.key, node as usize));
            }
            node = n
                .bundle
                .dereference(ts)
                .expect("snapshot path must stay satisfiable");
        }
        out.len()
    }

    /// Range query at a *caller-fixed* snapshot timestamp.
    ///
    /// Used by multi-structure callers (the sharded store): read the shared
    /// clock once, announce it in the shared tracker, then call this on
    /// every structure — together the results form one atomic snapshot.
    ///
    /// Contract: `ts` must be announced in this structure's [`RqTracker`]
    /// (e.g. via [`bundle::RqContext::start_rq`]) for the whole call, so
    /// bundle cleanup cannot reclaim entries the traversal needs; `ts` must
    /// also not exceed the shared clock's current value.
    pub fn range_query_at(
        &self,
        tid: usize,
        ts: u64,
        low: &K,
        high: &K,
        out: &mut Vec<(K, V)>,
    ) -> usize {
        let _guard = self.pin(tid);
        // Optimistic attempts use the index layers to enter the range
        // directly; the fixed timestamp cannot be refreshed on failure, so
        // fall back to the bundle-only data-layer walk, which always
        // succeeds (at the cost of an O(n) entry).
        for _ in 0..MAX_OPTIMISTIC_ATTEMPTS {
            if let Some(n) = self.try_collect_at(ts, low, high, out, None) {
                return n;
            }
        }
        self.collect_snapshot_at(ts, low, high, out, None)
    }

    /// Transactional range read: collect `low..=high` as of snapshot `ts`
    /// exactly like [`Self::range_query_at`], additionally recording each
    /// collected node's address into `nodes` — the per-transaction **read
    /// set** that [`Self::txn_validate`] re-checks and pins at commit.
    /// Nodes are immutable once created, so node identity doubles as value
    /// identity.
    ///
    /// Same contract as `range_query_at`, plus: the caller must hold an
    /// EBR pin on this structure from before the read lease until
    /// validation so the recorded addresses stay comparable (no reuse).
    pub fn txn_range_read(
        &self,
        tid: usize,
        ts: u64,
        low: &K,
        high: &K,
        out: &mut Vec<(K, V)>,
        nodes: &mut Vec<(K, usize)>,
    ) -> usize {
        let _guard = self.pin(tid);
        for _ in 0..MAX_OPTIMISTIC_ATTEMPTS {
            if let Some(n) = self.try_collect_at(ts, low, high, out, Some(nodes)) {
                return n;
            }
        }
        self.collect_snapshot_at(ts, low, high, out, Some(nodes))
    }

    /// Transactional point read: [`Self::txn_range_read`] over the
    /// degenerate range `[key, key]`, returning the value.
    pub fn txn_read(&self, tid: usize, ts: u64, key: &K, nodes: &mut Vec<(K, usize)>) -> Option<V> {
        let mut out = Vec::with_capacity(1);
        self.txn_range_read(tid, ts, key, key, &mut out, nodes);
        out.pop().map(|(_, v)| v)
    }

    /// Lock `preds[0..=top]`, skipping duplicates, and validate that every
    /// level still links `pred -> succ` with both unmarked. Returns the
    /// guards on success (dropping them releases the locks).
    fn lock_and_validate<'a>(
        &self,
        preds: &[*mut Node<K, V>; MAX_LEVEL],
        succs: &[*mut Node<K, V>; MAX_LEVEL],
        top: usize,
        expect_succ: Option<*mut Node<K, V>>,
    ) -> Option<Vec<MutexGuard<'a, ()>>> {
        let mut guards: Vec<MutexGuard<'_, ()>> = Vec::with_capacity(top + 1);
        let mut prev: *mut Node<K, V> = ptr::null_mut();
        let mut valid = true;
        for lvl in 0..=top {
            let pred = preds[lvl];
            let succ = expect_succ.unwrap_or(succs[lvl]);
            if pred != prev {
                // Safety: the node is reachable (we hold an EBR guard) and
                // stays allocated while the guard is live, so the lock
                // outlives the returned guards.
                let lock: MutexGuard<'a, ()> = unsafe { &*pred }.lock.lock();
                guards.push(lock);
                prev = pred;
            }
            let p = unsafe { &*pred };
            let s_marked = if succ == self.tail {
                false
            } else {
                unsafe { &*succ }.marked.load(Ordering::Acquire)
            };
            // `fully_linked` on the predecessor is load-bearing for the
            // bundles, not just the tower: an insert publishes its node's
            // data-layer pointers *before* preparing its bundle (only
            // `fullyLinked` is the linearization point). Using such a
            // half-linked node as a predecessor would write our bundle
            // entry into its still-empty bundle; the insert would then
            // finalize its own entry with a larger timestamp, reordering
            // history so snapshots resurrect our removed successor (a
            // use-after-free once the successor's memory is reclaimed).
            valid = !p.marked.load(Ordering::Acquire)
                && p.fully_linked.load(Ordering::Acquire)
                && !s_marked
                && p.next[lvl].load(Ordering::Acquire) == succ;
            if !valid {
                break;
            }
        }
        if valid {
            Some(guards)
        } else {
            None
        }
    }
}

/// Accumulated two-phase state of one transaction's writes on this skip
/// list: the shared lock/pending bookkeeping ([`bundle::TwoPhaseState`])
/// plus the skip-list-specific undo log that reverts the eager structural
/// changes on abort. See [`BundledSkipList::txn_begin`].
pub struct ShardTxn<K, V> {
    core: TwoPhaseState<Node<K, V>>,
    undo: Vec<SkipUndo<K, V>>,
    /// Per-key pre/post images of the staged writes, consumed by
    /// [`BundledSkipList::txn_validate`].
    staged: StagedOutcomes<K>,
}

enum SkipUndo<K, V> {
    Link {
        node: *mut Node<K, V>,
        preds: [*mut Node<K, V>; MAX_LEVEL],
        succs: [*mut Node<K, V>; MAX_LEVEL],
        top: usize,
    },
    Unlink {
        victim: *mut Node<K, V>,
        preds: [*mut Node<K, V>; MAX_LEVEL],
        top: usize,
    },
}

impl<K, V> ShardTxn<K, V> {
    /// Number of staged write operations.
    #[must_use]
    pub fn staged_ops(&self) -> usize {
        self.undo.len()
    }

    /// `true` when nothing has been staged or pinned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.undo.is_empty() && self.core.is_empty()
    }
}

impl<K, V> BundledSkipList<K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Begin accumulating two-phase writes for thread `tid`.
    pub fn txn_begin(&self, tid: usize) -> ShardTxn<K, V> {
        ShardTxn {
            core: TwoPhaseState::new(tid),
            undo: Vec::new(),
            staged: StagedOutcomes::new(),
        }
    }

    /// [`txn_begin`](Self::txn_begin) for a **write-only** pipeline: the
    /// transaction has no read set, so no validate phase will run and the
    /// per-key pre/post images are not recorded (one map insert saved per
    /// staged op — group commits stage hundreds of ops per token, so the
    /// bookkeeping nothing reads is worth skipping). Calling
    /// [`txn_validate`](Self::txn_validate) on such a token is a contract
    /// violation (debug-asserted in `StagedOutcomes`).
    pub fn txn_begin_write_only(&self, tid: usize) -> ShardTxn<K, V> {
        ShardTxn {
            core: TwoPhaseState::new(tid),
            undo: Vec::new(),
            staged: StagedOutcomes::disabled(),
        }
    }

    /// Acquire `node`'s lock for the transaction unless already held;
    /// `Ok(true)` = newly acquired (see [`TwoPhaseState::lock`]).
    fn txn_lock(&self, txn: &mut ShardTxn<K, V>, node: *mut Node<K, V>) -> Result<bool, Conflict> {
        // Safety: `node` is reachable (caller pins EBR) and a locked node
        // is never retired — every remover must lock its victim first.
        unsafe { txn.core.lock(node, &(*node).lock) }
    }

    /// Transaction-aware variant of `lock_and_validate`: skips locks the
    /// transaction already holds, uses bounded `try_lock` for the rest.
    /// `Ok(true)` = locked and valid; `Ok(false)` = validation failed (the
    /// newly acquired locks were released, caller retries its traversal);
    /// `Err(Conflict)` = a lock could not be acquired (caller aborts).
    fn txn_lock_and_validate(
        &self,
        txn: &mut ShardTxn<K, V>,
        preds: &[*mut Node<K, V>; MAX_LEVEL],
        succs: &[*mut Node<K, V>; MAX_LEVEL],
        top: usize,
        expect_succ: Option<*mut Node<K, V>>,
    ) -> Result<bool, Conflict> {
        let mut newly = 0usize;
        let mut prev: *mut Node<K, V> = ptr::null_mut();
        let mut valid = true;
        for lvl in 0..=top {
            let pred = preds[lvl];
            let succ = expect_succ.unwrap_or(succs[lvl]);
            if pred != prev {
                match self.txn_lock(txn, pred) {
                    Ok(true) => newly += 1,
                    Ok(false) => {}
                    Err(c) => {
                        txn.core.unlock_latest(newly);
                        return Err(c);
                    }
                }
                prev = pred;
            }
            let p = unsafe { &*pred };
            let s_marked = if succ == self.tail {
                false
            } else {
                unsafe { &*succ }.marked.load(Ordering::Acquire)
            };
            valid = !p.marked.load(Ordering::Acquire)
                && p.fully_linked.load(Ordering::Acquire)
                && !s_marked
                && p.next[lvl].load(Ordering::Acquire) == succ;
            if !valid {
                break;
            }
        }
        if valid {
            Ok(true)
        } else {
            txn.core.unlock_latest(newly);
            Ok(false)
        }
    }

    /// Open a [`ShardCursor`] over `txn`: the positional batch-staging
    /// surface (see [`bundle::PrepareCursor`]). The cursor retains the
    /// per-level predecessor frontier of the last located position and
    /// resumes subsequent finds from it (finger search), so a key-sorted
    /// batch pays one full descent plus short per-level walks instead of
    /// a root descent per op.
    pub fn txn_cursor(&self, txn: ShardTxn<K, V>) -> ShardCursor<'_, K, V> {
        // The cursor-lifetime pin keeps every retained frontier pointer
        // allocated between seeks (pins are reentrant).
        let guard = self.pin(txn.core.tid());
        ShardCursor {
            list: self,
            txn,
            _guard: guard,
            frontier: Frontier {
                preds: [ptr::null_mut(); MAX_LEVEL],
                succs: [ptr::null_mut(); MAX_LEVEL],
            },
            has_frontier: false,
            stats: CursorStats::default(),
        }
    }

    /// Validate one recorded read range of a read-write transaction and
    /// **pin it until commit**. Must run after every staged write of the
    /// transaction on this structure, under the store's shard intent lock.
    ///
    /// Re-walks the data layer over `low..=high` via the newest pointers,
    /// locking the level-0 gap predecessor and every in-range node
    /// (bounded `try_lock` → [`TxnValidateError::Conflict`] on
    /// contention), then compares the found `(key, node)` list against the
    /// recorded read adjusted for the transaction's own staged writes. A
    /// mismatch is a foreign commit inside the range since the leased read
    /// timestamp: [`TxnValidateError::Invalidated`]. The held locks pin
    /// the range until finalize/abort — every insert of an in-range key
    /// must link level 0 through one of them, and every remove must lock
    /// its victim.
    pub fn txn_validate(
        &self,
        txn: &mut ShardTxn<K, V>,
        low: &K,
        high: &K,
        recorded: &[(K, usize)],
    ) -> Result<(), TxnValidateError> {
        let expected = txn.staged.expected_now(low, high, recorded)?;
        let _guard = self.pin(txn.core.tid());
        bundle::validate_chain(
            &mut txn.core,
            &expected,
            high,
            self.tail,
            || {
                let mut preds = [ptr::null_mut(); MAX_LEVEL];
                let mut succs = [ptr::null_mut(); MAX_LEVEL];
                self.find(low, &mut preds, &mut succs);
                (preds[0], succs[0])
            },
            // Safety: nodes produced by find/step are reachable under the
            // EBR pin above; a locked node is never retired.
            |core, node| unsafe { core.lock(node, &(*node).lock) },
            |pred, first| {
                let p = unsafe { &*pred };
                !p.marked.load(Ordering::Acquire)
                    && p.fully_linked.load(Ordering::Acquire)
                    && p.next[0].load(Ordering::Acquire) == first
            },
            |node| unsafe { &*node }.key,
            |prev, curr| {
                let c = unsafe { &*curr };
                // Removed or half-linked nodes are torn observations.
                if c.marked.load(Ordering::Acquire)
                    || !c.fully_linked.load(Ordering::Acquire)
                    || unsafe { &*prev }.next[0].load(Ordering::Acquire) != curr
                {
                    None
                } else {
                    Some((c.key, c.next[0].load(Ordering::Acquire)))
                }
            },
        )
    }

    /// Commit: publish every staged bundle entry with the transaction's
    /// single timestamp, release the locks, retire removed nodes.
    pub fn txn_finalize(&self, txn: ShardTxn<K, V>, ts: u64) {
        let tid = txn.core.tid();
        let victims = txn.core.finalize(ts);
        let guard = self.pin(tid);
        for v in victims {
            // Safety: unlinked by this transaction under the proper locks;
            // EBR defers the free past concurrent readers.
            unsafe { guard.retire(v) };
        }
    }

    /// Abort: revert the eager structural changes in reverse order, then
    /// neutralize the pending bundle entries, release the locks, and
    /// retire the nodes the transaction created.
    pub fn txn_abort(&self, txn: ShardTxn<K, V>) {
        let ShardTxn { core, mut undo, .. } = txn;
        let tid = core.tid();
        while let Some(op) = undo.pop() {
            match op {
                SkipUndo::Link {
                    node,
                    preds,
                    succs,
                    top,
                } => {
                    // Mark the stillborn node so a primitive operation
                    // blocked on its lock re-validates and retries.
                    unsafe { &*node }.marked.store(true, Ordering::SeqCst);
                    for lvl in (0..=top).rev() {
                        unsafe { &*preds[lvl] }.next[lvl].store(succs[lvl], Ordering::SeqCst);
                    }
                }
                SkipUndo::Unlink { victim, preds, top } => {
                    for (lvl, &pred) in preds.iter().enumerate().take(top + 1) {
                        unsafe { &*pred }.next[lvl].store(victim, Ordering::SeqCst);
                    }
                    unsafe { &*victim }.marked.store(false, Ordering::SeqCst);
                }
            }
        }
        // Only after the physical state is fully reverted: release any
        // snapshot readers spinning on our pending entries.
        let created = core.abort();
        let guard = self.pin(tid);
        for n in created {
            // Safety: unlinked above; EBR defers the free.
            unsafe { guard.retire(n) };
        }
    }
}

/// A retained finger: the `preds`/`succs` arrays of a cursor's last
/// located position.
struct Frontier<K, V> {
    preds: [*mut Node<K, V>; MAX_LEVEL],
    succs: [*mut Node<K, V>; MAX_LEVEL],
}

/// A prepare cursor over one [`ShardTxn`] (see
/// [`BundledSkipList::txn_cursor`] and [`bundle::PrepareCursor`]).
///
/// The retained frontier is the last located position's per-level
/// predecessor/successor arrays (with a freshly staged node substituted
/// on the levels of its tower). Level-0 entries after a staged write
/// are nodes the transaction holds locked; upper levels are unlocked
/// *hints*, validated (unmarked, fully linked, still before the target)
/// up to the finger-search start level before each resume, with stale
/// positions above it caught by the under-lock validation every prepare
/// performs (the retry falls back to a root descent).
pub struct ShardCursor<'a, K, V> {
    list: &'a BundledSkipList<K, V>,
    txn: ShardTxn<K, V>,
    /// Keeps every retained frontier pointer allocated between seeks.
    _guard: Guard<'a>,
    frontier: Frontier<K, V>,
    has_frontier: bool,
    stats: CursorStats,
}

impl<'a, K, V> ShardCursor<'a, K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    /// One find, resuming from the retained frontier when `use_hint`
    /// (the caller clears it after the first attempt — a retry within
    /// one seek restarts from the root). `min_levels` is the highest
    /// level the caller will eagerly link (an insert's pre-drawn tower
    /// height): those levels are always genuinely walked, never
    /// stale-copied.
    fn locate(
        &mut self,
        key: &K,
        use_hint: bool,
        min_levels: usize,
        preds: &mut [*mut Node<K, V>; MAX_LEVEL],
        succs: &mut [*mut Node<K, V>; MAX_LEVEL],
    ) -> Option<usize> {
        let hint = if use_hint && self.has_frontier {
            Some(&self.frontier)
        } else {
            None
        };
        let (lfound, resumed) = self.list.find_hinted(key, hint, min_levels, preds, succs);
        if resumed {
            self.stats.hinted += 1;
        } else {
            self.stats.descents += 1;
        }
        lfound
    }

    /// Retain the located position as the next frontier.
    fn retain_preds(
        &mut self,
        preds: &[*mut Node<K, V>; MAX_LEVEL],
        succs: &[*mut Node<K, V>; MAX_LEVEL],
    ) {
        self.frontier.preds = *preds;
        self.frontier.succs = *succs;
        self.has_frontier = true;
    }

    /// Retain the position with a just-linked `node` (tower height
    /// `top`) substituted on the levels of its tower: the node now sits
    /// between `preds` and `succs` there.
    fn retain_node(
        &mut self,
        preds: &[*mut Node<K, V>; MAX_LEVEL],
        succs: &[*mut Node<K, V>; MAX_LEVEL],
        node: *mut Node<K, V>,
        top: usize,
    ) {
        for lvl in 0..MAX_LEVEL {
            self.frontier.preds[lvl] = if lvl <= top { node } else { preds[lvl] };
            self.frontier.succs[lvl] = succs[lvl];
        }
        self.has_frontier = true;
    }

    /// Stage an insert at the sought position: eager structural link (so
    /// later keys of the same transaction observe it) with the affected
    /// data-layer bundle entries left *pending* until the transaction's
    /// single commit timestamp. `Ok(false)` = key already present; the
    /// present node stays locked so the no-op outcome still holds at the
    /// commit timestamp.
    pub fn seek_prepare_put(&mut self, key: K, value: V) -> Result<bool, Conflict> {
        let list = self.list;
        let top = list.random_level(self.txn.core.tid());
        let mut preds = [ptr::null_mut(); MAX_LEVEL];
        let mut succs = [ptr::null_mut(); MAX_LEVEL];
        let mut use_hint = true;
        loop {
            let lfound = self.locate(&key, use_hint, top, &mut preds, &mut succs);
            use_hint = false;
            let txn = &mut self.txn;
            if let Some(l) = lfound {
                let found = succs[l];
                let f = unsafe { &*found };
                if f.marked.load(Ordering::Acquire) {
                    continue;
                }
                while !f.fully_linked.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                // Pin the no-op: hold the present node's lock until
                // commit (a remove must acquire it, so the key stays
                // present). If it got marked before we locked it, the
                // remove linearized first — retry and miss it.
                let newly = list.txn_lock(txn, found)?;
                if f.marked.load(Ordering::Acquire) {
                    if newly {
                        txn.core.unlock_latest(1);
                        continue;
                    }
                    return Err(Conflict);
                }
                txn.staged
                    .record(key, Some(found as usize), Some(found as usize));
                // Retain the position just *before* the found key (its
                // successors are the found node itself on the levels of
                // its tower, which keeps the frontier's succs honest).
                self.retain_preds(&preds, &succs);
                return Ok(false);
            }
            if !list.txn_lock_and_validate(txn, &preds, &succs, top, None)? {
                continue;
            }
            let node = Node::new(key, Some(value), top);
            let node_ref = unsafe { &*node };
            // Hold the new node's lock until commit/abort so primitive
            // operations that would adopt it as a predecessor block on the
            // lock instead of building on state we may roll back.
            let node_guard: MutexGuard<'static, ()> = node_ref.lock.lock();
            txn.core.push_lock(node, node_guard);
            for (lvl, &succ) in succs.iter().enumerate().take(top + 1) {
                node_ref.next[lvl].store(succ, Ordering::Relaxed);
            }
            for (lvl, &pred) in preds.iter().enumerate().take(top + 1) {
                unsafe { &*pred }.next[lvl].store(node, Ordering::SeqCst);
            }
            txn.core.prepare_bundle(&node_ref.bundle, succs[0]);
            txn.core.prepare_bundle(&unsafe { &*preds[0] }.bundle, node);
            // Eager linearization effect; snapshot visibility is still
            // gated on the pending bundle entries' commit timestamp.
            node_ref.fully_linked.store(true, Ordering::SeqCst);
            txn.core.add_created(node);
            txn.staged.record(key, None, Some(node as usize));
            txn.undo.push(SkipUndo::Link {
                node,
                preds,
                succs,
                top,
            });
            self.retain_node(&preds, &succs, node, top);
            return Ok(true);
        }
    }

    /// Stage a remove at the sought position. `Ok(false)` = key absent;
    /// the data-layer gap (level-0 predecessor whose successor skips past
    /// `key`) stays locked, so the no-op outcome still holds at the
    /// commit timestamp (every insert of `key` must link level 0 through
    /// that node).
    pub fn seek_prepare_remove(&mut self, key: &K) -> Result<bool, Conflict> {
        let list = self.list;
        let mut preds = [ptr::null_mut(); MAX_LEVEL];
        let mut succs = [ptr::null_mut(); MAX_LEVEL];
        let mut use_hint = true;
        loop {
            let lfound = self.locate(key, use_hint, 0, &mut preds, &mut succs);
            use_hint = false;
            let txn = &mut self.txn;
            let (victim, level) = match lfound {
                Some(l) => (succs[l], l),
                None => {
                    // Pin the no-op: hold the level-0 gap until commit.
                    let pred = preds[0];
                    let newly = list.txn_lock(txn, pred)?;
                    let p = unsafe { &*pred };
                    let valid = !p.marked.load(Ordering::Acquire)
                        && p.fully_linked.load(Ordering::Acquire)
                        && p.next[0].load(Ordering::Acquire) == succs[0];
                    if !valid {
                        if newly {
                            txn.core.unlock_latest(1);
                            continue;
                        }
                        return Err(Conflict);
                    }
                    txn.staged.record(*key, None, None);
                    self.retain_preds(&preds, &succs);
                    return Ok(false);
                }
            };
            let v = unsafe { &*victim };
            if !(v.fully_linked.load(Ordering::Acquire)
                && v.top_level == level
                && !v.marked.load(Ordering::Acquire))
            {
                // A concurrent update owns the key's fate right now; retry
                // until the physical state settles (the owner holds all of
                // its locks and finishes without waiting on us).
                continue;
            }
            let top = v.top_level;
            let newly_victim = list.txn_lock(txn, victim)?;
            if v.marked.load(Ordering::Acquire) {
                if newly_victim {
                    txn.core.unlock_latest(1);
                }
                continue;
            }
            match list.txn_lock_and_validate(txn, &preds, &succs, top, Some(victim)) {
                Ok(true) => {}
                Ok(false) => {
                    if newly_victim {
                        txn.core.unlock_latest(1);
                    }
                    continue;
                }
                Err(c) => return Err(c),
            }
            txn.core.prepare_bundle(
                &unsafe { &*preds[0] }.bundle,
                v.next[0].load(Ordering::Acquire),
            );
            // Eager logical delete + physical unlink (top-down).
            v.marked.store(true, Ordering::SeqCst);
            for lvl in (0..=top).rev() {
                unsafe { &*preds[lvl] }.next[lvl]
                    .store(v.next[lvl].load(Ordering::Acquire), Ordering::SeqCst);
            }
            txn.core.add_victim(victim);
            txn.staged.record(*key, Some(victim as usize), None);
            txn.undo.push(SkipUndo::Unlink { victim, preds, top });
            self.retain_preds(&preds, &succs);
            return Ok(true);
        }
    }

    /// Read `key`'s current value (newest pointers — the transaction's
    /// own eager writes are visible) through the frontier, retaining the
    /// located predecessors as an *unlocked* hint. Takes no locks and
    /// stages nothing; linearizes at the per-level frontier validity
    /// checks (an adopted entry is unmarked, hence still reachable, at
    /// adoption time).
    pub fn seek_read(&mut self, key: &K) -> Option<V> {
        let mut preds = [ptr::null_mut(); MAX_LEVEL];
        let mut succs = [ptr::null_mut(); MAX_LEVEL];
        let lfound = self.locate(key, true, 0, &mut preds, &mut succs);
        self.retain_preds(&preds, &succs);
        match lfound {
            Some(l) => {
                let n = unsafe { &*succs[l] };
                if n.fully_linked.load(Ordering::Acquire) && !n.marked.load(Ordering::Acquire) {
                    n.val.clone()
                } else {
                    None
                }
            }
            None => None,
        }
    }

    /// Hinted-resume vs root-descent counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> CursorStats {
        self.stats
    }

    /// Give the transaction token back (dropping the frontier and the
    /// cursor's EBR pin); consume it with [`BundledSkipList::txn_finalize`]
    /// or [`BundledSkipList::txn_abort`].
    #[must_use]
    pub fn finish(self) -> ShardTxn<K, V> {
        self.txn
    }
}

impl<'a, K, V> PrepareCursor<K, V> for ShardCursor<'a, K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    type Txn = ShardTxn<K, V>;

    fn seek_prepare_put(&mut self, key: K, value: V) -> Result<bool, Conflict> {
        ShardCursor::seek_prepare_put(self, key, value)
    }

    fn seek_prepare_remove(&mut self, key: &K) -> Result<bool, Conflict> {
        ShardCursor::seek_prepare_remove(self, key)
    }

    fn seek_read(&mut self, key: &K) -> Option<V> {
        ShardCursor::seek_read(self, key)
    }

    fn stats(&self) -> CursorStats {
        ShardCursor::stats(self)
    }

    fn finish(self) -> ShardTxn<K, V> {
        ShardCursor::finish(self)
    }
}

impl<'a, K, V> std::fmt::Debug for ShardCursor<'a, K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardCursor")
            .field("stats", &self.stats)
            .finish()
    }
}

impl<K, V> ConcurrentSet<K, V> for BundledSkipList<K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    fn insert(&self, tid: usize, key: K, value: V) -> bool {
        let _guard = self.pin(tid);
        let top = self.random_level(tid);
        let mut preds = [ptr::null_mut(); MAX_LEVEL];
        let mut succs = [ptr::null_mut(); MAX_LEVEL];
        loop {
            if let Some(l) = self.find(&key, &mut preds, &mut succs) {
                let found = succs[l];
                let f = unsafe { &*found };
                if !f.marked.load(Ordering::Acquire) {
                    // Wait until the concurrent inserter finishes linking.
                    while !f.fully_linked.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                    return false;
                }
                // Found but being removed: retry.
                continue;
            }
            let guards = match self.lock_and_validate(&preds, &succs, top, None) {
                Some(g) => g,
                None => continue,
            };
            let node = Node::new(key, Some(value), top);
            let node_ref = unsafe { &*node };
            for (lvl, &succ) in succs.iter().enumerate().take(top + 1) {
                node_ref.next[lvl].store(succ, Ordering::Relaxed);
            }
            // Physically link bottom-up (traversals tolerate partially
            // linked towers; `fullyLinked` is the linearization point).
            for (lvl, &pred) in preds.iter().enumerate().take(top + 1) {
                unsafe { &*pred }.next[lvl].store(node, Ordering::SeqCst);
            }
            // Bundles affected: the new node's data-layer link and the
            // data-layer predecessor's link.
            let bundles = [
                (&node_ref.bundle, succs[0]),
                (&unsafe { &*preds[0] }.bundle, node),
            ];
            linearize_update(&self.clock, tid, &bundles, || {
                node_ref.fully_linked.store(true, Ordering::SeqCst);
            });
            drop(guards);
            return true;
        }
    }

    fn remove(&self, tid: usize, key: &K) -> bool {
        let guard = self.pin(tid);
        let mut preds = [ptr::null_mut(); MAX_LEVEL];
        let mut succs = [ptr::null_mut(); MAX_LEVEL];
        loop {
            let lfound = self.find(key, &mut preds, &mut succs);
            let (victim, level) = match lfound {
                Some(l) => (succs[l], l),
                None => return false,
            };
            let v = unsafe { &*victim };
            // Candidate check (Herlihy et al.): fully linked at its full
            // height and not already logically deleted.
            if !(v.fully_linked.load(Ordering::Acquire)
                && v.top_level == level
                && !v.marked.load(Ordering::Acquire))
            {
                return false;
            }
            let top = v.top_level;
            let victim_lock = v.lock.lock();
            if v.marked.load(Ordering::Acquire) {
                return false;
            }
            let guards = match self.lock_and_validate(&preds, &succs, top, Some(victim)) {
                Some(g) => g,
                None => {
                    drop(victim_lock);
                    continue;
                }
            };
            // Only the data-layer predecessor's bundle changes; the victim's
            // own bundle keeps describing the pre-removal physical state.
            let bundles = [(
                &unsafe { &*preds[0] }.bundle,
                v.next[0].load(Ordering::Acquire),
            )];
            linearize_update(&self.clock, tid, &bundles, || {
                // Linearization point: the logical delete (§5).
                v.marked.store(true, Ordering::SeqCst);
            });
            // Physical unlink, top-down, within the same critical section.
            for lvl in (0..=top).rev() {
                unsafe { &*preds[lvl] }.next[lvl]
                    .store(v.next[lvl].load(Ordering::Acquire), Ordering::SeqCst);
            }
            drop(guards);
            drop(victim_lock);
            unsafe { guard.retire(victim) };
            return true;
        }
    }

    fn contains(&self, tid: usize, key: &K) -> bool {
        let _guard = self.pin(tid);
        let mut preds = [ptr::null_mut(); MAX_LEVEL];
        let mut succs = [ptr::null_mut(); MAX_LEVEL];
        match self.find(key, &mut preds, &mut succs) {
            Some(l) => {
                let n = unsafe { &*succs[l] };
                n.fully_linked.load(Ordering::Acquire) && !n.marked.load(Ordering::Acquire)
            }
            None => false,
        }
    }

    fn get(&self, tid: usize, key: &K) -> Option<V> {
        let _guard = self.pin(tid);
        let mut preds = [ptr::null_mut(); MAX_LEVEL];
        let mut succs = [ptr::null_mut(); MAX_LEVEL];
        match self.find(key, &mut preds, &mut succs) {
            Some(l) => {
                let n = unsafe { &*succs[l] };
                if n.fully_linked.load(Ordering::Acquire) && !n.marked.load(Ordering::Acquire) {
                    n.val.clone()
                } else {
                    None
                }
            }
            None => None,
        }
    }

    fn len(&self, tid: usize) -> usize {
        let _guard = self.pin(tid);
        let mut n = 0;
        let mut curr = unsafe { &*self.head }.next[0].load(Ordering::Acquire);
        while curr != self.tail {
            let node = unsafe { &*curr };
            if node.fully_linked.load(Ordering::Acquire) && !node.marked.load(Ordering::Acquire) {
                n += 1;
            }
            curr = node.next[0].load(Ordering::Acquire);
        }
        n
    }
}

impl<K, V> RangeQuerySet<K, V> for BundledSkipList<K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    fn range_query(&self, tid: usize, low: &K, high: &K, out: &mut Vec<(K, V)>) -> usize {
        let _guard = self.pin(tid);
        loop {
            // Linearization point: fix the snapshot timestamp and announce
            // it for the bundle recycler. On a failed optimistic attempt
            // restart with a fresh timestamp (Algorithm 3, line 7).
            let ts = self.tracker.start(tid, &self.clock);
            let collected = self.try_collect_at(ts, low, high, out, None);
            self.tracker.finish(tid);
            if let Some(n) = collected {
                return n;
            }
        }
    }
}

/// Optimistic entry attempts a fixed-timestamp range query makes before
/// falling back to the guaranteed bundle-only traversal.
const MAX_OPTIMISTIC_ATTEMPTS: usize = 3;

impl<K, V> Drop for BundledSkipList<K, V> {
    fn drop(&mut self) {
        let mut curr = self.head;
        while !curr.is_null() {
            let next = unsafe { &*curr }.next[0].load(Ordering::Relaxed);
            unsafe { drop(Box::from_raw(curr)) };
            if curr == self.tail {
                break;
            }
            curr = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    type Sl = BundledSkipList<u64, u64>;

    #[test]
    fn empty_skiplist_behaviour() {
        let s = Sl::new(1);
        assert!(!s.contains(0, &1));
        assert!(!s.remove(0, &1));
        assert_eq!(s.get(0, &1), None);
        assert_eq!(s.len(0), 0);
        let mut out = Vec::new();
        assert_eq!(s.range_query(0, &0, &100, &mut out), 0);
    }

    #[test]
    fn insert_remove_contains_roundtrip() {
        let s = Sl::new(1);
        for k in [5u64, 1, 9, 3, 7] {
            assert!(s.insert(0, k, k * 2));
        }
        assert!(!s.insert(0, 5, 0));
        assert_eq!(s.len(0), 5);
        assert!(s.contains(0, &3));
        assert_eq!(s.get(0, &9), Some(18));
        assert!(s.remove(0, &3));
        assert!(!s.remove(0, &3));
        assert!(!s.contains(0, &3));
        assert_eq!(s.len(0), 4);
    }

    #[test]
    fn range_query_returns_sorted_snapshot() {
        let s = Sl::new(1);
        for k in 0..200u64 {
            s.insert(0, k * 3, k);
        }
        let mut out = Vec::new();
        s.range_query(0, &30, &90, &mut out);
        let keys: Vec<u64> = out.iter().map(|(k, _)| *k).collect();
        let expected: Vec<u64> = (10..=30).map(|k| k * 3).collect();
        assert_eq!(keys, expected);
    }

    #[test]
    fn matches_btreemap_model_sequentially() {
        let s = Sl::new(1);
        let mut model = BTreeMap::new();
        let mut seed = 0xdeadbeefu64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..3000 {
            let k = next() % 512;
            match next() % 3 {
                0 => assert_eq!(s.insert(0, k, k), model.insert(k, k).is_none()),
                1 => assert_eq!(s.remove(0, &k), model.remove(&k).is_some()),
                _ => assert_eq!(s.contains(0, &k), model.contains_key(&k)),
            }
        }
        assert_eq!(s.len(0), model.len());
        let mut out = Vec::new();
        s.range_query(0, &100, &300, &mut out);
        let expected: Vec<(u64, u64)> = model.range(100..=300).map(|(k, v)| (*k, *v)).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn concurrent_mixed_operations_preserve_integrity() {
        const THREADS: usize = 4;
        const OPS: usize = 2_000;
        let s = Arc::new(Sl::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut seed = (tid as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15);
                    let mut out = Vec::new();
                    for _ in 0..OPS {
                        seed ^= seed << 13;
                        seed ^= seed >> 7;
                        seed ^= seed << 17;
                        let k = seed % 512;
                        match seed % 4 {
                            0 => {
                                s.insert(tid, k, k);
                            }
                            1 => {
                                s.remove(tid, &k);
                            }
                            2 => {
                                let _ = s.contains(tid, &k);
                            }
                            _ => {
                                let lo = k.saturating_sub(64);
                                s.range_query(tid, &lo, &k, &mut out);
                                assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
                                assert!(out.iter().all(|(x, _)| *x >= lo && *x <= k));
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut out = Vec::new();
        s.range_query(0, &0, &(u64::MAX - 2), &mut out);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(out.len(), s.len(0));
    }

    #[test]
    fn range_query_prefix_insertion_has_no_gaps() {
        const MAX: u64 = 3_000;
        let s = Arc::new(Sl::new(2));
        let writer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for k in 0..MAX {
                    assert!(s.insert(0, k, k));
                }
            })
        };
        let reader = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                for _ in 0..200 {
                    s.range_query(1, &0, &MAX, &mut out);
                    for (i, (k, _)) in out.iter().enumerate() {
                        assert_eq!(*k, i as u64, "range query observed a gap");
                    }
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(s.len(0), MAX as usize);
    }

    #[test]
    fn reclaiming_churn_never_resurrects_removed_nodes() {
        // Regression test: an insert publishes its data-layer pointers
        // before preparing its bundle; a remove that accepted such a
        // half-linked node as predecessor would write its skip-entry into
        // the empty bundle, and the insert's later (larger-timestamp)
        // finalize would make snapshots traverse the removed successor —
        // freed memory once EBR reclaims it. `lock_and_validate` requiring
        // `fully_linked` predecessors closes the race; this churn keeps
        // insert/remove/range-query interleavings running with
        // reclamation enabled to catch any regression.
        use std::sync::atomic::AtomicBool;
        const THREADS: usize = 4;
        let s = Arc::new(Sl::with_mode(THREADS, ReclaimMode::Reclaim));
        for k in (0..4_096u64).step_by(2) {
            s.insert(0, k, k);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let s = Arc::clone(&s);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut seed = (tid as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15);
                    let mut out = Vec::new();
                    let mut insert_next = true;
                    while !stop.load(Ordering::Relaxed) {
                        seed ^= seed << 13;
                        seed ^= seed >> 7;
                        seed ^= seed << 17;
                        let k = seed % 4_096;
                        match seed % 8 {
                            0..=3 => {
                                if insert_next {
                                    s.insert(tid, k, k);
                                } else {
                                    s.remove(tid, &k);
                                }
                                insert_next = !insert_next;
                            }
                            4..=6 => {
                                let _ = s.contains(tid, &k);
                            }
                            _ => {
                                let hi = k.saturating_add(63);
                                s.range_query(tid, &k, &hi, &mut out);
                                assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
                            }
                        }
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(800));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        let mut out = Vec::new();
        s.range_query(0, &0, &4_096, &mut out);
        assert_eq!(out.len(), s.len(0));
    }

    #[test]
    fn cleanup_prunes_stale_bundle_entries() {
        let s = Sl::new(2);
        for k in 0..50u64 {
            s.insert(0, k, k);
        }
        for _ in 0..5 {
            for k in 0..50u64 {
                s.remove(0, &k);
                s.insert(0, k, k);
            }
        }
        let before = s.bundle_entries(0);
        let reclaimed = s.cleanup_bundles(1);
        assert!(reclaimed > 0);
        assert_eq!(s.bundle_entries(0), before - reclaimed);
        assert_eq!(s.len(0), 50);
        let mut out = Vec::new();
        s.range_query(0, &0, &49, &mut out);
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn relaxed_clock_still_produces_consistent_ranges() {
        let s = BundledSkipList::<u64, u64>::with_relaxation(2, 50);
        for k in 0..500u64 {
            s.insert(0, k, k);
        }
        let mut out = Vec::new();
        s.range_query(1, &100, &200, &mut out);
        assert_eq!(out.len(), 101);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn range_query_at_respects_fixed_snapshot() {
        let s = Sl::new(2);
        for k in 0..50u64 {
            s.insert(0, k, k);
        }
        let ts = s.clock().read();
        for k in 50..100u64 {
            s.insert(0, k, k);
        }
        let mut out = Vec::new();
        // At the fixed snapshot only the first 50 keys exist.
        assert_eq!(s.range_query_at(1, ts, &0, &200, &mut out), 50);
        assert!(out.iter().all(|(k, _)| *k < 50));
        // A current-timestamp query sees everything.
        assert_eq!(
            s.range_query_at(1, s.clock().read(), &0, &200, &mut out),
            100
        );
        // The bundle-only fallback agrees with the optimistic path.
        let _guard = s.pin(1);
        let mut snap = Vec::new();
        s.collect_snapshot_at(ts, &0, &200, &mut snap, None);
        assert_eq!(snap.len(), 50);
        assert!(out.len() == 100 && snap.iter().all(|(k, _)| *k < 50));
    }

    #[test]
    fn shared_context_spans_structures() {
        let ctx = bundle::RqContext::new(1);
        let a = BundledSkipList::<u64, u64>::with_context(1, ReclaimMode::Reclaim, &ctx);
        let b = BundledSkipList::<u64, u64>::with_context(1, ReclaimMode::Reclaim, &ctx);
        a.insert(0, 1, 1);
        b.insert(0, 2, 2);
        assert_eq!(ctx.read(), 2, "both structures advance the one clock");
        assert!(a.context().same_as(&b.context()));
    }

    #[test]
    fn txn_commit_is_atomic_under_a_fixed_snapshot() {
        let ctx = bundle::RqContext::new(2);
        let s = BundledSkipList::<u64, u64>::with_context(2, ReclaimMode::Reclaim, &ctx);
        for k in (0..100u64).step_by(10) {
            s.insert(0, k, k);
        }
        let before = ctx.read();

        let mut cur = s.txn_cursor(s.txn_begin(0));
        assert_eq!(cur.seek_prepare_put(15, 150), Ok(true));
        assert_eq!(cur.seek_prepare_put(16, 160), Ok(true));
        assert_eq!(cur.seek_prepare_remove(&50), Ok(true));
        assert_eq!(cur.seek_prepare_put(10, 999), Ok(false));
        assert_eq!(cur.seek_prepare_remove(&77), Ok(false));
        assert!(cur.stats().hinted >= 2, "sorted seeks must resume");
        let txn = cur.finish();
        assert_eq!(txn.staged_ops(), 3);
        let ts = ctx.advance(0);
        s.txn_finalize(txn, ts);

        let mut out = Vec::new();
        let announced = ctx.start_rq(1);
        assert!(announced >= ts);
        s.range_query_at(1, before, &0, &100, &mut out);
        let pre: Vec<u64> = out.iter().map(|(k, _)| *k).collect();
        assert_eq!(pre, vec![0, 10, 20, 30, 40, 50, 60, 70, 80, 90]);
        s.range_query_at(1, ts, &0, &100, &mut out);
        let post: Vec<u64> = out.iter().map(|(k, _)| *k).collect();
        assert_eq!(post, vec![0, 10, 15, 16, 20, 30, 40, 60, 70, 80, 90]);
        ctx.finish_rq(1);
    }

    #[test]
    fn txn_abort_restores_structure_and_snapshots() {
        let ctx = bundle::RqContext::new(2);
        let s = BundledSkipList::<u64, u64>::with_context(2, ReclaimMode::Reclaim, &ctx);
        for k in [10u64, 20, 30, 40] {
            s.insert(0, k, k);
        }
        let clock_before = ctx.read();

        let mut cur = s.txn_cursor(s.txn_begin(0));
        assert_eq!(cur.seek_prepare_put(25, 250), Ok(true));
        assert_eq!(cur.seek_prepare_remove(&30), Ok(true));
        assert_eq!(cur.seek_prepare_put(26, 260), Ok(true));
        assert_eq!(cur.seek_read(&26), Some(260), "cursor reads eager writes");
        assert_eq!(cur.seek_read(&30), None);
        let txn = cur.finish();
        assert!(s.contains(1, &25));
        assert!(!s.contains(1, &30));
        s.txn_abort(txn);

        assert_eq!(ctx.read(), clock_before, "abort never advances the clock");
        assert!(!s.contains(0, &25));
        assert!(!s.contains(0, &26));
        assert!(s.contains(0, &30));
        assert_eq!(s.len(0), 4);
        let mut out = Vec::new();
        s.range_query(1, &0, &100, &mut out);
        assert_eq!(out, vec![(10, 10), (20, 20), (30, 30), (40, 40)]);
        s.range_query_at(1, clock_before, &0, &100, &mut out);
        assert_eq!(out, vec![(10, 10), (20, 20), (30, 30), (40, 40)]);
        assert!(s.insert(0, 25, 251));
        assert!(s.remove(0, &30));
    }

    #[test]
    fn txn_remove_of_own_staged_insert_nets_out() {
        let s = Sl::new(1);
        s.insert(0, 1, 1);
        let mut cur = s.txn_cursor(s.txn_begin(0));
        assert_eq!(cur.seek_prepare_put(5, 50), Ok(true));
        // Equal-key seek: the staged node itself is never adopted as a
        // frontier start (entries must be strictly before the target), so
        // the remove re-locates 5 and must unlink the staged node.
        assert_eq!(cur.seek_prepare_remove(&5), Ok(true));
        let ts = s.clock().advance(0);
        s.txn_finalize(cur.finish(), ts);
        assert!(!s.contains(0, &5));
        assert_eq!(s.len(0), 1);
        let mut out = Vec::new();
        s.range_query(0, &0, &10, &mut out);
        assert_eq!(out, vec![(1, 1)]);
    }

    #[test]
    fn txn_reads_validate_and_detect_staleness() {
        let ctx = bundle::RqContext::new(2);
        let s = BundledSkipList::<u64, u64>::with_context(2, ReclaimMode::Reclaim, &ctx);
        for k in [10u64, 20, 30] {
            s.insert(0, k, k * 2);
        }
        let lease = ctx.lease_read(1);
        let mut out = Vec::new();
        let mut nodes = Vec::new();
        s.txn_range_read(1, lease.ts(), &0, &100, &mut out, &mut nodes);
        assert_eq!(out, vec![(10, 20), (20, 40), (30, 60)]);
        let mut pn = Vec::new();
        assert_eq!(s.txn_read(1, lease.ts(), &30, &mut pn), Some(60));
        assert_eq!(s.txn_read(1, lease.ts(), &31, &mut pn), None);
        drop(lease);

        // Unchanged: validates.
        let mut txn = s.txn_begin(1);
        assert_eq!(s.txn_validate(&mut txn, &0, &100, &nodes), Ok(()));
        s.txn_abort(txn);
        // A foreign insert into the read range invalidates it.
        s.insert(0, 25, 250);
        let mut txn = s.txn_begin(1);
        assert_eq!(
            s.txn_validate(&mut txn, &0, &100, &nodes),
            Err(TxnValidateError::Invalidated)
        );
        s.txn_abort(txn);
    }

    #[test]
    fn txn_validate_reconciles_own_staged_writes() {
        let ctx = bundle::RqContext::new(2);
        let s = BundledSkipList::<u64, u64>::with_context(2, ReclaimMode::Reclaim, &ctx);
        for k in [10u64, 20, 30, 40] {
            s.insert(0, k, k);
        }
        let lease = ctx.lease_read(1);
        let mut out = Vec::new();
        let mut nodes = Vec::new();
        s.txn_range_read(1, lease.ts(), &15, &45, &mut out, &mut nodes);
        assert_eq!(out, vec![(20, 20), (30, 30), (40, 40)]);

        let mut cur = s.txn_cursor(s.txn_begin(1));
        assert_eq!(cur.seek_prepare_remove(&30), Ok(true));
        assert_eq!(cur.seek_prepare_put(35, 350), Ok(true));
        let mut txn = cur.finish();
        // Own staged remove + insert inside the validated range are
        // reconciled through the staged outcome images.
        assert_eq!(s.txn_validate(&mut txn, &15, &45, &nodes), Ok(()));
        let ts = ctx.advance(1);
        s.txn_finalize(txn, ts);
        drop(lease);
        let mut scan = Vec::new();
        s.range_query(0, &0, &100, &mut scan);
        assert_eq!(scan, vec![(10, 10), (20, 20), (35, 350), (40, 40)]);
    }

    #[test]
    fn one_op_cursors_accumulate_into_one_token() {
        // A fresh cursor per op (one root descent each — the legacy
        // point-prepare discipline) must stage into the same token with
        // batch-identical outcomes.
        let s = Sl::new(1);
        s.insert(0, 10, 10);
        let mut txn = s.txn_begin(0);
        for (op, expect) in [
            ((Some(50u64), 5u64), true),
            ((Some(99), 10), false),
            ((None, 10), true),
            ((None, 77), false),
        ] {
            let mut cur = s.txn_cursor(txn);
            match op {
                (Some(v), k) => assert_eq!(cur.seek_prepare_put(k, v), Ok(expect)),
                (None, k) => assert_eq!(cur.seek_prepare_remove(&k), Ok(expect)),
            }
            txn = cur.finish();
        }
        assert_eq!(txn.staged_ops(), 2);
        let ts = s.clock().advance(0);
        s.txn_finalize(txn, ts);
        let mut out = Vec::new();
        s.range_query(0, &0, &100, &mut out);
        assert_eq!(out, vec![(5, 50)]);
    }

    #[test]
    fn cursor_sorted_batch_resumes_from_the_frontier() {
        // A long ascending staged batch must be dominated by hinted
        // resumes: one initial descent, then finger steps.
        let s = Sl::new(1);
        for k in (1..2_000u64).step_by(2) {
            s.insert(0, k, k);
        }
        let mut cur = s.txn_cursor(s.txn_begin(0));
        for k in (100..1_100u64).step_by(20) {
            assert_eq!(cur.seek_prepare_put(k, k), Ok(true), "key {k}");
        }
        let stats = cur.stats();
        assert_eq!(stats.hinted + stats.descents, 50);
        assert!(
            stats.hinted >= 49,
            "ascending seeks must ride the frontier: {stats:?}"
        );
        let ts = s.clock().advance(0);
        s.txn_finalize(cur.finish(), ts);
        assert_eq!(s.len(0), 1_000 + 50);
    }

    #[test]
    fn cursor_read_hint_invalidation_stays_correct() {
        // seek_read retains an *unlocked* per-level frontier; foreign
        // removes of retained nodes must not corrupt later seeks.
        let s = Sl::new(2);
        for k in [10u64, 20, 30, 40, 50] {
            s.insert(0, k, k);
        }
        let mut cur = s.txn_cursor(s.txn_begin(1));
        assert_eq!(cur.seek_read(&20), Some(20));
        // Foreign primitive removes of nodes around the retained frontier
        // (the cursor holds no locks yet, so no deadlock is possible).
        assert!(s.remove(0, &10));
        assert!(s.remove(0, &20));
        // Forward seeks must still produce exact outcomes.
        assert_eq!(cur.seek_prepare_put(20, 200), Ok(true), "20 was removed");
        assert_eq!(cur.seek_prepare_remove(&30), Ok(true));
        assert_eq!(cur.seek_prepare_remove(&10), Ok(false), "10 was removed");
        let ts = s.clock().advance(1);
        s.txn_finalize(cur.finish(), ts);
        let mut out = Vec::new();
        s.range_query(0, &0, &100, &mut out);
        assert_eq!(out, vec![(20, 200), (40, 40), (50, 50)]);
    }

    #[test]
    fn towers_span_multiple_levels() {
        // Statistical sanity for random_level: with 2000 inserts we expect
        // towers above level 0 (probability of all-zero heights ~ 2^-2000).
        let s = Sl::new(1);
        for k in 0..2000u64 {
            s.insert(0, k, k);
        }
        let mut has_tall = false;
        unsafe {
            let mut curr = (*s.head).next[1].load(Ordering::Acquire);
            if curr != s.tail {
                has_tall = true;
            }
            let _ = &mut curr;
        }
        assert!(has_tall, "index layers should be populated");
        assert_eq!(s.len(0), 2000);
    }
}
