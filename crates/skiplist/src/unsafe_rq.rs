//! The *Unsafe* skip list baseline: the lazy skip list with a naive,
//! non-linearizable range scan over the data layer (the paper's reference
//! line in Figures 2 and 3).

use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};

use crossbeam_utils::CachePadded;
use parking_lot::{Mutex, MutexGuard};

use bundle::api::{ConcurrentSet, RangeQuerySet};
use ebr::{Collector, Guard, ReclaimMode};

use crate::MAX_LEVEL;

struct Node<K, V> {
    key: K,
    val: Option<V>,
    top_level: usize,
    lock: Mutex<()>,
    marked: AtomicBool,
    fully_linked: AtomicBool,
    next: [AtomicPtr<Node<K, V>>; MAX_LEVEL],
}

impl<K, V> Node<K, V> {
    fn new(key: K, val: Option<V>, top_level: usize) -> *mut Node<K, V> {
        Box::into_raw(Box::new(Node {
            key,
            val,
            top_level,
            lock: Mutex::new(()),
            marked: AtomicBool::new(false),
            fully_linked: AtomicBool::new(false),
            next: std::array::from_fn(|_| AtomicPtr::new(ptr::null_mut())),
        }))
    }
}

/// The optimistic lazy skip list with non-linearizable range queries.
pub struct UnsafeSkipList<K, V> {
    head: *mut Node<K, V>,
    tail: *mut Node<K, V>,
    collector: Collector,
    seeds: Box<[CachePadded<AtomicU64>]>,
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for UnsafeSkipList<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for UnsafeSkipList<K, V> {}

impl<K, V> UnsafeSkipList<K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Create a skip list supporting `max_threads` registered threads.
    pub fn new(max_threads: usize) -> Self {
        Self::with_mode(max_threads, ReclaimMode::Reclaim)
    }

    /// Create a skip list with an explicit reclamation mode.
    pub fn with_mode(max_threads: usize, mode: ReclaimMode) -> Self {
        let tail = Node::new(K::default(), None, MAX_LEVEL - 1);
        let head = Node::new(K::default(), None, MAX_LEVEL - 1);
        unsafe {
            for lvl in 0..MAX_LEVEL {
                (*head).next[lvl].store(tail, Ordering::Release);
            }
            (*head).fully_linked.store(true, Ordering::Release);
            (*tail).fully_linked.store(true, Ordering::Release);
        }
        let seeds = (0..max_threads.max(1))
            .map(|i| {
                CachePadded::new(AtomicU64::new(
                    0x2545f4914f6cdd1du64.wrapping_mul(i as u64 + 1),
                ))
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        UnsafeSkipList {
            head,
            tail,
            collector: Collector::new(max_threads, mode),
            seeds,
        }
    }

    /// The structure's epoch collector (diagnostics).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    fn pin(&self, tid: usize) -> Guard<'_> {
        self.collector.pin(tid)
    }

    fn random_level(&self, tid: usize) -> usize {
        let slot = &self.seeds[tid % self.seeds.len()];
        let mut x = slot.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        slot.store(x, Ordering::Relaxed);
        ((x.trailing_ones()) as usize).min(MAX_LEVEL - 1)
    }

    fn find(
        &self,
        key: &K,
        preds: &mut [*mut Node<K, V>; MAX_LEVEL],
        succs: &mut [*mut Node<K, V>; MAX_LEVEL],
    ) -> Option<usize> {
        let mut lfound = None;
        let mut pred = self.head;
        for lvl in (0..MAX_LEVEL).rev() {
            let mut curr = unsafe { &*pred }.next[lvl].load(Ordering::Acquire);
            while curr != self.tail && unsafe { &*curr }.key < *key {
                pred = curr;
                curr = unsafe { &*pred }.next[lvl].load(Ordering::Acquire);
            }
            if lfound.is_none() && curr != self.tail && unsafe { &*curr }.key == *key {
                lfound = Some(lvl);
            }
            preds[lvl] = pred;
            succs[lvl] = curr;
        }
        lfound
    }

    fn lock_and_validate<'a>(
        &self,
        preds: &[*mut Node<K, V>; MAX_LEVEL],
        succs: &[*mut Node<K, V>; MAX_LEVEL],
        top: usize,
        expect_succ: Option<*mut Node<K, V>>,
    ) -> Option<Vec<MutexGuard<'a, ()>>> {
        let mut guards: Vec<MutexGuard<'a, ()>> = Vec::with_capacity(top + 1);
        let mut prev: *mut Node<K, V> = ptr::null_mut();
        let mut valid = true;
        for lvl in 0..=top {
            let pred = preds[lvl];
            let succ = expect_succ.unwrap_or(succs[lvl]);
            if pred != prev {
                let lock: MutexGuard<'a, ()> = unsafe { &*pred }.lock.lock();
                guards.push(lock);
                prev = pred;
            }
            let p = unsafe { &*pred };
            let s_marked = if succ == self.tail {
                false
            } else {
                unsafe { &*succ }.marked.load(Ordering::Acquire)
            };
            valid = !p.marked.load(Ordering::Acquire)
                && !s_marked
                && p.next[lvl].load(Ordering::Acquire) == succ;
            if !valid {
                break;
            }
        }
        if valid {
            Some(guards)
        } else {
            None
        }
    }
}

impl<K, V> ConcurrentSet<K, V> for UnsafeSkipList<K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    fn insert(&self, tid: usize, key: K, value: V) -> bool {
        let _guard = self.pin(tid);
        let top = self.random_level(tid);
        let mut preds = [ptr::null_mut(); MAX_LEVEL];
        let mut succs = [ptr::null_mut(); MAX_LEVEL];
        loop {
            if let Some(l) = self.find(&key, &mut preds, &mut succs) {
                let f = unsafe { &*succs[l] };
                if !f.marked.load(Ordering::Acquire) {
                    while !f.fully_linked.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                    return false;
                }
                continue;
            }
            let guards = match self.lock_and_validate(&preds, &succs, top, None) {
                Some(g) => g,
                None => continue,
            };
            let node = Node::new(key, Some(value), top);
            let node_ref = unsafe { &*node };
            for (lvl, &succ) in succs.iter().enumerate().take(top + 1) {
                node_ref.next[lvl].store(succ, Ordering::Relaxed);
            }
            for (lvl, &pred) in preds.iter().enumerate().take(top + 1) {
                unsafe { &*pred }.next[lvl].store(node, Ordering::Release);
            }
            node_ref.fully_linked.store(true, Ordering::Release);
            drop(guards);
            return true;
        }
    }

    fn remove(&self, tid: usize, key: &K) -> bool {
        let guard = self.pin(tid);
        let mut preds = [ptr::null_mut(); MAX_LEVEL];
        let mut succs = [ptr::null_mut(); MAX_LEVEL];
        loop {
            let lfound = self.find(key, &mut preds, &mut succs);
            let (victim, level) = match lfound {
                Some(l) => (succs[l], l),
                None => return false,
            };
            let v = unsafe { &*victim };
            if !(v.fully_linked.load(Ordering::Acquire)
                && v.top_level == level
                && !v.marked.load(Ordering::Acquire))
            {
                return false;
            }
            let top = v.top_level;
            let victim_lock = v.lock.lock();
            if v.marked.load(Ordering::Acquire) {
                return false;
            }
            let guards = match self.lock_and_validate(&preds, &succs, top, Some(victim)) {
                Some(g) => g,
                None => {
                    drop(victim_lock);
                    continue;
                }
            };
            v.marked.store(true, Ordering::Release);
            for lvl in (0..=top).rev() {
                unsafe { &*preds[lvl] }.next[lvl]
                    .store(v.next[lvl].load(Ordering::Acquire), Ordering::Release);
            }
            drop(guards);
            drop(victim_lock);
            unsafe { guard.retire(victim) };
            return true;
        }
    }

    fn contains(&self, tid: usize, key: &K) -> bool {
        let _guard = self.pin(tid);
        let mut preds = [ptr::null_mut(); MAX_LEVEL];
        let mut succs = [ptr::null_mut(); MAX_LEVEL];
        match self.find(key, &mut preds, &mut succs) {
            Some(l) => {
                let n = unsafe { &*succs[l] };
                n.fully_linked.load(Ordering::Acquire) && !n.marked.load(Ordering::Acquire)
            }
            None => false,
        }
    }

    fn get(&self, tid: usize, key: &K) -> Option<V> {
        let _guard = self.pin(tid);
        let mut preds = [ptr::null_mut(); MAX_LEVEL];
        let mut succs = [ptr::null_mut(); MAX_LEVEL];
        match self.find(key, &mut preds, &mut succs) {
            Some(l) => {
                let n = unsafe { &*succs[l] };
                if n.fully_linked.load(Ordering::Acquire) && !n.marked.load(Ordering::Acquire) {
                    n.val.clone()
                } else {
                    None
                }
            }
            None => None,
        }
    }

    fn len(&self, tid: usize) -> usize {
        let _guard = self.pin(tid);
        let mut n = 0;
        let mut curr = unsafe { &*self.head }.next[0].load(Ordering::Acquire);
        while curr != self.tail {
            let node = unsafe { &*curr };
            if node.fully_linked.load(Ordering::Acquire) && !node.marked.load(Ordering::Acquire) {
                n += 1;
            }
            curr = node.next[0].load(Ordering::Acquire);
        }
        n
    }
}

impl<K, V> RangeQuerySet<K, V> for UnsafeSkipList<K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Non-linearizable scan: descend the index layers, then walk the data
    /// layer collecting unmarked nodes.
    fn range_query(&self, tid: usize, low: &K, high: &K, out: &mut Vec<(K, V)>) -> usize {
        let _guard = self.pin(tid);
        out.clear();
        let mut pred = self.head;
        for lvl in (0..MAX_LEVEL).rev() {
            let mut curr = unsafe { &*pred }.next[lvl].load(Ordering::Acquire);
            while curr != self.tail && unsafe { &*curr }.key < *low {
                pred = curr;
                curr = unsafe { &*pred }.next[lvl].load(Ordering::Acquire);
            }
        }
        let mut curr = unsafe { &*pred }.next[0].load(Ordering::Acquire);
        while curr != self.tail && unsafe { &*curr }.key <= *high {
            let n = unsafe { &*curr };
            if n.key >= *low && !n.marked.load(Ordering::Acquire) {
                out.push((n.key, n.val.clone().expect("data node has a value")));
            }
            curr = n.next[0].load(Ordering::Acquire);
        }
        out.len()
    }
}

impl<K, V> Drop for UnsafeSkipList<K, V> {
    fn drop(&mut self) {
        let mut curr = self.head;
        while !curr.is_null() {
            let next = unsafe { &*curr }.next[0].load(Ordering::Relaxed);
            unsafe { drop(Box::from_raw(curr)) };
            if curr == self.tail {
                break;
            }
            curr = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    type Sl = UnsafeSkipList<u64, u64>;

    #[test]
    fn basic_set_semantics() {
        let s = Sl::new(1);
        for k in [8u64, 2, 6, 4] {
            assert!(s.insert(0, k, k));
        }
        assert!(!s.insert(0, 6, 0));
        assert!(s.contains(0, &2));
        assert_eq!(s.get(0, &8), Some(8));
        assert!(s.remove(0, &2));
        assert!(!s.contains(0, &2));
        assert_eq!(s.len(0), 3);
        let mut out = Vec::new();
        s.range_query(0, &0, &10, &mut out);
        assert_eq!(out, vec![(4, 4), (6, 6), (8, 8)]);
    }

    #[test]
    fn matches_btreemap_model_sequentially() {
        let s = Sl::new(1);
        let mut model = BTreeMap::new();
        let mut seed = 99u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..3000 {
            let k = next() % 512;
            match next() % 3 {
                0 => assert_eq!(s.insert(0, k, k), model.insert(k, k).is_none()),
                1 => assert_eq!(s.remove(0, &k), model.remove(&k).is_some()),
                _ => assert_eq!(s.contains(0, &k), model.contains_key(&k)),
            }
        }
        assert_eq!(s.len(0), model.len());
    }

    #[test]
    fn concurrent_updates_preserve_structure() {
        const THREADS: usize = 4;
        let s = Arc::new(Sl::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut seed = (tid as u64 + 1).wrapping_mul(0xa24baed4963ee407);
                    for _ in 0..2000 {
                        seed ^= seed << 13;
                        seed ^= seed >> 7;
                        seed ^= seed << 17;
                        let k = seed % 256;
                        if seed.is_multiple_of(2) {
                            s.insert(tid, k, k);
                        } else {
                            s.remove(tid, &k);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut out = Vec::new();
        s.range_query(0, &0, &(u64::MAX - 2), &mut out);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(out.len(), s.len(0));
    }
}
