//! A DBx1000-style in-memory database substrate running the TPC-C subset
//! used in §8.2 of the paper.
//!
//! The paper integrates its bundled skip list and Citrus tree as *indexes*
//! in the DBx1000 in-memory database and measures index-operation
//! throughput under TPC-C with 10 warehouses and the transaction mix
//! NEW_ORDER 50% / PAYMENT 45% / DELIVERY 5%:
//!
//! * **DELIVERY** performs a range query over the new-order index (ordered
//!   by `order_id`) to select the oldest order among the last 100, then
//!   deletes it so later deliveries do not re-deliver it.
//! * **PAYMENT** looks a customer up by last name with 60% probability —
//!   a range query over the customer-name index.
//! * **NEW_ORDER** inserts into the order, new-order and order-line
//!   indexes and reads the item and stock indexes.
//!
//! This crate rebuilds that substrate from scratch: relational tables held
//! in append-only row arenas, secondary indexes backed by *any*
//! [`bundle::api::RangeQuerySet`] implementation (bundled or baseline), the
//! three transaction profiles, and a workload driver reporting
//! index-operation throughput (what Figure 4 plots). It is intentionally a
//! substitution for the original C++ DBx1000 engine — see DESIGN.md — that
//! preserves the index access pattern the paper measures.
//!
//! Beyond the paper's configuration, [`TpccDb::store_backed`] plugs the
//! sharded `store::BundledStore` in as the index substrate: every index is
//! a tagged view over one store (one shard per table, one shared clock),
//! and NEW_ORDER's three-index insert (order, new-order, order-line)
//! commits as a single cross-shard `txn::WriteTxn` — atomic with respect
//! to every index range query. The `fig4` binary compares it against the
//! single-structure indexes.
//!
//! [`run_new_order_firehose`] goes one step further: NEW_ORDER batches
//! are *submitted* to an `ingest` group-commit front-end
//! ([`TpccIngest`]) and pipelined, so committer threads publish many
//! orders under one shared-clock advance while each order's three-index
//! insert stays individually atomic (its batch rides inside one group).

mod firehose;
mod keys;
mod store_backed;
mod tpcc;
mod workload;

pub use firehose::{run_new_order_firehose, FirehoseThroughput};
pub use keys::{
    customer_key, customer_name_key, new_order_key, order_key, order_line_key, stock_key,
    DISTRICTS_PER_WAREHOUSE, MAX_ORDER_LINES,
};
pub use store_backed::{
    build_tpcc_store, StoreIndexView, Table, TpccIngest, TpccStore, TABLE_SHIFT,
};
pub use tpcc::{
    Customer, DynIndex, IndexFactory, Order, TpccConfig, TpccDb, TpccTxnStats, TxnKind,
};
pub use workload::{run_tpcc, run_tpcc_db, TpccThroughput};
