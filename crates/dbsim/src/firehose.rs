//! The NEW_ORDER **firehose**: a store-backed TPC-C database taking
//! order-entry traffic through the group-commit ingestion front-end.
//!
//! TPC-C's NEW_ORDER is the update-heavy half of the mix — every
//! transaction inserts `2 + ol_cnt` keys across three index tables. The
//! store-backed path commits each of those inserts as its own
//! cross-shard `WriteTxn`: one clock advance and one intent round per
//! order. The firehose mode instead *submits* each order's batch to an
//! [`crate::TpccIngest`] front-end and pipelines a window of outstanding
//! tickets per worker, so committer threads coalesce many orders into one
//! group — one clock advance per *group* of orders, while each order
//! stays individually atomic (its batch rides inside a single group) and
//! each worker still learns its own outcome from its ticket.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ingest::{IngestConfig, IngestStats};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::store_backed::TpccIngest;
use crate::tpcc::TpccDb;

/// Result of a timed NEW_ORDER firehose run.
#[derive(Debug, Clone, Copy)]
pub struct FirehoseThroughput {
    /// Orders committed (tickets resolved).
    pub orders: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Ingest front-end counters for the run (groups, ops, fold sizes).
    pub ingest: IngestStats,
    /// Shared-clock advances spent during the run. One per group — so
    /// `advances / orders < 1` is the amortization the firehose exists
    /// for (the per-`WriteTxn` path pays exactly 1 per order).
    pub advances: u64,
}

impl FirehoseThroughput {
    /// Committed orders per second.
    #[must_use]
    pub fn orders_per_sec(&self) -> f64 {
        self.orders as f64 / self.elapsed.as_secs_f64()
    }

    /// Clock advances per committed order (< 1 when grouping works).
    #[must_use]
    pub fn advances_per_order(&self) -> f64 {
        if self.orders == 0 {
            0.0
        } else {
            self.advances as f64 / self.orders as f64
        }
    }
}

/// Run a NEW_ORDER-only firehose against a **store-backed** database for
/// `duration_ms` milliseconds: `threads` workers each keep `window`
/// submissions in flight through a fresh ingestion front-end (spawned
/// over the database's store with `icfg`, shut down before returning).
///
/// Session budget: the run registers one store session per worker plus
/// one per committer, so the database must have been built with
/// `max_threads >= threads + icfg.committers` free slots (population used
/// raw tid 0 but holds no session).
///
/// # Panics
///
/// If `db` is not store-backed, or the store has too few session slots.
pub fn run_new_order_firehose(
    db: &Arc<TpccDb>,
    threads: usize,
    duration_ms: u64,
    window: usize,
    icfg: IngestConfig,
) -> FirehoseThroughput {
    let store = db
        .store()
        .expect("the NEW_ORDER firehose requires TpccDb::store_backed");
    // Workers register sessions BEFORE the committers spawn, so the
    // dense-tid discipline holds across both groups of threads.
    let handles: Vec<_> = (0..threads)
        .map(|i| {
            store
                .try_register()
                .unwrap_or_else(|| panic!("no free session slot for firehose worker #{i}"))
        })
        .collect();
    let ingest = Arc::new(TpccIngest::spawn(Arc::clone(store), icfg));
    let advances_before = store.context().advance_calls();

    let stop = Arc::new(AtomicBool::new(false));
    let orders = Arc::new(AtomicU64::new(0));
    let window = window.max(1);
    let workers: Vec<_> = handles
        .into_iter()
        .enumerate()
        .map(|(i, handle)| {
            let db = Arc::clone(db);
            let ingest = Arc::clone(&ingest);
            let stop = Arc::clone(&stop);
            let orders = Arc::clone(&orders);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xf1e7 ^ (i as u64 + 1));
                let mut pending = VecDeque::with_capacity(window);
                let mut committed = 0u64;
                let mut settle = |t: ingest::Ticket<ingest::IngestOutcome>| {
                    let outcome = t.wait();
                    debug_assert!(
                        outcome.applied.iter().all(|b| *b),
                        "NEW_ORDER keys are fresh; every insert must apply"
                    );
                    committed += 1;
                    db.stats.new_order.fetch_add(1, Ordering::Relaxed);
                };
                while !stop.load(Ordering::Relaxed) {
                    pending.push_back(db.new_order_ingest(handle.tid(), &mut rng, &ingest));
                    if pending.len() >= window {
                        settle(pending.pop_front().expect("window is non-empty"));
                    }
                }
                for t in pending {
                    settle(t);
                }
                orders.fetch_add(committed, Ordering::Relaxed);
                drop(handle);
            })
        })
        .collect();

    let start = Instant::now();
    std::thread::sleep(Duration::from_millis(duration_ms));
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("firehose worker panicked");
    }
    let elapsed = start.elapsed();
    ingest.flush();
    let stats = ingest.stats();
    let advances = store.context().advance_calls() - advances_before;
    ingest.shutdown();
    FirehoseThroughput {
        orders: orders.load(Ordering::Relaxed),
        elapsed,
        ingest: stats,
        advances,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcc::TpccConfig;
    use crate::{
        new_order_key, order_key, order_line_key, Table, DISTRICTS_PER_WAREHOUSE, MAX_ORDER_LINES,
    };

    #[test]
    fn firehose_commits_whole_orders_with_amortized_advances() {
        let cfg = TpccConfig {
            warehouses: 1,
            customers_per_district: 20,
            items: 30,
            initial_orders_per_district: 10,
        };
        const WORKERS: usize = 3;
        const COMMITTERS: usize = 2;
        let db = Arc::new(TpccDb::store_backed(cfg, WORKERS + COMMITTERS));
        let before = db.stats.new_order.load(Ordering::Relaxed);
        let t = run_new_order_firehose(
            &db,
            WORKERS,
            60,
            16,
            IngestConfig {
                committers: COMMITTERS,
                ..IngestConfig::default()
            },
        );
        assert!(t.orders > 0, "firehose committed nothing");
        assert_eq!(
            db.stats.new_order.load(Ordering::Relaxed) - before,
            t.orders
        );
        assert_eq!(t.ingest.submissions, t.orders);
        assert!(t.orders_per_sec() > 0.0);
        assert!(
            t.advances_per_order() < 1.0,
            "groups must amortize the clock: {} advances / {} orders",
            t.advances,
            t.orders
        );
        // Every committed order is structurally whole at rest: exactly one
        // new-order entry per order, a matching order entry, and a full
        // complement of 5..=15 order lines.
        let store = db.store().unwrap();
        let h = store.register();
        let mut pending = Vec::new();
        let mut lines = Vec::new();
        let mut firehosed = 0u64;
        for d in 0..DISTRICTS_PER_WAREHOUSE {
            let lo = Table::NewOrder.key(new_order_key(0, d, 0));
            let hi = Table::NewOrder.key(new_order_key(0, d, (1 << 40) - 1));
            h.range_query(&lo, &hi, &mut pending);
            for (no_key, _) in &pending {
                let o_id = no_key & ((1 << 40) - 1);
                if o_id < cfg.initial_orders_per_district {
                    continue; // pre-loaded order
                }
                firehosed += 1;
                assert!(
                    h.contains(&Table::Order.key(order_key(0, d, o_id))),
                    "new-order entry without its order row (d={d}, o={o_id})"
                );
                let llo = Table::OrderLine.key(order_line_key(0, d, o_id, 0));
                let lhi = Table::OrderLine.key(order_line_key(0, d, o_id, MAX_ORDER_LINES - 1));
                h.range_query(&llo, &lhi, &mut lines);
                assert!(
                    (5..=15).contains(&lines.len()),
                    "order (d={d}, o={o_id}) committed with {} lines",
                    lines.len()
                );
            }
        }
        assert_eq!(
            firehosed, t.orders,
            "every committed order has exactly one new-order entry"
        );
    }
}
