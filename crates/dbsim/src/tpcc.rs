//! TPC-C tables, population, and the three transaction profiles used in
//! §8.2 (NEW_ORDER 50%, PAYMENT 45%, DELIVERY 5%).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::Rng;

use bundle::api::{ConcurrentSet, RangeQuerySet};
use store::TxnAborted;
use txn::{ReadWriteTxn, WriteTxn};

use crate::keys::{
    customer_key, customer_name_key, last_name_hash, new_order_key, order_key, order_line_key,
    stock_key, DISTRICTS_PER_WAREHOUSE, MAX_ORDER_LINES,
};
use crate::store_backed::{
    build_tpcc_store, StoreIndexView, Table, TpccIngest, TpccStore, TABLE_SHIFT,
};

/// A dynamically dispatched ordered index over `u64 -> u64` (value = row id).
pub type DynIndex = Arc<dyn RangeQuerySet<u64, u64> + Send + Sync>;

/// Factory building one index instance; called once per index of the
/// database so that every index uses the structure under evaluation.
pub type IndexFactory = dyn Fn(usize) -> DynIndex + Send + Sync;

/// How the transaction profiles touch the indexes.
enum WritePath {
    /// Each index is an independent structure; every index operation is
    /// only individually linearizable (the paper's original
    /// configuration).
    PerIndex,
    /// All indexes are views over one shared sharded store. NEW_ORDER's
    /// three-index insert commits as a single cross-shard [`WriteTxn`];
    /// PAYMENT's read-modify-write and DELIVERY's scan-then-delete run as
    /// serializable [`ReadWriteTxn`]s with validated read sets, retried
    /// on abort.
    StoreTxn(Arc<TpccStore>),
}

/// Scale configuration. The TPC-C spec sizes (3000 customers, 100k items)
/// are reachable but the defaults are scaled down so the substrate stays
/// usable on small machines; the access *pattern* is unchanged.
#[derive(Debug, Clone, Copy)]
pub struct TpccConfig {
    /// Number of warehouses (the paper uses 10).
    pub warehouses: u64,
    /// Customers per district.
    pub customers_per_district: u64,
    /// Number of distinct items.
    pub items: u64,
    /// Orders pre-loaded per district.
    pub initial_orders_per_district: u64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            warehouses: 10,
            customers_per_district: 300,
            items: 1_000,
            initial_orders_per_district: 200,
        }
    }
}

/// Customer row (only the fields the measured transactions touch).
#[derive(Debug, Default, Clone)]
pub struct Customer {
    pub c_id: u64,
    pub last_name: String,
    pub balance: f64,
    pub payment_cnt: u64,
}

/// Order row.
#[derive(Debug, Default, Clone)]
pub struct Order {
    pub o_id: u64,
    pub c_id: u64,
    pub ol_cnt: u64,
    pub carrier_id: Option<u64>,
}

/// Per-transaction-profile counters.
#[derive(Debug, Default)]
pub struct TpccTxnStats {
    pub new_order: AtomicU64,
    pub payment: AtomicU64,
    pub delivery: AtomicU64,
    /// Total operations issued against the indexes (what Figure 4 reports).
    pub index_ops: AtomicU64,
}

/// Transaction profiles of the evaluated mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnKind {
    NewOrder,
    Payment,
    Delivery,
}

impl TxnKind {
    /// Sample the paper's mix: 50% NEW_ORDER, 45% PAYMENT, 5% DELIVERY.
    pub fn sample(rng: &mut SmallRng) -> TxnKind {
        match rng.gen_range(0..100u32) {
            0..=49 => TxnKind::NewOrder,
            50..=94 => TxnKind::Payment,
            _ => TxnKind::Delivery,
        }
    }
}

/// The in-memory database: row arenas plus the secondary indexes backed by
/// the structure under evaluation.
pub struct TpccDb {
    pub cfg: TpccConfig,
    /// Customer rows; index into the vector is the row id stored in indexes.
    customers: Vec<Mutex<Customer>>,
    /// Order rows, appended as NEW_ORDER transactions execute.
    orders: Mutex<Vec<Order>>,
    /// Next order id per (warehouse, district).
    next_o_id: Vec<AtomicU64>,
    /// Stock quantity per (warehouse, item) row.
    stock_qty: Vec<AtomicU64>,

    /// Customer primary index: `customer_key -> customer row id`.
    pub customer_index: DynIndex,
    /// Customer last-name index: `customer_name_key -> customer row id`.
    pub customer_name_index: DynIndex,
    /// Order index: `order_key -> order row id`.
    pub order_index: DynIndex,
    /// New-order index: `new_order_key -> order row id` (pending deliveries).
    pub new_order_index: DynIndex,
    /// Order-line index: `order_line_key -> order row id`, populated by
    /// NEW_ORDER (5–15 lines per order).
    pub order_line_index: DynIndex,
    /// Item index: `item id -> item row id` (read-only after load).
    pub item_index: DynIndex,
    /// Stock index: `stock_key -> stock row id`.
    pub stock_index: DynIndex,

    /// How NEW_ORDER's three-index insert is applied.
    write_path: WritePath,

    /// Aggregate statistics.
    pub stats: TpccTxnStats,
}

impl TpccDb {
    /// Build and populate a database whose seven indexes are created by
    /// `factory` (with `max_threads` registered threads each). NEW_ORDER's
    /// multi-index insert runs as independent per-index operations.
    pub fn new(cfg: TpccConfig, factory: &IndexFactory, max_threads: usize) -> Self {
        let mut db = TpccDb {
            cfg,
            customers: Vec::new(),
            orders: Mutex::new(Vec::new()),
            next_o_id: (0..cfg.warehouses * DISTRICTS_PER_WAREHOUSE)
                .map(|_| AtomicU64::new(cfg.initial_orders_per_district))
                .collect(),
            stock_qty: (0..cfg.warehouses * cfg.items)
                .map(|_| AtomicU64::new(100))
                .collect(),
            customer_index: factory(max_threads),
            customer_name_index: factory(max_threads),
            order_index: factory(max_threads),
            new_order_index: factory(max_threads),
            order_line_index: factory(max_threads),
            item_index: factory(max_threads),
            stock_index: factory(max_threads),
            write_path: WritePath::PerIndex,
            stats: TpccTxnStats::default(),
        };
        db.populate();
        db
    }

    /// Build and populate a **store-backed** database: all seven indexes
    /// are views over one shared [`TpccStore`] (one shard per table, one
    /// clock), and NEW_ORDER's three-index insert (order, new-order,
    /// order-line) commits as a single cross-shard [`WriteTxn`] — no index
    /// range query can ever observe the order without its lines or
    /// new-order entry.
    pub fn store_backed(cfg: TpccConfig, max_threads: usize) -> Self {
        let store = build_tpcc_store(max_threads);
        let view =
            |table: Table| -> DynIndex { Arc::new(StoreIndexView::new(Arc::clone(&store), table)) };
        let mut db = TpccDb {
            cfg,
            customers: Vec::new(),
            orders: Mutex::new(Vec::new()),
            next_o_id: (0..cfg.warehouses * DISTRICTS_PER_WAREHOUSE)
                .map(|_| AtomicU64::new(cfg.initial_orders_per_district))
                .collect(),
            stock_qty: (0..cfg.warehouses * cfg.items)
                .map(|_| AtomicU64::new(100))
                .collect(),
            customer_index: view(Table::Customer),
            customer_name_index: view(Table::CustomerName),
            order_index: view(Table::Order),
            new_order_index: view(Table::NewOrder),
            order_line_index: view(Table::OrderLine),
            item_index: view(Table::Item),
            stock_index: view(Table::Stock),
            write_path: WritePath::StoreTxn(store),
            stats: TpccTxnStats::default(),
        };
        db.populate();
        // Balance rows (one per customer, keyed by customer row id) exist
        // only in the store-backed configuration: they are the mutable
        // cells PAYMENT's serializable read-modify-write targets.
        if let WritePath::StoreTxn(store) = &db.write_path {
            for row_id in 0..db.customers.len() as u64 {
                store.insert(0, Table::CustomerBalance.key(row_id), 0);
            }
        }
        db
    }

    /// `true` when NEW_ORDER commits through the cross-shard transaction
    /// path (store-backed database).
    #[must_use]
    pub fn is_store_backed(&self) -> bool {
        matches!(self.write_path, WritePath::StoreTxn(_))
    }

    /// The shared store backing every index view (`None` for a per-index
    /// database). An ingestion front-end for
    /// [`TpccDb::new_order_ingest`] must be spawned over exactly this
    /// store.
    #[must_use]
    pub fn store(&self) -> Option<&Arc<TpccStore>> {
        match &self.write_path {
            WritePath::PerIndex => None,
            WritePath::StoreTxn(store) => Some(store),
        }
    }

    fn bump_index_ops(&self, n: u64) {
        self.stats.index_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// One of the TPC-C last names, cycled per customer id.
    fn last_name(c_id: u64) -> String {
        const SYLLABLES: [&str; 10] = [
            "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
        ];
        let mut n = c_id % 1000;
        let mut s = String::new();
        for _ in 0..3 {
            s.push_str(SYLLABLES[(n % 10) as usize]);
            n /= 10;
        }
        s
    }

    fn populate(&mut self) {
        let cfg = self.cfg;
        // Items and stock.
        for i in 0..cfg.items {
            self.item_index.insert(0, i, i);
            for w in 0..cfg.warehouses {
                self.stock_index
                    .insert(0, stock_key(w, i), w * cfg.items + i);
            }
        }
        // Customers.
        for w in 0..cfg.warehouses {
            for d in 0..DISTRICTS_PER_WAREHOUSE {
                for c in 0..cfg.customers_per_district {
                    let row_id = self.customers.len() as u64;
                    let name = Self::last_name(c);
                    self.customers.push(Mutex::new(Customer {
                        c_id: c,
                        last_name: name.clone(),
                        balance: -10.0,
                        payment_cnt: 0,
                    }));
                    self.customer_index.insert(0, customer_key(w, d, c), row_id);
                    self.customer_name_index.insert(
                        0,
                        customer_name_key(w, d, last_name_hash(&name), c),
                        row_id,
                    );
                }
            }
        }
        // Initial orders awaiting delivery.
        let mut orders = self.orders.lock();
        for w in 0..cfg.warehouses {
            for d in 0..DISTRICTS_PER_WAREHOUSE {
                for o in 0..cfg.initial_orders_per_district {
                    let row_id = orders.len() as u64;
                    orders.push(Order {
                        o_id: o,
                        c_id: o % cfg.customers_per_district,
                        ol_cnt: 5,
                        carrier_id: None,
                    });
                    self.order_index.insert(0, order_key(w, d, o), row_id);
                    self.new_order_index
                        .insert(0, new_order_key(w, d, o), row_id);
                }
            }
        }
    }

    /// Number of orders stamped with a carrier (i.e. delivered).
    pub fn delivered_orders(&self) -> usize {
        self.orders
            .lock()
            .iter()
            .filter(|o| o.carrier_id.is_some())
            .count()
    }

    /// The store-resident accumulated payment cents of a customer row
    /// (store-backed databases only; `None` per-index or for unknown
    /// rows). This is the cell PAYMENT's serializable read-modify-write
    /// mutates.
    pub fn store_balance_cents(&self, tid: usize, row_id: u64) -> Option<u64> {
        match &self.write_path {
            WritePath::PerIndex => None,
            WritePath::StoreTxn(store) => store.get(tid, &Table::CustomerBalance.key(row_id)),
        }
    }

    /// Total number of committed transactions.
    pub fn committed(&self) -> u64 {
        self.stats.new_order.load(Ordering::Relaxed)
            + self.stats.payment.load(Ordering::Relaxed)
            + self.stats.delivery.load(Ordering::Relaxed)
    }

    /// NEW_ORDER: insert an order with 5–15 lines, reading the item and
    /// stock indexes and inserting into the order, new-order and
    /// order-line indexes.
    ///
    /// On a store-backed database the three-index insert commits as one
    /// cross-shard write transaction (a single timestamp for all
    /// `2 + ol_cnt` keys); otherwise the inserts are independent per-index
    /// operations.
    pub fn new_order(&self, tid: usize, rng: &mut SmallRng) {
        let cfg = self.cfg;
        let w = rng.gen_range(0..cfg.warehouses);
        let d = rng.gen_range(0..DISTRICTS_PER_WAREHOUSE);
        let c = rng.gen_range(0..cfg.customers_per_district);
        let ol_cnt = rng.gen_range(5..=15u64);
        let mut index_ops = 0u64;

        let o_id = self.next_o_id[(w * DISTRICTS_PER_WAREHOUSE + d) as usize]
            .fetch_add(1, Ordering::Relaxed);

        for _ in 0..ol_cnt {
            let item = rng.gen_range(0..cfg.items);
            // Item lookup.
            let _ = self.item_index.get(tid, &item);
            index_ops += 1;
            // Stock lookup + quantity update (row update, not an index op).
            if let Some(stock_row) = self.stock_index.get(tid, &stock_key(w, item)) {
                let qty = &self.stock_qty[stock_row as usize];
                let mut q = qty.load(Ordering::Relaxed);
                if q < 10 {
                    q += 91;
                }
                qty.store(q.saturating_sub(rng.gen_range(1..=10)), Ordering::Relaxed);
            }
            index_ops += 1;
        }

        let row_id = {
            let mut orders = self.orders.lock();
            let row_id = orders.len() as u64;
            orders.push(Order {
                o_id,
                c_id: c,
                ol_cnt,
                carrier_id: None,
            });
            row_id
        };
        match &self.write_path {
            WritePath::PerIndex => {
                self.order_index.insert(tid, order_key(w, d, o_id), row_id);
                self.new_order_index
                    .insert(tid, new_order_key(w, d, o_id), row_id);
                for ol in 0..ol_cnt {
                    self.order_line_index
                        .insert(tid, order_line_key(w, d, o_id, ol), row_id);
                }
            }
            WritePath::StoreTxn(store) => {
                // One atomic cut across the order, new-order and
                // order-line shards: a DELIVERY or order scan either sees
                // the complete logical insert or none of it.
                let mut txn = WriteTxn::with_tid(store, tid);
                txn.put(Table::Order.key(order_key(w, d, o_id)), row_id);
                txn.put(Table::NewOrder.key(new_order_key(w, d, o_id)), row_id);
                for ol in 0..ol_cnt {
                    txn.put(Table::OrderLine.key(order_line_key(w, d, o_id, ol)), row_id);
                }
                txn.commit();
            }
        }
        index_ops += 2 + ol_cnt;

        self.bump_index_ops(index_ops);
        self.stats.new_order.fetch_add(1, Ordering::Relaxed);
    }

    /// NEW_ORDER through the **group-commit firehose**: identical reads
    /// and row allocation to [`TpccDb::new_order`], but the three-index
    /// insert (order, new-order, order-line) is *submitted* to the ingest
    /// front-end as one atomic batch instead of committed inline. The
    /// batch rides whatever group the committer forms — one clock advance
    /// shared with every concurrent NEW_ORDER in the group — and the
    /// returned ticket resolves when that group publishes. The caller
    /// pipelines: keep a window of outstanding tickets, wait the oldest,
    /// and bump [`TpccTxnStats::new_order`] per resolved ticket (this method
    /// deliberately does not — the order is not committed yet when it
    /// returns).
    ///
    /// Requires a store-backed database and an `ingest` spawned over
    /// [`TpccDb::store`] (panics otherwise).
    pub fn new_order_ingest(
        &self,
        tid: usize,
        rng: &mut SmallRng,
        ingest: &TpccIngest,
    ) -> ingest::Ticket<ingest::IngestOutcome> {
        let store = self
            .store()
            .expect("the NEW_ORDER firehose requires a store-backed database");
        assert!(
            Arc::ptr_eq(store, ingest.store()),
            "the ingest front-end must wrap this database's store"
        );
        let cfg = self.cfg;
        let w = rng.gen_range(0..cfg.warehouses);
        let d = rng.gen_range(0..DISTRICTS_PER_WAREHOUSE);
        let c = rng.gen_range(0..cfg.customers_per_district);
        let ol_cnt = rng.gen_range(5..=15u64);
        let mut index_ops = 0u64;

        let o_id = self.next_o_id[(w * DISTRICTS_PER_WAREHOUSE + d) as usize]
            .fetch_add(1, Ordering::Relaxed);

        for _ in 0..ol_cnt {
            let item = rng.gen_range(0..cfg.items);
            let _ = self.item_index.get(tid, &item);
            index_ops += 1;
            if let Some(stock_row) = self.stock_index.get(tid, &stock_key(w, item)) {
                let qty = &self.stock_qty[stock_row as usize];
                let mut q = qty.load(Ordering::Relaxed);
                if q < 10 {
                    q += 91;
                }
                qty.store(q.saturating_sub(rng.gen_range(1..=10)), Ordering::Relaxed);
            }
            index_ops += 1;
        }

        let row_id = {
            let mut orders = self.orders.lock();
            let row_id = orders.len() as u64;
            orders.push(Order {
                o_id,
                c_id: c,
                ol_cnt,
                carrier_id: None,
            });
            row_id
        };
        let mut ops: Vec<store::TxnOp<u64, u64>> = Vec::with_capacity(2 + ol_cnt as usize);
        ops.push(store::TxnOp::Put(
            Table::Order.key(order_key(w, d, o_id)),
            row_id,
        ));
        ops.push(store::TxnOp::Put(
            Table::NewOrder.key(new_order_key(w, d, o_id)),
            row_id,
        ));
        for ol in 0..ol_cnt {
            ops.push(store::TxnOp::Put(
                Table::OrderLine.key(order_line_key(w, d, o_id, ol)),
                row_id,
            ));
        }
        self.bump_index_ops(index_ops + 2 + ol_cnt);
        ingest.submit_batch(ops)
    }

    /// PAYMENT: update a customer's balance; with 60% probability the
    /// customer is looked up by last name through a range query over the
    /// customer-name index, otherwise by primary key.
    ///
    /// On a store-backed database the whole profile runs as one
    /// serializable [`ReadWriteTxn`]: the primary-key lookup and the
    /// balance read are validated at commit, so a concurrent PAYMENT to
    /// the same customer aborts one of the two, which retries against a
    /// fresh snapshot — no update can be lost. (The by-name scan is an
    /// unvalidated peek: it only seeds the row id and the name index is
    /// immutable after load.)
    pub fn payment(&self, tid: usize, rng: &mut SmallRng, scratch: &mut Vec<(u64, u64)>) {
        let cfg = self.cfg;
        let w = rng.gen_range(0..cfg.warehouses);
        let d = rng.gen_range(0..DISTRICTS_PER_WAREHOUSE);
        let by_name = rng.gen_range(0..100) < 60;
        let c = rng.gen_range(0..cfg.customers_per_district);
        let amount = rng.gen_range(1.0..5000.0);
        let mut index_ops = 1u64; // the customer lookup

        let row_id = match &self.write_path {
            WritePath::PerIndex => {
                if by_name {
                    // Lookup by last name: range query over the contiguous
                    // block of customers sharing the name hash, pick the
                    // middle one (TPC-C picks the median by first name).
                    let h = last_name_hash(&Self::last_name(c));
                    let low = customer_name_key(w, d, h, 0);
                    let high = customer_name_key(w, d, h, (1 << 20) - 1);
                    self.customer_name_index
                        .range_query(tid, &low, &high, scratch);
                    if scratch.is_empty() {
                        None
                    } else {
                        Some(scratch[scratch.len() / 2].1)
                    }
                } else {
                    self.customer_index.get(tid, &customer_key(w, d, c))
                }
            }
            WritePath::StoreTxn(store) => {
                // Serializable read-modify-write, retried on validation
                // failure (another PAYMENT committed to the same balance
                // between our read and our commit). The name-index scan
                // is an unvalidated *peek* — it only seeds which row id
                // to pay, and the name index is immutable after load, so
                // validating (and commit-locking) the whole name block
                // would be pure overhead; the balance read-modify-write
                // below is what must be (and is) validated.
                let row = loop {
                    let mut txn = ReadWriteTxn::with_tid(store, tid);
                    let row = if by_name {
                        let h = last_name_hash(&Self::last_name(c));
                        let low = Table::CustomerName.key(customer_name_key(w, d, h, 0));
                        let high =
                            Table::CustomerName.key(customer_name_key(w, d, h, (1 << 20) - 1));
                        txn.range_peek(&low, &high, scratch);
                        if scratch.is_empty() {
                            None
                        } else {
                            Some(scratch[scratch.len() / 2].1)
                        }
                    } else {
                        txn.get(&Table::Customer.key(customer_key(w, d, c)))
                    };
                    if let Some(row) = row {
                        let bal_key = Table::CustomerBalance.key(row);
                        let bal = txn.get(&bal_key).unwrap_or(0);
                        txn.set(bal_key, bal + (amount * 100.0) as u64);
                    }
                    match txn.commit() {
                        Ok(_) => break row,
                        Err(TxnAborted) => continue,
                    }
                };
                if row.is_some() {
                    index_ops += 2; // balance read + upsert
                }
                row
            }
        };

        if let Some(row) = row_id {
            if let Some(cust) = self.customers.get(row as usize) {
                let mut cust = cust.lock();
                cust.balance -= amount;
                cust.payment_cnt += 1;
            }
        }
        self.bump_index_ops(index_ops);
        self.stats.payment.fetch_add(1, Ordering::Relaxed);
    }

    /// DELIVERY: for each district of a warehouse, range-query the
    /// new-order index over the last 100 orders, select the oldest, delete
    /// it from the new-order index and stamp the carrier on the order row.
    ///
    /// On a store-backed database each district's delivery is one
    /// serializable [`ReadWriteTxn`]: a snapshot *peek* over the pending
    /// window finds the oldest candidate, a **validated** read of
    /// `[window start, candidate]` proves it is still the oldest pending
    /// order (and pins that fact through commit — two deliveries can
    /// never consume the same order), a validated scan of the order's
    /// line block computes the order-line sum, and the new-order entry is
    /// removed — all under one commit timestamp. Validation failures
    /// retry the district against a fresh snapshot.
    pub fn delivery(&self, tid: usize, rng: &mut SmallRng, scratch: &mut Vec<(u64, u64)>) {
        let cfg = self.cfg;
        let w = rng.gen_range(0..cfg.warehouses);
        let carrier = rng.gen_range(1..=10u64);
        let mut index_ops = 0u64;
        for d in 0..DISTRICTS_PER_WAREHOUSE {
            let next =
                self.next_o_id[(w * DISTRICTS_PER_WAREHOUSE + d) as usize].load(Ordering::Relaxed);
            let low_o = next.saturating_sub(100);
            match &self.write_path {
                WritePath::PerIndex => {
                    let low = new_order_key(w, d, low_o);
                    let high = new_order_key(w, d, next);
                    self.new_order_index.range_query(tid, &low, &high, scratch);
                    index_ops += 1;
                    if let Some(&(oldest_key, order_row)) = scratch.first() {
                        // Delete so the next DELIVERY does not re-deliver.
                        if self.new_order_index.remove(tid, &oldest_key) {
                            index_ops += 1;
                            let mut orders = self.orders.lock();
                            if let Some(o) = orders.get_mut(order_row as usize) {
                                o.carrier_id = Some(carrier);
                            }
                        }
                    }
                }
                WritePath::StoreTxn(store) => {
                    index_ops +=
                        self.delivery_district_rw(store, tid, w, d, low_o, next, carrier, scratch);
                }
            }
        }
        self.bump_index_ops(index_ops);
        self.stats.delivery.fetch_add(1, Ordering::Relaxed);
    }

    /// One district of a store-backed DELIVERY as a serializable
    /// read-write transaction (see [`TpccDb::delivery`]); returns the
    /// index operations performed.
    #[allow(clippy::too_many_arguments)]
    fn delivery_district_rw(
        &self,
        store: &Arc<TpccStore>,
        tid: usize,
        w: u64,
        d: u64,
        low_o: u64,
        next: u64,
        carrier: u64,
        scratch: &mut Vec<(u64, u64)>,
    ) -> u64 {
        let low = Table::NewOrder.key(new_order_key(w, d, low_o));
        let high = Table::NewOrder.key(new_order_key(w, d, next));
        loop {
            let mut txn = ReadWriteTxn::with_tid(store, tid);
            // Unvalidated peek over the whole window: only seeds the
            // candidate, so concurrent NEW_ORDERs appending at the top of
            // the window cannot abort us.
            txn.range_peek(&low, &high, scratch);
            let Some(&(oldest_key, order_row)) = scratch.first() else {
                // Nothing pending in this district.
                return 1;
            };
            // Validated: the candidate is still the oldest pending order
            // (nothing below it reappeared, nobody delivered it), pinned
            // through the commit timestamp.
            let mut confirm = Vec::new();
            txn.range(&low, &oldest_key, &mut confirm);
            if confirm != vec![(oldest_key, order_row)] {
                continue; // lost the race to another delivery; re-read
            }
            // Order-line sum over the order's contiguous line block
            // (validated: the sum is consistent with the delete).
            let o_id = (oldest_key & ((1u64 << TABLE_SHIFT) - 1)) & ((1u64 << 40) - 1);
            let ol_low = Table::OrderLine.key(order_line_key(w, d, o_id, 0));
            let ol_high = Table::OrderLine.key(order_line_key(w, d, o_id, MAX_ORDER_LINES - 1));
            let mut lines = Vec::new();
            txn.range(&ol_low, &ol_high, &mut lines);
            let _ol_sum: u64 = lines.iter().map(|(_, row)| *row).sum();
            txn.remove(&oldest_key);
            match txn.commit() {
                Ok(_) => {
                    let mut orders = self.orders.lock();
                    if let Some(o) = orders.get_mut(order_row as usize) {
                        o.carrier_id = Some(carrier);
                    }
                    // window peek + confirm + line scan + delete
                    return 4;
                }
                Err(TxnAborted) => continue,
            }
        }
    }

    /// Execute one transaction of the paper's mix.
    pub fn run_txn(
        &self,
        tid: usize,
        rng: &mut SmallRng,
        scratch: &mut Vec<(u64, u64)>,
    ) -> TxnKind {
        let kind = TxnKind::sample(rng);
        match kind {
            TxnKind::NewOrder => self.new_order(tid, rng),
            TxnKind::Payment => self.payment(tid, rng, scratch),
            TxnKind::Delivery => self.delivery(tid, rng, scratch),
        }
        kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use skiplist::BundledSkipList;

    fn small_cfg() -> TpccConfig {
        TpccConfig {
            warehouses: 2,
            customers_per_district: 30,
            items: 50,
            initial_orders_per_district: 20,
        }
    }

    fn make_db(threads: usize) -> TpccDb {
        let factory = |t: usize| -> DynIndex { Arc::new(BundledSkipList::<u64, u64>::new(t)) };
        TpccDb::new(small_cfg(), &factory, threads)
    }

    #[test]
    fn population_fills_all_indexes() {
        let db = make_db(1);
        let cfg = db.cfg;
        assert_eq!(db.item_index.len(0) as u64, cfg.items);
        assert_eq!(
            db.customer_index.len(0) as u64,
            cfg.warehouses * DISTRICTS_PER_WAREHOUSE * cfg.customers_per_district
        );
        assert_eq!(
            db.new_order_index.len(0) as u64,
            cfg.warehouses * DISTRICTS_PER_WAREHOUSE * cfg.initial_orders_per_district
        );
        assert_eq!(db.order_index.len(0), db.new_order_index.len(0));
    }

    #[test]
    fn new_order_grows_order_indexes() {
        let db = make_db(1);
        let before = db.order_index.len(0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..20 {
            db.new_order(0, &mut rng);
        }
        assert_eq!(db.order_index.len(0), before + 20);
        assert_eq!(db.stats.new_order.load(Ordering::Relaxed), 20);
        assert!(db.stats.index_ops.load(Ordering::Relaxed) >= 20 * (2 + 2 * 5));
    }

    #[test]
    fn delivery_consumes_pending_orders() {
        let db = make_db(1);
        let before = db.new_order_index.len(0);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut scratch = Vec::new();
        for _ in 0..5 {
            db.delivery(0, &mut rng, &mut scratch);
        }
        let after = db.new_order_index.len(0);
        assert!(after < before, "deliveries must remove pending orders");
        assert_eq!(db.stats.delivery.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn payment_updates_customer_balance() {
        let db = make_db(1);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut scratch = Vec::new();
        for _ in 0..50 {
            db.payment(0, &mut rng, &mut scratch);
        }
        assert_eq!(db.stats.payment.load(Ordering::Relaxed), 50);
        let touched = db
            .customers
            .iter()
            .filter(|c| c.lock().payment_cnt > 0)
            .count();
        assert!(touched > 0, "some customer must have received a payment");
    }

    #[test]
    fn store_backed_db_populates_and_runs_the_mix() {
        let db = Arc::new(TpccDb::store_backed(small_cfg(), 2));
        assert!(db.is_store_backed());
        let cfg = db.cfg;
        assert_eq!(db.item_index.len(0) as u64, cfg.items);
        assert_eq!(
            db.customer_index.len(0) as u64,
            cfg.warehouses * DISTRICTS_PER_WAREHOUSE * cfg.customers_per_district
        );
        assert_eq!(db.order_index.len(0), db.new_order_index.len(0));
        let mut rng = SmallRng::seed_from_u64(9);
        let mut scratch = Vec::new();
        let orders_before = db.order_index.len(0);
        let lines_before = db.order_line_index.len(0);
        for _ in 0..30 {
            db.run_txn(0, &mut rng, &mut scratch);
        }
        assert_eq!(db.committed(), 30);
        let new_orders = db.stats.new_order.load(Ordering::Relaxed) as usize;
        assert_eq!(db.order_index.len(0), orders_before + new_orders);
        // Every committed NEW_ORDER inserted 5-15 lines atomically.
        let lines = db.order_line_index.len(0) - lines_before;
        assert!(lines >= new_orders * 5 && lines <= new_orders * 15);
    }

    #[test]
    fn store_backed_new_order_is_atomic_across_indexes() {
        // The anomaly the store-backed path eliminates: with independent
        // per-index inserts a scan of the new-order index can observe an
        // order whose order-line entries are not inserted yet. Store-backed,
        // all three index writes share one commit timestamp, so any order
        // visible in the new-order index must have its order row and its
        // first order-line visible too.
        use crate::keys::order_line_key;
        const WRITERS: usize = 2;
        let db = Arc::new(TpccDb::store_backed(small_cfg(), WRITERS + 1));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..WRITERS)
            .map(|tid| {
                let db = Arc::clone(&db);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(33 + tid as u64);
                    while !stop.load(Ordering::Relaxed) {
                        db.new_order(tid, &mut rng);
                    }
                })
            })
            .collect();
        let reader = {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let tid = WRITERS;
                let cfg = db.cfg;
                let mut scratch = Vec::new();
                let mask = (1u64 << 40) - 1;
                for _ in 0..300 {
                    for w in 0..cfg.warehouses {
                        let d = 0;
                        let low = new_order_key(w, d, cfg.initial_orders_per_district);
                        let high = new_order_key(w, d, mask);
                        db.new_order_index
                            .range_query(tid, &low, &high, &mut scratch);
                        for (k, _) in &scratch {
                            let o_id = k & mask;
                            assert!(
                                db.order_index.contains(tid, &order_key(w, d, o_id)),
                                "new-order entry visible without its order row"
                            );
                            assert!(
                                db.order_line_index
                                    .contains(tid, &order_line_key(w, d, o_id, 0)),
                                "new-order entry visible without its order lines"
                            );
                        }
                    }
                }
            })
        };
        reader.join().unwrap();
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }

    #[test]
    fn store_backed_payments_never_lose_updates() {
        // PAYMENT's balance cell is a store-resident counter updated by a
        // serializable read-modify-write; the arena mirror is updated
        // under a per-customer mutex after each commit. A lost store
        // update (the anomaly unvalidated reads would allow) diverges the
        // two by at least one full payment (>= 100 cents); rounding
        // (`(amount * 100.0) as u64`) accounts for at most 1 cent per
        // payment.
        const WORKERS: usize = 3;
        const PAYMENTS: usize = 120;
        let db = Arc::new(TpccDb::store_backed(small_cfg(), WORKERS));
        let joins: Vec<_> = (0..WORKERS)
            .map(|tid| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(77 + tid as u64);
                    let mut scratch = Vec::new();
                    for _ in 0..PAYMENTS {
                        db.payment(tid, &mut rng, &mut scratch);
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(
            db.stats.payment.load(Ordering::Relaxed),
            (WORKERS * PAYMENTS) as u64
        );
        let mut paid_customers = 0usize;
        for (row, cust) in db.customers.iter().enumerate() {
            let cust = cust.lock();
            let store_cents = db
                .store_balance_cents(0, row as u64)
                .expect("store-backed balances exist for every customer");
            let arena_cents = (-cust.balance - 10.0) * 100.0;
            assert!(
                (store_cents as f64 - arena_cents).abs() <= cust.payment_cnt as f64 + 0.5,
                "row {row}: store={store_cents} arena={arena_cents} \
                 payments={} — a payment was lost",
                cust.payment_cnt
            );
            if cust.payment_cnt > 0 {
                paid_customers += 1;
            }
        }
        assert!(paid_customers > 0, "some customer must have been paid");
    }

    #[test]
    fn store_backed_deliveries_are_exactly_once() {
        // Two concurrent DELIVERYs racing for the same oldest pending
        // order: validation lets exactly one commit; the loser re-reads
        // and takes the next order. Every removed new-order entry must
        // therefore correspond to exactly one stamped order.
        const WORKERS: usize = 3;
        const DELIVERIES: usize = 12;
        let db = Arc::new(TpccDb::store_backed(small_cfg(), WORKERS));
        let initial = db.new_order_index.len(0);
        assert_eq!(db.delivered_orders(), 0);
        let joins: Vec<_> = (0..WORKERS)
            .map(|tid| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(55 + tid as u64);
                    let mut scratch = Vec::new();
                    for _ in 0..DELIVERIES {
                        db.delivery(tid, &mut rng, &mut scratch);
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        let remaining = db.new_order_index.len(0);
        let delivered = db.delivered_orders();
        assert!(delivered > 0, "deliveries must make progress");
        assert_eq!(
            initial - remaining,
            delivered,
            "every consumed new-order entry delivered exactly one order"
        );
    }

    #[test]
    fn store_backed_full_mix_keeps_delivery_invariant() {
        // The whole store-backed TPC-C surface under concurrency: atomic
        // NEW_ORDER write txns, serializable PAYMENT RMWs and DELIVERY
        // scan-deletes. Afterwards, an order is pending (in the new-order
        // index) iff it has not been delivered.
        const WORKERS: usize = 3;
        let db = Arc::new(TpccDb::store_backed(small_cfg(), WORKERS));
        let joins: Vec<_> = (0..WORKERS)
            .map(|tid| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(101 + tid as u64);
                    let mut scratch = Vec::new();
                    for _ in 0..150 {
                        db.run_txn(tid, &mut rng, &mut scratch);
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(db.committed(), (WORKERS * 150) as u64);
        assert_eq!(
            db.new_order_index.len(0) + db.delivered_orders(),
            db.order_index.len(0),
            "pending + delivered must cover exactly the committed orders"
        );
    }

    #[test]
    fn mixed_transactions_run_concurrently() {
        let db = Arc::new(make_db(4));
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(100 + tid as u64);
                    let mut scratch = Vec::new();
                    for _ in 0..200 {
                        db.run_txn(tid, &mut rng, &mut scratch);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.committed(), 800);
        assert!(db.stats.index_ops.load(Ordering::Relaxed) > 800);
    }
}
