//! The TPC-C workload driver used by the Figure 4 experiment.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::tpcc::{IndexFactory, TpccConfig, TpccDb};

/// Result of a timed TPC-C run.
#[derive(Debug, Clone, Copy)]
pub struct TpccThroughput {
    /// Committed transactions.
    pub transactions: u64,
    /// Operations issued against the indexes (what Figure 4 plots).
    pub index_ops: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
}

impl TpccThroughput {
    /// Index operations per second, in millions (the y-axis of Figure 4).
    pub fn index_mops(&self) -> f64 {
        self.index_ops as f64 / self.elapsed.as_secs_f64() / 1e6
    }

    /// Committed transactions per second.
    pub fn tps(&self) -> f64 {
        self.transactions as f64 / self.elapsed.as_secs_f64()
    }
}

/// Populate a database with indexes built by `factory` and run the TPC-C
/// mix on `threads` worker threads for `duration_ms` milliseconds.
pub fn run_tpcc(
    cfg: TpccConfig,
    factory: &IndexFactory,
    threads: usize,
    duration_ms: u64,
) -> TpccThroughput {
    run_tpcc_db(
        Arc::new(TpccDb::new(cfg, factory, threads)),
        threads,
        duration_ms,
    )
}

/// Run the TPC-C mix against an already-built database (e.g.
/// [`TpccDb::store_backed`], where NEW_ORDER commits as one cross-shard
/// write transaction).
pub fn run_tpcc_db(db: Arc<TpccDb>, threads: usize, duration_ms: u64) -> TpccThroughput {
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::with_capacity(threads);
    for tid in 0..threads {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(0x79cc ^ (tid as u64 + 1));
            let mut scratch = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                for _ in 0..16 {
                    db.run_txn(tid, &mut rng, &mut scratch);
                }
            }
        }));
    }
    let start = Instant::now();
    std::thread::sleep(Duration::from_millis(duration_ms));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("TPC-C worker panicked");
    }
    let elapsed = start.elapsed();
    TpccThroughput {
        transactions: db.committed(),
        index_ops: db.stats.index_ops.load(Ordering::Relaxed),
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcc::DynIndex;
    use citrus::BundledCitrusTree;
    use skiplist::BundledSkipList;
    use std::sync::Arc;

    #[test]
    fn tpcc_runs_on_skiplist_and_citrus_indexes() {
        let cfg = TpccConfig {
            warehouses: 1,
            customers_per_district: 20,
            items: 30,
            initial_orders_per_district: 10,
        };
        let skiplist_factory =
            |t: usize| -> DynIndex { Arc::new(BundledSkipList::<u64, u64>::new(t)) };
        let citrus_factory =
            |t: usize| -> DynIndex { Arc::new(BundledCitrusTree::<u64, u64>::new(t)) };
        for factory in [
            &skiplist_factory as &IndexFactory,
            &citrus_factory as &IndexFactory,
        ] {
            let t = run_tpcc(cfg, factory, 2, 50);
            assert!(t.transactions > 0);
            assert!(t.index_ops > t.transactions);
            assert!(t.index_mops() > 0.0);
            assert!(t.tps() > 0.0);
        }
    }
}
