//! Store-backed index substrate: every TPC-C index is a *view* over one
//! shared [`store::BundledStore`], so multi-index writes can commit as one
//! cross-shard transaction.
//!
//! The paper plugs its bundled structures into DBx1000 as six independent
//! indexes; each index update is then only individually linearizable, and
//! a DELIVERY range query can observe a NEW_ORDER transaction's order
//! without its order-lines. Backing all indexes by one sharded store —
//! each table owns a tagged slice of the `u64` keyspace and at least one
//! shard — lets NEW_ORDER's three-index insert (order, new-order,
//! order-line) run as a single [`txn::WriteTxn`]: one commit timestamp,
//! atomic with respect to every index range query.

use std::sync::Arc;

use bundle::api::{ConcurrentSet, RangeQuerySet};

/// Bits above every composite TPC-C key reserved for the table tag
/// (district prefixes top out near 2^47).
pub const TABLE_SHIFT: u32 = 56;

/// The tables (= index views) of the TPC-C substrate, each owning the key
/// range `[tag << TABLE_SHIFT, (tag + 1) << TABLE_SHIFT)` of the shared
/// store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum Table {
    /// Customer primary index.
    Customer = 1,
    /// Customer last-name index.
    CustomerName = 2,
    /// Order index.
    Order = 3,
    /// New-order (pending delivery) index.
    NewOrder = 4,
    /// Item index.
    Item = 5,
    /// Stock index.
    Stock = 6,
    /// Order-line index.
    OrderLine = 7,
    /// Customer balance table: `customer row id -> accumulated payment
    /// cents`. Unlike the index tables (whose values are immutable row
    /// ids), this one is *mutated* by PAYMENT's read-modify-write — which
    /// is why store-backed PAYMENT runs as a serializable
    /// `txn::ReadWriteTxn` (validated read of the balance, upsert of the
    /// new value, one commit timestamp).
    CustomerBalance = 8,
}

/// Number of tables backed by the shared store.
pub const TABLE_COUNT: u64 = 8;

impl Table {
    /// The table's key-space tag (high bits of every key it owns).
    #[must_use]
    pub fn tag(self) -> u64 {
        (self as u64) << TABLE_SHIFT
    }

    /// Tag a table-local key into the shared store's keyspace.
    #[must_use]
    pub fn key(self, local: u64) -> u64 {
        debug_assert!(local < (1u64 << TABLE_SHIFT));
        self.tag() | local
    }
}

/// The shared store every table view resolves through: bundled skip-list
/// shards, one per table (shard boundaries at the table tags).
pub type TpccStore = store::SkipListStore<u64, u64>;

/// A group-commit ingestion front-end over the shared TPC-C store (the
/// NEW_ORDER firehose submits its three-index batches here; see
/// [`crate::run_new_order_firehose`]).
pub type TpccIngest = ingest::Ingest<u64, u64, skiplist::BundledSkipList<u64, u64>>;

/// Build the shared store backing all seven table views: `TABLE_COUNT + 1`
/// range shards (shard 0 covers the unused space below the first tag), all
/// on one clock, supporting `max_threads` registered threads.
pub fn build_tpcc_store(max_threads: usize) -> Arc<TpccStore> {
    let splits: Vec<u64> = (1..=TABLE_COUNT).map(|t| t << TABLE_SHIFT).collect();
    Arc::new(TpccStore::new(max_threads, splits))
}

/// One table's index view over the shared store: implements the same
/// [`ConcurrentSet`] / [`RangeQuerySet`] surface as a standalone index by
/// tagging keys in and stripping tags out, so the whole TPC-C machinery
/// (population, PAYMENT scans, DELIVERY scans) drives it unchanged.
pub struct StoreIndexView {
    store: Arc<TpccStore>,
    table: Table,
}

impl StoreIndexView {
    /// A view of `table` over `store`.
    pub fn new(store: Arc<TpccStore>, table: Table) -> Self {
        StoreIndexView { store, table }
    }

    /// The table this view projects.
    #[must_use]
    pub fn table(&self) -> Table {
        self.table
    }
}

impl ConcurrentSet<u64, u64> for StoreIndexView {
    fn insert(&self, tid: usize, key: u64, value: u64) -> bool {
        self.store.insert(tid, self.table.key(key), value)
    }

    fn remove(&self, tid: usize, key: &u64) -> bool {
        self.store.remove(tid, &self.table.key(*key))
    }

    fn contains(&self, tid: usize, key: &u64) -> bool {
        self.store.contains(tid, &self.table.key(*key))
    }

    fn get(&self, tid: usize, key: &u64) -> Option<u64> {
        self.store.get(tid, &self.table.key(*key))
    }

    // O(table) and allocating: materializes the view through a snapshot
    // range query just to count. Fine for the trait's intended use (tests
    // and initialization checks, per its docs) — not a hot-path counter.
    fn len(&self, tid: usize) -> usize {
        let mut out = Vec::new();
        self.store.range_query(
            tid,
            &self.table.tag(),
            &(self.table.tag() | ((1u64 << TABLE_SHIFT) - 1)),
            &mut out,
        );
        out.len()
    }
}

impl RangeQuerySet<u64, u64> for StoreIndexView {
    fn range_query(&self, tid: usize, low: &u64, high: &u64, out: &mut Vec<(u64, u64)>) -> usize {
        let n = self
            .store
            .range_query(tid, &self.table.key(*low), &self.table.key(*high), out);
        for entry in out.iter_mut() {
            entry.0 &= (1u64 << TABLE_SHIFT) - 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_partition_the_store_and_strip_tags() {
        let store = build_tpcc_store(2);
        let orders = StoreIndexView::new(Arc::clone(&store), Table::Order);
        let lines = StoreIndexView::new(Arc::clone(&store), Table::OrderLine);
        assert!(orders.insert(0, 42, 1));
        assert!(lines.insert(0, 42, 2));
        // Same local key, different tables, no interference.
        assert_eq!(orders.get(0, &42), Some(1));
        assert_eq!(lines.get(0, &42), Some(2));
        assert_eq!(orders.len(0), 1);
        let mut out = Vec::new();
        assert_eq!(orders.range_query(1, &0, &100, &mut out), 1);
        assert_eq!(out, vec![(42, 1)], "tags are stripped from results");
        assert!(orders.remove(0, &42));
        assert!(!orders.contains(0, &42));
        assert!(lines.contains(0, &42));
        // Each table lands in its own shard.
        assert_eq!(store.shard_of(&Table::Order.key(0)), 3);
        assert_eq!(store.shard_of(&Table::OrderLine.key(0)), 7);
    }
}
