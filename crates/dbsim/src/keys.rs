//! Composite key encodings for the TPC-C indexes.
//!
//! All indexes are ordered sets over `u64` keys, so composite TPC-C keys
//! (warehouse, district, customer/order ids, name hashes) are packed into a
//! single integer in a way that preserves the orderings the transactions
//! rely on: orders of one district are contiguous and ordered by `o_id`,
//! customers sharing a last name are contiguous within their district.

/// TPC-C districts per warehouse.
pub const DISTRICTS_PER_WAREHOUSE: u64 = 10;

fn district_prefix(w_id: u64, d_id: u64) -> u64 {
    debug_assert!(d_id < DISTRICTS_PER_WAREHOUSE);
    (w_id * DISTRICTS_PER_WAREHOUSE + d_id) << 40
}

/// Primary customer index key: `(w, d, c_id)`.
pub fn customer_key(w_id: u64, d_id: u64, c_id: u64) -> u64 {
    district_prefix(w_id, d_id) | c_id
}

/// Customer-by-name index key: `(w, d, last-name hash, c_id)`.
///
/// The 16-bit name hash keeps all customers with the same last name in one
/// contiguous key range of at most 2^20 keys, which PAYMENT scans with a
/// range query.
pub fn customer_name_key(w_id: u64, d_id: u64, name_hash: u64, c_id: u64) -> u64 {
    debug_assert!(c_id < (1 << 20));
    district_prefix(w_id, d_id) | ((name_hash & 0xFFFF) << 20) | c_id
}

/// Order index key: `(w, d, o_id)` — orders of a district are ordered by id.
pub fn order_key(w_id: u64, d_id: u64, o_id: u64) -> u64 {
    district_prefix(w_id, d_id) | o_id
}

/// New-order index key: identical layout to [`order_key`], kept separate for
/// readability at call sites.
pub fn new_order_key(w_id: u64, d_id: u64, o_id: u64) -> u64 {
    order_key(w_id, d_id, o_id)
}

/// Maximum order lines per order (TPC-C draws 5..=15; 32 leaves headroom).
pub const MAX_ORDER_LINES: u64 = 32;

/// Order-line index key: `(w, d, o_id, ol_number)` — lines of one order are
/// contiguous and ordered, orders of one district stay ordered by id.
pub fn order_line_key(w_id: u64, d_id: u64, o_id: u64, ol_number: u64) -> u64 {
    debug_assert!(ol_number < MAX_ORDER_LINES);
    // The multiplied order id must stay inside the 40-bit field below the
    // district prefix (order ids may use the full 40 bits in `order_key`,
    // but here they share them with the line number).
    debug_assert!(o_id < (1 << 40) / MAX_ORDER_LINES);
    district_prefix(w_id, d_id) | (o_id * MAX_ORDER_LINES) | ol_number
}

/// Stock index key: `(w, item)`.
pub fn stock_key(w_id: u64, i_id: u64) -> u64 {
    (w_id << 32) | i_id
}

/// Simple FNV-style hash for customer last names, folded to 16 bits.
pub fn last_name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h ^ (h >> 16) ^ (h >> 32) ^ (h >> 48)) & 0xFFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_keys_are_ordered_by_o_id_within_district() {
        let a = order_key(3, 4, 100);
        let b = order_key(3, 4, 101);
        let c = order_key(3, 5, 0);
        assert!(a < b);
        assert!(b < c, "districts are disjoint prefixes");
    }

    #[test]
    fn customer_name_keys_group_by_name() {
        let h = last_name_hash("BARBARBAR");
        let k1 = customer_name_key(1, 2, h, 10);
        let k2 = customer_name_key(1, 2, h, 900);
        let other = customer_name_key(1, 2, h.wrapping_add(1) & 0xFFFF, 0);
        assert!(k1 < k2);
        assert_ne!(k1 >> 20, other >> 20);
    }

    #[test]
    fn name_hash_is_16_bits_and_deterministic() {
        for name in ["ABLE", "OUGHT", "PRESBARPRES", "ESEANTICALLY"] {
            let h = last_name_hash(name);
            assert!(h <= 0xFFFF);
            assert_eq!(h, last_name_hash(name));
        }
    }

    #[test]
    fn stock_keys_separate_warehouses() {
        assert!(stock_key(1, 99_999) < stock_key(2, 0));
    }

    #[test]
    fn order_line_keys_are_ordered_and_grouped_per_order() {
        let a = order_line_key(3, 4, 100, 0);
        let b = order_line_key(3, 4, 100, 14);
        let c = order_line_key(3, 4, 101, 0);
        let d = order_line_key(3, 5, 0, 0);
        assert!(a < b && b < c && c < d);
    }
}
