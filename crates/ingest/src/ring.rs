//! A bounded lock-free MPSC ring — the ingest submission queue.
//!
//! Producers reserve slots with **one `fetch_add`** on the tail counter;
//! the single consumer (the committer that owns the shard) scoops a
//! contiguous run of published slots per drain. The ring replaces the
//! `Mutex<VecDeque>` + condvar queues of the pre-ring front-end: under
//! heavy fan-in every producer used to serialize on the queue lock before
//! the committer ever saw an op — now the submit hot path is one
//! occupancy check, one tail `fetch_add`, one slot write, and one
//! sequence publish, with no lock anywhere.
//!
//! ## Slot protocol
//!
//! Storage is a power-of-two array of slots, each carrying a lap-tagged
//! sequence word (`seq`) next to its value cell. For the reservation at
//! global position `pos` (slot index `pos & mask`):
//!
//! * `seq == pos`       — the slot is **free** for this lap: the reserving
//!   producer may write the value.
//! * `seq == pos + 1`   — **published**: the producer stored the value and
//!   released it; the consumer may take it.
//! * `seq == pos + cap` — **consumed**: the consumer took the value and
//!   freed the slot for the next lap (it reads as *free* to the producer
//!   that will reserve `pos + cap`).
//!
//! Positions are 64-bit and never wrap in practice, so lap tags are never
//! reused (no ABA).
//!
//! ## Bounding: the occupancy gate
//!
//! A pure `fetch_add` reservation cannot be handed back, so a producer
//! must *know* a slot is free before reserving. A cache-padded occupancy
//! counter provides that: producers increment it before reserving and the
//! consumer decrements it only **after** freeing a slot's sequence word,
//! so `occupancy <= bound` implies at most `bound` reservations are
//! un-freed at any instant — and since reservations are dense and slots
//! are freed in order, the slot for a gated reservation is *already free*
//! when the producer reaches it (the seq wait below is a
//! never-spinning defensive check). A producer that loses the gate
//! backs its increment out and reports the ring full, handing the value
//! back untouched — the [`crate::QueueFull`] shed path costs one relaxed
//! load when the ring stays full.
//!
//! The logical depth bound may be below the power-of-two slot count
//! (capacity rounds up); [`MpscRing::try_push`] rejects at `bound`
//! pushed-not-yet-popped values exactly.
//!
//! ## What the ring does *not* do
//!
//! Blocking (parking a producer on a full ring, waking the consumer on a
//! publish) is layered on top by the front-end's eventcount-style slow
//! paths — the ring itself is pure std atomics plus the existing
//! `crossbeam-utils` cache-padding shim, and never touches a lock.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crossbeam_utils::CachePadded;

/// One lap-tagged slot (see the module docs for the `seq` protocol).
struct Slot<T> {
    seq: AtomicU64,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free multi-producer single-consumer ring (see the
/// module docs for the slot protocol and the occupancy gate).
///
/// Producer methods ([`MpscRing::try_push`], [`MpscRing::try_reserve`])
/// are safe to call from any number of threads concurrently. Consumer
/// methods ([`MpscRing::pop`]) are `unsafe` with a single-consumer
/// contract — exactly one thread may consume at a time.
pub struct MpscRing<T> {
    slots: Box<[Slot<T>]>,
    /// `capacity - 1`; capacity is a power of two.
    mask: u64,
    /// Slot count (≥ 2, ≥ `bound`, power of two).
    capacity: u64,
    /// Logical depth bound: `try_push` rejects at this many
    /// pushed-not-yet-popped values.
    bound: usize,
    /// Producers' reservation counter (positions handed out).
    tail: CachePadded<AtomicU64>,
    /// Consumer position: the next position to take.
    head: CachePadded<AtomicU64>,
    /// The gate: values accepted and not yet popped (conservatively
    /// overcounts by racing producers that will back out).
    occupancy: CachePadded<AtomicUsize>,
}

// The ring hands `T` values across threads by value; the slots' interior
// mutability is disciplined by the seq protocol (a slot is written only
// by its reserving producer and read only by the consumer, with
// release/acquire edges through `seq`).
unsafe impl<T: Send> Send for MpscRing<T> {}
unsafe impl<T: Send> Sync for MpscRing<T> {}

/// A reserved-but-unpublished slot, returned by
/// [`MpscRing::try_reserve`]. Publishing is infallible and wait-free;
/// the split lets the caller run bookkeeping between acceptance and
/// publication (the front-end increments its in-flight counter there, so
/// a rejected push never has to undo it). **Must** be published: a
/// leaked reservation stalls the consumer at its position forever.
#[must_use = "a reserved slot must be published or the consumer stalls"]
pub struct PushSlot<'a, T> {
    ring: &'a MpscRing<T>,
    pos: u64,
}

impl<T> PushSlot<'_, T> {
    /// Write `value` into the reserved slot and publish it to the
    /// consumer. Wait-free: one value write and one release store.
    pub fn publish(self, value: T) {
        let slot = &self.ring.slots[(self.pos & self.ring.mask) as usize];
        // The occupancy gate proved the slot free at reservation (module
        // docs); the wait is defensive and does not spin in practice.
        while slot.seq.load(Ordering::Acquire) != self.pos {
            std::hint::spin_loop();
        }
        unsafe { (*slot.value.get()).write(value) };
        slot.seq.store(self.pos + 1, Ordering::Release);
    }
}

impl<T> MpscRing<T> {
    /// A ring rejecting pushes at `bound` queued values. Slot count is
    /// `bound` rounded up to a power of two (minimum 2 — the lap tags
    /// `pos + 1` and `pos + capacity` must differ). Panics if `bound`
    /// is 0.
    pub fn with_bound(bound: usize) -> Self {
        assert!(bound >= 1, "an MPSC ring needs at least one slot");
        let capacity = bound.max(2).next_power_of_two() as u64;
        MpscRing {
            slots: (0..capacity)
                .map(|i| Slot {
                    seq: AtomicU64::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            mask: capacity - 1,
            capacity,
            bound,
            tail: CachePadded::new(AtomicU64::new(0)),
            head: CachePadded::new(AtomicU64::new(0)),
            occupancy: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// The logical depth bound (rejection threshold), in values.
    #[must_use]
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Values accepted and not yet popped. Exact when producers are
    /// quiescent; may transiently overcount by producers racing the
    /// gate. This is the live-depth signal the `ingest.depth` gauge and
    /// the drain-time trace events report.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.occupancy.load(Ordering::Relaxed)
    }

    /// Reserve a slot, or `None` if the ring is at its bound. Lock-free:
    /// the accept path is two `fetch_add`s; the reject path is one
    /// relaxed load when the ring stays full (the gate RMW only runs
    /// when the load saw room).
    pub fn try_reserve(&self) -> Option<PushSlot<'_, T>> {
        // Read-only fast reject: producers spin-retrying against a full
        // ring must not write the (contended) gate line.
        if self.occupancy.load(Ordering::Relaxed) >= self.bound {
            return None;
        }
        if self.occupancy.fetch_add(1, Ordering::SeqCst) >= self.bound {
            self.occupancy.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        let pos = self.tail.fetch_add(1, Ordering::Relaxed);
        Some(PushSlot { ring: self, pos })
    }

    /// Push `value`, or hand it back if the ring is at its bound.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        match self.try_reserve() {
            Some(slot) => {
                slot.publish(value);
                Ok(())
            }
            None => Err(value),
        }
    }

    /// Whether the consumer's next position is published (work is
    /// ready). Advisory from any thread; exact for the consumer.
    #[must_use]
    pub fn has_ready(&self) -> bool {
        let h = self.head.load(Ordering::Relaxed);
        self.slots[(h & self.mask) as usize]
            .seq
            .load(Ordering::Acquire)
            == h + 1
    }

    /// Take the next published value, or `None` if the next position is
    /// unpublished (the run of ready values is contiguous from `head`,
    /// so a drain loop calling `pop` until `None` scoops exactly the
    /// published backlog). Frees the slot *before* decrementing the
    /// occupancy gate, preserving the gate's "un-freed reservations
    /// never exceed the bound" invariant.
    ///
    /// # Safety
    ///
    /// Single-consumer: no other thread may be calling `pop`
    /// concurrently. (Producers are fine.)
    pub unsafe fn pop(&self) -> Option<T> {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h & self.mask) as usize];
        if slot.seq.load(Ordering::Acquire) != h + 1 {
            return None;
        }
        let value = unsafe { (*slot.value.get()).assume_init_read() };
        slot.seq.store(h + self.capacity, Ordering::Release);
        self.head.store(h + 1, Ordering::Relaxed);
        self.occupancy.fetch_sub(1, Ordering::SeqCst);
        Some(value)
    }
}

impl<T> Drop for MpscRing<T> {
    fn drop(&mut self) {
        // `&mut self`: no other consumer can exist, so popping is safe.
        // Published values still queued are dropped; a reserved-but-
        // unpublished slot never had a value written.
        while unsafe { self.pop() }.is_some() {}
    }
}

impl<T> std::fmt::Debug for MpscRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpscRing")
            .field("bound", &self.bound)
            .field("capacity", &self.capacity)
            .field("occupancy", &self.occupancy())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_fifo_round_trip() {
        let ring = MpscRing::with_bound(4);
        for i in 0..4 {
            ring.try_push(i).unwrap();
        }
        assert_eq!(ring.occupancy(), 4);
        for i in 0..4 {
            assert_eq!(unsafe { ring.pop() }, Some(i));
        }
        assert_eq!(unsafe { ring.pop() }, None);
        assert_eq!(ring.occupancy(), 0);
    }

    #[test]
    fn wraps_around_many_laps() {
        // Bound 3 forces a non-power-of-two bound inside a 4-slot ring;
        // 1000 values cycle through every slot hundreds of laps.
        let ring = MpscRing::with_bound(3);
        let mut next_pop = 0u64;
        for i in 0..1000u64 {
            ring.try_push(i).unwrap();
            if i % 3 == 2 {
                while let Some(v) = unsafe { ring.pop() } {
                    assert_eq!(v, next_pop);
                    next_pop += 1;
                }
            }
        }
        while let Some(v) = unsafe { ring.pop() } {
            assert_eq!(v, next_pop);
            next_pop += 1;
        }
        assert_eq!(next_pop, 1000);
    }

    #[test]
    fn rejects_exactly_at_bound_and_hands_the_value_back() {
        for bound in [1usize, 2, 3, 8] {
            let ring = MpscRing::with_bound(bound);
            for i in 0..bound {
                assert!(ring.try_push(i).is_ok(), "bound {bound}: push {i}");
            }
            // Full: the exact value comes back, repeatedly.
            assert_eq!(ring.try_push(99), Err(99), "bound {bound}");
            assert_eq!(ring.try_push(99), Err(99), "bound {bound}");
            // One pop frees exactly one slot.
            assert_eq!(unsafe { ring.pop() }, Some(0));
            assert!(ring.try_push(100).is_ok(), "bound {bound}");
            assert_eq!(ring.try_push(101), Err(101), "bound {bound}");
        }
    }

    #[test]
    fn drop_releases_queued_values() {
        let ring = MpscRing::with_bound(8);
        let value = Arc::new(());
        for _ in 0..5 {
            ring.try_push(Arc::clone(&value)).unwrap();
        }
        drop(ring);
        assert_eq!(Arc::strong_count(&value), 1, "queued Arcs dropped");
    }

    /// The seeded multi-producer wraparound hammer: producers × bounds,
    /// every value tagged with its producer and per-producer sequence;
    /// the consumer asserts per-producer FIFO order and exact delivery
    /// (nothing lost, nothing duplicated, nothing invented) while the
    /// ring wraps thousands of laps under rejection-retry pressure.
    #[test]
    fn multi_producer_wraparound_hammer() {
        for &producers in &[2usize, 4] {
            for &bound in &[1usize, 2, 7, 64] {
                const PER_PRODUCER: u64 = 5_000;
                let ring = Arc::new(MpscRing::with_bound(bound));
                let handles: Vec<_> = (0..producers as u64)
                    .map(|p| {
                        let ring = Arc::clone(&ring);
                        std::thread::spawn(move || {
                            for i in 0..PER_PRODUCER {
                                let mut v = (p << 32) | i;
                                loop {
                                    match ring.try_push(v) {
                                        Ok(()) => break,
                                        Err(back) => {
                                            v = back; // handback exactness
                                            std::thread::yield_now();
                                        }
                                    }
                                }
                            }
                        })
                    })
                    .collect();
                let consumer = {
                    let ring = Arc::clone(&ring);
                    std::thread::spawn(move || {
                        let mut next = vec![0u64; producers];
                        let mut taken = 0u64;
                        let total = producers as u64 * PER_PRODUCER;
                        while taken < total {
                            match unsafe { ring.pop() } {
                                Some(v) => {
                                    let (p, i) = ((v >> 32) as usize, v & 0xffff_ffff);
                                    assert_eq!(
                                        i, next[p],
                                        "producer {p} order lost (bound {bound})"
                                    );
                                    next[p] += 1;
                                    taken += 1;
                                }
                                None => std::thread::yield_now(),
                            }
                        }
                        assert_eq!(unsafe { ring.pop() }, None, "ring over-delivered");
                    })
                };
                for h in handles {
                    h.join().unwrap();
                }
                consumer.join().unwrap();
                assert_eq!(ring.occupancy(), 0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_bound_is_rejected() {
        let _ = MpscRing::<u64>::with_bound(0);
    }
}
