//! Same-key coalescing: folding the queue-ordered operations of one group
//! into a single *effective* store op per key, and replaying the queue
//! order afterwards to recover every submission's individual outcome.
//!
//! A group may contain several operations on the same key, submitted by
//! different sessions. The committer serializes them in queue order, but
//! the store's grouped-apply path stages **one** op per key (two prepares
//! of one key inside one shard token would contend on the transaction's
//! own node locks). The fold exploits that the whole sequence's final
//! state — and every individual outcome — is a function of just one
//! unknown: whether the key was present when the group committed
//! (`present₀`).
//!
//! Tracking both hypothetical branches (`present₀ = true` starts from the
//! key's *original* value, `present₀ = false` from absent) through the op
//! sequence shows only three shapes survive:
//!
//! * **all `Put`s** — the true-branch keeps the original value, the
//!   false-branch holds the first put's value: exactly the semantics of a
//!   single `Put(first value)`;
//! * otherwise the branches converge at the first `Set`/`Remove` and stay
//!   converged, so simulating the absent-start branch yields the common
//!   final state: **present with `v`** ⇒ effective `Set(v)`, **absent** ⇒
//!   effective `Remove`.
//!
//! In every shape the staged effective op's result bit reveals
//! `present₀` (`Put` reports `inserted = !present₀`; `Set` reports
//! `existed = present₀`; `Remove` reports `removed = present₀`), after which
//! [`replay_outcomes`] walks the queue order once to produce each
//! submission's result. Intermediate states are never observable: the
//! whole group publishes at one timestamp, so the fold changes nothing a
//! snapshot could distinguish.

use store::TxnOp;

/// Fold a non-empty queue-ordered same-key op sequence into the single
/// effective op the store stages for this key (see the module docs).
pub(crate) fn effective_op<K: Copy + Ord, V: Clone>(key: K, seq: &[&TxnOp<K, V>]) -> TxnOp<K, V> {
    debug_assert!(!seq.is_empty());
    debug_assert!(seq.iter().all(|op| *op.key() == key));
    if seq.iter().all(|op| matches!(op, TxnOp::Put(_, _))) {
        // All-puts: only the first can take effect, and only if the key
        // is absent — which is exactly a single Put's contract.
        let TxnOp::Put(_, v) = seq[0] else {
            unreachable!("just checked all ops are puts")
        };
        return TxnOp::Put(key, v.clone());
    }
    // At least one Set/Remove: both presence branches converge there, so
    // simulating the absent-start branch yields the common final state.
    let mut state: Option<&V> = None;
    for op in seq {
        match op {
            TxnOp::Put(_, v) => {
                if state.is_none() {
                    state = Some(v);
                }
            }
            TxnOp::Set(_, v) => state = Some(v),
            TxnOp::Remove(_) => state = None,
        }
    }
    match state {
        Some(v) => TxnOp::Set(key, v.clone()),
        None => TxnOp::Remove(key),
    }
}

/// Recover `present₀` (was the key present when the group committed?)
/// from the effective op that was staged and the result bit the store
/// reported for it.
pub(crate) fn initial_presence<K, V>(effective: &TxnOp<K, V>, result: bool) -> bool {
    match effective {
        TxnOp::Put(_, _) => !result, // inserted ⇔ was absent
        TxnOp::Set(_, _) => result,  // reports "existed"
        TxnOp::Remove(_) => result,  // removed ⇔ was present
    }
}

/// Replay one key's queue-ordered op sequence against the recovered
/// initial presence, yielding each op's individual outcome bit (`true` =
/// the put inserted / the remove removed / the set replaced) in queue
/// order.
pub(crate) fn replay_outcomes<K, V>(present0: bool, seq: &[&TxnOp<K, V>]) -> Vec<bool> {
    let mut present = present0;
    seq.iter()
        .map(|op| match op {
            TxnOp::Put(_, _) => {
                let applied = !present;
                present = true;
                applied
            }
            TxnOp::Set(_, _) => {
                let existed = present;
                present = true;
                existed
            }
            TxnOp::Remove(_) => {
                let removed = present;
                present = false;
                removed
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Oracle: apply the sequence literally against an optional value and
    /// collect outcomes + final state.
    fn oracle(start: Option<u64>, seq: &[&TxnOp<u64, u64>]) -> (Vec<bool>, Option<u64>) {
        let mut state = start;
        let outcomes = seq
            .iter()
            .map(|op| match op {
                TxnOp::Put(_, v) => {
                    if state.is_none() {
                        state = Some(*v);
                        true
                    } else {
                        false
                    }
                }
                TxnOp::Set(_, v) => {
                    let existed = state.is_some();
                    state = Some(*v);
                    existed
                }
                TxnOp::Remove(_) => state.take().is_some(),
            })
            .collect();
        (outcomes, state)
    }

    /// What the staged effective op leaves behind, given the start state.
    fn apply_effective(start: Option<u64>, effective: &TxnOp<u64, u64>) -> (bool, Option<u64>) {
        match effective {
            TxnOp::Put(_, v) => match start {
                None => (true, Some(*v)),
                Some(old) => (false, Some(old)),
            },
            TxnOp::Set(_, v) => (start.is_some(), Some(*v)),
            TxnOp::Remove(_) => (start.is_some(), None),
        }
    }

    #[test]
    fn fold_matches_literal_replay_on_every_short_sequence() {
        // Exhaustively check every op sequence up to length 3 (op kinds
        // Put/Set/Remove with distinct values), against both start states.
        let kinds = |i: usize, v: u64| -> TxnOp<u64, u64> {
            match i {
                0 => TxnOp::Put(5, 100 + v),
                1 => TxnOp::Set(5, 200 + v),
                _ => TxnOp::Remove(5),
            }
        };
        for len in 1..=3usize {
            let mut idx = vec![0usize; len];
            loop {
                let ops: Vec<TxnOp<u64, u64>> = idx
                    .iter()
                    .enumerate()
                    .map(|(pos, &k)| kinds(k, pos as u64))
                    .collect();
                let seq: Vec<&TxnOp<u64, u64>> = ops.iter().collect();
                let effective = effective_op(5, &seq);
                for start in [None, Some(77u64)] {
                    let (want_outcomes, want_state) = oracle(start, &seq);
                    let (result, got_state) = apply_effective(start, &effective);
                    // The staged effective op must leave the key exactly
                    // as the literal replay would...
                    assert_eq!(
                        got_state, want_state,
                        "seq {ops:?} from {start:?}: folded final state diverged"
                    );
                    // ...and its result bit must recover the start state...
                    assert_eq!(
                        initial_presence(&effective, result),
                        start.is_some(),
                        "seq {ops:?} from {start:?}: presence recovery"
                    );
                    // ...from which the replay reproduces every outcome.
                    assert_eq!(
                        replay_outcomes(start.is_some(), &seq),
                        want_outcomes,
                        "seq {ops:?} from {start:?}: replayed outcomes"
                    );
                }
                // Next index vector.
                let mut c = 0;
                while c < len {
                    idx[c] += 1;
                    if idx[c] < 3 {
                        break;
                    }
                    idx[c] = 0;
                    c += 1;
                }
                if c == len {
                    break;
                }
            }
        }
    }
}
