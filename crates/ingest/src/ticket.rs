//! The waitable one-shot handed back by every submission.
//!
//! A [`Ticket`] is a Mutex+Condvar one-shot (no external channel crates —
//! consistent with the workspace's offline `shims/` policy): the
//! submitter parks on the condvar, the committer thread stores the
//! outcome once and wakes every waiter. Cloneable on the committer side
//! only (the resolving half keeps its own `Arc`), single-consumer on the
//! waiting side (`wait` consumes the ticket).

use std::sync::{Arc, Condvar, Mutex};

/// The shared slot between one submission's waiter and the committer
/// thread that will resolve it.
pub(crate) struct Oneshot<T> {
    slot: Mutex<Option<T>>,
    ready: Condvar,
}

impl<T> Oneshot<T> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Oneshot {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    /// Store the outcome and wake every waiter. Must be called at most
    /// once per slot (a second call would overwrite an untaken value).
    pub(crate) fn resolve(&self, value: T) {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        debug_assert!(slot.is_none(), "a ticket resolves exactly once");
        *slot = Some(value);
        self.ready.notify_all();
    }
}

/// A waitable one-shot outcome of one ingest submission (see the module
/// docs). Obtained from [`crate::Ingest::submit`] /
/// [`crate::Ingest::submit_batch`]; resolved by the committer thread when
/// the submission's group commits.
#[must_use = "an unawaited ticket silently drops its outcome"]
pub struct Ticket<T> {
    inner: Arc<Oneshot<T>>,
}

impl<T> Ticket<T> {
    pub(crate) fn new(inner: Arc<Oneshot<T>>) -> Self {
        Ticket { inner }
    }

    /// Block until the submission's group commits and return the outcome.
    pub fn wait(self) -> T {
        let mut slot = self.inner.slot.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(value) = slot.take() {
                return value;
            }
            slot = self
                .inner
                .ready
                .wait(slot)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Non-blocking poll: the outcome if the group already committed,
    /// `None` otherwise. A `Some` result **consumes** the outcome —
    /// tickets resolve exactly once, so a later [`Ticket::wait`] on the
    /// same ticket would block forever. Use it *instead of* `wait`, not
    /// before it.
    pub fn try_take(&self) -> Option<T> {
        self.inner
            .slot
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
    }
}

impl<T> std::fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_then_wait_round_trip() {
        let slot = Oneshot::new();
        let ticket = Ticket::new(Arc::clone(&slot));
        assert!(ticket.try_take().is_none());
        slot.resolve(7u32);
        assert_eq!(ticket.wait(), 7);
    }

    #[test]
    fn wait_blocks_until_resolved_from_another_thread() {
        let slot = Oneshot::new();
        let ticket = Ticket::new(Arc::clone(&slot));
        let resolver = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            slot.resolve("done");
        });
        assert_eq!(ticket.wait(), "done");
        resolver.join().unwrap();
    }
}
