//! # ingest — a group-commit ingestion front-end for the sharded store
//!
//! Every committed write on a [`store::BundledStore`] pays one shared
//! clock advance ([`bundle::RqContext::advance`]) plus a per-shard intent
//! round trip. Under update-heavy traffic — exactly where the paper shows
//! bundles are cheapest — those two shared points become the bottleneck.
//! This crate amortizes both: clients fire operations at per-shard
//! submission rings and get back a waitable [`Ticket`]; dedicated
//! **committer threads** drain the rings, coalesce compatible operations
//! from *different* sessions into one super-batch, and publish the whole
//! group through [`store::BundledStore::apply_grouped`] — the store's
//! existing intents → prepare → finalize pipeline, entered **once per
//! group**, advancing the clock **once per group**.
//!
//! ## Linearizability
//!
//! A group is an atomic cut: every operation in it publishes at one
//! commit timestamp, so any snapshot (range query, leased read,
//! transaction) observes the group entirely or not at all. *Single-op*
//! submissions on the same key land in the same per-shard ring and are
//! serialized in ring order — the committer folds them into one
//! effective staged op (see the `fold` module) and replays the ring
//! order to give each ticket its operation's individual outcome, exactly
//! as if the operations had executed back-to-back at adjacent
//! linearization points that happen to share a timestamp. Whole
//! multi-key batches ([`Ingest::submit_batch`]) ride inside a single
//! group, so they stay atomic like a
//! [`store::BundledStore::apply_txn`] batch; a batch is *routed* by its
//! first key's shard, so its other keys may serialize against same-key
//! submissions in other committers' rings through the store's shard
//! intent locks rather than through any one ring — the tickets'
//! `(ts, seq)` metadata reports the order that actually resulted.
//!
//! ## Pipelining
//!
//! Group commit batches *naturally*: while a committer publishes group
//! *N*, producers keep enqueueing; the next drain scoops everything that
//! accumulated. Producers that want throughput rather than per-op latency
//! submit a window of operations ([`Ingest::submit_all`]) and wait the
//! tickets afterwards — the `store_ingest` scenario binary sweeps that
//! window size. An optional [`IngestConfig::linger`] adds a fixed epoch
//! delay to grow groups further at the cost of latency.
//!
//! ## The submission path is lock-free
//!
//! Each shard's submission queue is a bounded lock-free MPSC ring
//! ([`ring::MpscRing`]): a producer reserves a slot with one `fetch_add`
//! and publishes with one release store — no lock, no condvar, no
//! serialization against other producers beyond the two contended cache
//! lines themselves. Blocking is layered *on top*, eventcount-style:
//! sleep counters tell publishers and drains whether anyone is parked,
//! so the uncontended hot path never touches the wake mutex.
//!
//! ## Backpressure
//!
//! [`IngestConfig::max_queue_depth`] bounds each shard's ring, counted in
//! **submissions** (a batch of *k* ops occupies one slot): when a
//! committer falls behind, blocking submitters park on the slow-path
//! waiter ([`Ingest::submit`] / [`Ingest::submit_batch`] /
//! [`Ingest::submit_all`]) only when the ring is actually full, while
//! [`Ingest::try_submit`] / [`Ingest::try_submit_batch`] shed load with
//! [`QueueFull`] (handing the rejected ops back). The default depth is
//! 1024 submissions per shard; rings are allocated eagerly, so the bound
//! must be in `1..=`[`MAX_QUEUE_DEPTH`] ([`IngestConfig::validate`]).
//!
//! ## Sessions and shutdown
//!
//! Each committer registers one store session (a dense tid), so the store
//! must be built with `max_threads >= producers + committers`.
//! [`Ingest::flush`] blocks until every accepted submission has resolved
//! and — when the store carries a commit log (`crates/wal`) — fsyncs it,
//! making `flush` the pipeline's durability barrier;
//! [`Ingest::shutdown`] (also run on drop) drains the rings, resolves
//! every outstanding ticket, fsyncs the WAL tail, and joins the
//! committers, so a clean shutdown never loses an acknowledged group.
//! Submitting concurrently with — or after — `shutdown` is a contract
//! violation and panics.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use ingest::{Ingest, IngestConfig};
//! use store::{uniform_splits, SkipListStore, TxnOp};
//!
//! let store = Arc::new(SkipListStore::<u64, u64>::new(3, uniform_splits(4, 1000)));
//! let ingest = Ingest::spawn(Arc::clone(&store), IngestConfig::default());
//!
//! // Fire-and-wait single ops...
//! let t = ingest.submit(TxnOp::Put(10, 1));
//! assert_eq!(t.wait().applied, vec![true]);
//!
//! // ...and whole atomic batches, pipelined.
//! let batch = ingest.submit_batch(vec![TxnOp::Put(500, 5), TxnOp::Set(10, 2)]);
//! let outcome = batch.wait();
//! assert_eq!(outcome.applied, vec![true, true]);
//! ingest.shutdown();
//! let h = store.register();
//! assert_eq!(h.get(&10), Some(2));
//! ```

mod fold;
pub mod ring;
mod ticket;

use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use store::{BundledStore, ShardBackend, StoreHandle, TxnOp};

pub use ticket::Ticket;

/// Hard ceiling on [`IngestConfig::max_queue_depth`]: ring slots are
/// allocated eagerly per shard, so an unbounded (or absurd) depth would
/// try to materialize it. 64Ki submissions per shard is far beyond any
/// useful backpressure point.
pub const MAX_QUEUE_DEPTH: usize = 1 << 16;

/// Front-end instrument handles, registered in the store's metrics
/// registry when the store was built with observability
/// (`BundledStore::with_obs`); absent otherwise, so the hot paths pay
/// one never-taken branch per site.
struct IngestObs {
    /// Submissions found queued per drain round (the backlog a committer
    /// actually scooped — the batching the front-end exists to create).
    queue_depth: obs::Histogram,
    /// Submitted ops per committed group.
    group_size: obs::Histogram,
    /// Group fill as a percentage of [`IngestConfig::max_group_ops`]
    /// (how close the linger/backlog gets groups to the soft cap).
    linger_occupancy_pct: obs::Histogram,
    /// Nanoseconds from a submission's enqueue to its ticket resolving.
    ticket_wait_ns: obs::Histogram,
    /// Submissions currently sitting in the shard rings (the summed ring
    /// occupancy, sampled at each drain).
    depth: obs::Gauge,
    /// The store's flight recorder (group publish / linger fill / drain
    /// scoop / queue-full events land in the same merged stream as the
    /// commit pipeline's).
    trace: Option<Arc<obs::TraceRecorder>>,
}

impl IngestObs {
    fn new(
        registry: &obs::MetricsRegistry,
        trace: Option<Arc<obs::TraceRecorder>>,
        queue_bound: usize,
    ) -> Self {
        // The configured per-shard ring bound, exported so a scraper —
        // or an `SloPolicy`'s queue-saturation check — can judge
        // `ingest.depth` against the actual limit. Set once here; the
        // gauge lives on in the registry.
        registry
            .gauge("ingest.max_queue_depth")
            .set(queue_bound as i64);
        IngestObs {
            queue_depth: registry.histogram("ingest.queue_depth"),
            group_size: registry.histogram("ingest.group_size"),
            linger_occupancy_pct: registry.histogram("ingest.linger_occupancy_pct"),
            ticket_wait_ns: registry.histogram("ingest.ticket_wait_ns"),
            depth: registry.gauge("ingest.depth"),
            trace,
        }
    }
}

/// Tuning knobs of an [`Ingest`] front-end.
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Committer threads. Shard `i` is owned by committer
    /// `i % committers`, so values above the store's shard count are
    /// **clamped to the shard count** (a committer beyond that would own
    /// no ring and idle forever). Each committer registers one store
    /// session; [`Ingest::committers`] reports the clamped count
    /// actually running.
    pub committers: usize,
    /// Soft cap on operations per super-batch: a drain stops pulling new
    /// submissions once the group holds this many ops (the submission
    /// that crosses the cap is still taken whole — batches never split).
    pub max_group_ops: usize,
    /// Extra epoch delay between waking on work and draining, letting a
    /// group grow beyond what accumulated naturally. Zero (the default)
    /// relies on commit-duration batching alone.
    pub linger: Duration,
    /// Per-shard submission-ring depth bound, counted in **submissions**
    /// — a batch of *k* ops occupies exactly one slot, the same unit the
    /// `ingest.depth` gauge and [`QueueFull`] rejections use. When a
    /// ring is full, [`Ingest::submit`] / [`Ingest::submit_batch`] /
    /// [`Ingest::submit_all`] **block** until the owning committer
    /// drains it, and [`Ingest::try_submit`] /
    /// [`Ingest::try_submit_batch`] return [`QueueFull`] instead.
    /// Must be in `1..=`[`MAX_QUEUE_DEPTH`] ([`IngestConfig::validate`]
    /// panics otherwise — nothing is silently clamped); the default is
    /// 1024. The ring rounds its slot count up to a power of two but
    /// rejects at exactly this bound.
    pub max_queue_depth: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            committers: 2,
            max_group_ops: 4096,
            linger: Duration::ZERO,
            max_queue_depth: 1024,
        }
    }
}

impl IngestConfig {
    /// Panic unless the configuration is spawnable:
    /// [`IngestConfig::max_queue_depth`] must be in
    /// `1..=`[`MAX_QUEUE_DEPTH`] (rings are allocated eagerly, so the
    /// bound is enforced here instead of silently clamped at spawn).
    /// Called by [`Ingest::spawn`]; public so configuration plumbing can
    /// fail fast at parse time.
    pub fn validate(&self) {
        assert!(
            self.max_queue_depth >= 1,
            "IngestConfig::max_queue_depth must be at least 1 submission"
        );
        assert!(
            self.max_queue_depth <= MAX_QUEUE_DEPTH,
            "IngestConfig::max_queue_depth ({}) exceeds MAX_QUEUE_DEPTH ({MAX_QUEUE_DEPTH}): \
             ring slots are allocated eagerly per shard",
            self.max_queue_depth
        );
    }
}

/// A non-blocking submission was rejected because the target shard's
/// ring is at [`IngestConfig::max_queue_depth`]; the rejected ops are
/// handed back for the caller to retry, redirect, or shed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueFull<K, V> {
    /// The ops of the rejected submission, in submission order.
    pub ops: Vec<TxnOp<K, V>>,
}

/// What a resolved [`Ticket`] carries: the submission's per-op outcomes
/// plus enough commit metadata to order it against every other
/// submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Per-op results in the submission's op order (`true` = the put
    /// inserted / the remove removed / the set replaced), with same-key
    /// interleavings from other sessions already accounted for in queue
    /// order.
    pub applied: Vec<bool>,
    /// The commit timestamp of the submission's group — the single
    /// shared-clock value every op of the group published at. Groups with
    /// smaller `ts` linearize earlier.
    pub ts: u64,
    /// The submission's position inside its group's fold order: two
    /// submissions with equal `ts` (same group) linearize in ascending
    /// `seq`.
    pub seq: u64,
    /// Total operations the group published (diagnostics: the
    /// amortization factor this submission enjoyed).
    pub group_ops: usize,
}

/// Monotonic counters of one [`Ingest`] front-end.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Groups committed.
    pub groups: u64,
    /// Submissions resolved (a batch counts once).
    pub submissions: u64,
    /// Operations resolved, as submitted (before same-key folding).
    pub ops: u64,
    /// Effective operations actually staged after same-key folding
    /// (`ops - folded_ops` operations never touched the store at all).
    pub folded_ops: u64,
    /// Largest group committed so far, in submitted ops.
    pub largest_group: u64,
}

impl IngestStats {
    /// Mean submitted ops per committed group (0 when no group committed).
    #[must_use]
    pub fn ops_per_group(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.ops as f64 / self.groups as f64
        }
    }
}

/// The ops of one submission. Single ops — the hottest submit path —
/// ride inline with no heap allocation; only whole batches carry a Vec.
enum Ops<K, V> {
    /// A single operation ([`Ingest::submit`] / [`Ingest::try_submit`] /
    /// [`Ingest::submit_all`]), stored inline.
    One(TxnOp<K, V>),
    /// A whole atomic batch ([`Ingest::submit_batch`] /
    /// [`Ingest::try_submit_batch`]).
    Many(Vec<TxnOp<K, V>>),
}

impl<K, V> Ops<K, V> {
    fn as_slice(&self) -> &[TxnOp<K, V>] {
        match self {
            Ops::One(op) => std::slice::from_ref(op),
            Ops::Many(v) => v,
        }
    }

    fn len(&self) -> usize {
        match self {
            Ops::One(_) => 1,
            Ops::Many(v) => v.len(),
        }
    }
}

/// One queued submission: the ops of one ticket.
struct Submission<K, V> {
    ops: Ops<K, V>,
    ticket: Arc<ticket::Oneshot<IngestOutcome>>,
    /// Enqueue time, recorded only under observability — the resolving
    /// committer turns it into a ticket-wait latency sample.
    enqueued: Option<Instant>,
}

struct Shared<K, V, S> {
    store: Arc<BundledStore<K, V, S>>,
    /// One lock-free submission ring per shard; an op lands in the ring
    /// of the shard owning its key, a batch in the ring of its first
    /// key's shard. Same-key submissions therefore share a ring, which
    /// is what makes "serialized by queue order" well-defined. Shard `i`
    /// is consumed only by committer `i % committers` — the ring's
    /// single-consumer contract.
    rings: Box<[ring::MpscRing<Submission<K, V>>]>,
    /// Backs the three condvars below. **Never** taken on the submit or
    /// drain fast paths — only by parked threads and the notifiers that
    /// observed (via the sleeper counters) someone parked.
    wake: Mutex<()>,
    /// Wakes committers parked with every owned ring empty.
    work: Condvar,
    /// Wakes submitters parked on a full ring.
    space: Condvar,
    /// Wakes [`Ingest::flush`] when `in_flight` reaches zero.
    idle: Condvar,
    /// Committers parked on `work` (eventcount-style: a publisher skips
    /// the wake mutex entirely while this reads zero).
    work_sleepers: AtomicUsize,
    /// Submitters parked on `space`.
    space_sleepers: AtomicUsize,
    /// Accepted-but-unresolved submissions (drives [`Ingest::flush`]).
    /// Incremented *before* a submission is published to its ring, so a
    /// committer can never resolve-and-decrement first.
    in_flight: AtomicU64,
    shutdown: AtomicBool,
    committers: usize,
    max_group_ops: usize,
    linger: Duration,
    obs: Option<IngestObs>,
    groups: AtomicU64,
    submissions: AtomicU64,
    ops: AtomicU64,
    folded_ops: AtomicU64,
    largest_group: AtomicU64,
}

impl<K, V, S> Shared<K, V, S> {
    fn assert_live(&self) {
        assert!(
            !self.shutdown.load(Ordering::SeqCst),
            "submitted to an ingest front-end that is shutting down"
        );
    }

    /// Wake parked committers after publishing work. The Dekker pattern
    /// against [`committer_wait`]: publish (release store in the ring) →
    /// SeqCst fence → sleeper-count load, vs. sleeper-count RMW → SeqCst
    /// fence → ring re-check. Whichever fence orders first, either the
    /// publisher sees the sleeper (and notifies under the wake mutex the
    /// sleeper holds until it waits) or the sleeper sees the work.
    fn wake_committers(&self) {
        fence(Ordering::SeqCst);
        if self.work_sleepers.load(Ordering::SeqCst) > 0 {
            let _g = self.wake.lock().unwrap_or_else(|p| p.into_inner());
            self.work.notify_all();
        }
    }

    /// Record a shed rejection. Producers have no store tid, so the
    /// event records under the full ring's shard id — the trace rings
    /// are multi-writer-safe.
    fn note_queue_full(&self, shard: usize, ops: usize) {
        if let Some(o) = &self.obs {
            if let Some(tr) = &o.trace {
                tr.record(shard, obs::TraceKind::QueueFull, shard as u32, ops as u64);
                tr.note_anomaly(obs::AnomalyCause::QueueFull, shard);
            }
        }
    }
}

/// The group-commit ingestion front-end (see the crate docs). Spawn one
/// per store with [`Ingest::spawn`]; share it across producer threads
/// behind an `Arc`.
pub struct Ingest<K, V, S> {
    shared: Arc<Shared<K, V, S>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl<K, V, S> Ingest<K, V, S>
where
    K: Copy + Ord + Default + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: ShardBackend<K, V> + Send + Sync + 'static,
{
    /// Spawn the committer threads over `store` and return the front-end.
    ///
    /// Validates `cfg` ([`IngestConfig::validate`]) and registers one
    /// store session per committer — the store must have that many free
    /// `max_threads` slots, or this panics (sizing the store for
    /// `producers + committers` is the caller's contract).
    pub fn spawn(store: Arc<BundledStore<K, V, S>>, cfg: IngestConfig) -> Self {
        cfg.validate();
        let committers = cfg.committers.clamp(1, store.shard_count());
        let shared = Arc::new(Shared {
            rings: (0..store.shard_count())
                .map(|_| ring::MpscRing::with_bound(cfg.max_queue_depth))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            wake: Mutex::new(()),
            work: Condvar::new(),
            space: Condvar::new(),
            idle: Condvar::new(),
            work_sleepers: AtomicUsize::new(0),
            space_sleepers: AtomicUsize::new(0),
            in_flight: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            committers,
            max_group_ops: cfg.max_group_ops.max(1),
            linger: cfg.linger,
            obs: store
                .obs_registry()
                .map(|r| IngestObs::new(r, store.obs_trace().cloned(), cfg.max_queue_depth)),
            groups: AtomicU64::new(0),
            submissions: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            folded_ops: AtomicU64::new(0),
            largest_group: AtomicU64::new(0),
            store,
        });
        let workers = (0..committers)
            .map(|c| {
                let shared = Arc::clone(&shared);
                let handle = shared.store.try_register().unwrap_or_else(|| {
                    panic!(
                        "no free store session slot for ingest committer #{c}: \
                         size the store's max_threads for producers + committers"
                    )
                });
                std::thread::Builder::new()
                    .name(format!("ingest-committer-{c}"))
                    .spawn(move || committer_loop(&shared, &handle, c))
                    .expect("spawning an ingest committer thread failed")
            })
            .collect();
        Ingest {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// The store the front-end commits into.
    #[must_use]
    pub fn store(&self) -> &Arc<BundledStore<K, V, S>> {
        &self.shared.store
    }

    /// Number of committer threads actually running.
    #[must_use]
    pub fn committers(&self) -> usize {
        self.shared.committers
    }

    /// A resolved-immediately ticket for an empty submission.
    fn empty_ticket(&self, slot: Arc<ticket::Oneshot<IngestOutcome>>) -> Ticket<IngestOutcome> {
        let ticket = Ticket::new(Arc::clone(&slot));
        slot.resolve(IngestOutcome {
            applied: Vec::new(),
            ts: self.shared.store.context().read(),
            seq: 0,
            group_ops: 0,
        });
        ticket
    }

    /// Publish an accepted submission into its reserved ring slot and
    /// return its ticket. `in_flight` is incremented *before* the slot
    /// publishes (a committer could otherwise scoop, resolve, and
    /// decrement first — u64 underflow, flush/shutdown accounting torn);
    /// rejected reservations never touch it.
    fn publish(
        &self,
        reserved: ring::PushSlot<'_, Submission<K, V>>,
        ops: Ops<K, V>,
    ) -> Ticket<IngestOutcome> {
        let slot = ticket::Oneshot::new();
        let ticket = Ticket::new(Arc::clone(&slot));
        self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
        reserved.publish(Submission {
            ops,
            ticket: slot,
            enqueued: self.shared.obs.as_ref().map(|_| Instant::now()),
        });
        self.shared.wake_committers();
        ticket
    }

    /// Reserve a slot on `shard`'s ring, parking on the backpressure
    /// slow path while the ring is full. Panics on shutdown (both before
    /// parking and on every wakeup — [`Ingest::shutdown`] wakes parked
    /// submitters so they fail fast instead of deadlocking).
    fn reserve_blocking(&self, shard: usize) -> ring::PushSlot<'_, Submission<K, V>> {
        let sh = &*self.shared;
        sh.assert_live();
        if let Some(reserved) = sh.rings[shard].try_reserve() {
            return reserved;
        }
        // Slow path: park eventcount-style. The sleeper count is
        // incremented under the wake mutex and the ring is re-checked
        // before every wait, so a drain that frees space either sees the
        // sleeper (and notifies under the same mutex) or happened early
        // enough for the re-check to see the space.
        let mut guard = sh.wake.lock().unwrap_or_else(|p| p.into_inner());
        sh.space_sleepers.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        let reserved = loop {
            if sh.shutdown.load(Ordering::SeqCst) {
                sh.space_sleepers.fetch_sub(1, Ordering::SeqCst);
                drop(guard);
                sh.assert_live(); // panics: live was just observed false
                unreachable!("assert_live panics once shutdown is set");
            }
            if let Some(reserved) = sh.rings[shard].try_reserve() {
                break reserved;
            }
            // Only already-published work frees the space being waited
            // for, so nudge the committers before sleeping.
            sh.work.notify_all();
            guard = sh.space.wait(guard).unwrap_or_else(|p| p.into_inner());
        };
        sh.space_sleepers.fetch_sub(1, Ordering::SeqCst);
        drop(guard);
        reserved
    }

    /// Submit one operation; its ticket resolves with a single outcome
    /// bit when the operation's group commits. **Blocks** while the
    /// target shard's ring is at [`IngestConfig::max_queue_depth`]. The
    /// hot path allocates nothing beyond the ticket — the op rides
    /// inline in its ring slot.
    pub fn submit(&self, op: TxnOp<K, V>) -> Ticket<IngestOutcome> {
        let shard = self.shared.store.shard_of(op.key());
        let reserved = self.reserve_blocking(shard);
        self.publish(reserved, Ops::One(op))
    }

    /// Non-blocking [`Ingest::submit`]: [`QueueFull`] (carrying the op
    /// back) instead of blocking when the target shard's ring is at
    /// capacity. The accept path is lock-free and allocates only the
    /// ticket; the shed path costs one relaxed load.
    pub fn try_submit(&self, op: TxnOp<K, V>) -> Result<Ticket<IngestOutcome>, QueueFull<K, V>> {
        self.shared.assert_live();
        let shard = self.shared.store.shard_of(op.key());
        match self.shared.rings[shard].try_reserve() {
            Some(reserved) => Ok(self.publish(reserved, Ops::One(op))),
            None => {
                self.shared.note_queue_full(shard, 1);
                Err(QueueFull { ops: vec![op] })
            }
        }
    }

    /// Submit a whole multi-key batch as one atomic unit: every op
    /// publishes at the batch's group timestamp, so no snapshot ever
    /// observes part of it (same guarantee as
    /// [`store::BundledStore::apply_txn`], amortized across the group).
    /// Duplicate keys inside the batch are legal and serialize in batch
    /// order. An empty batch resolves immediately. The batch occupies
    /// **one** ring slot regardless of its op count; **blocks** while
    /// its target ring (its first key's shard) is at
    /// [`IngestConfig::max_queue_depth`].
    pub fn submit_batch(&self, ops: Vec<TxnOp<K, V>>) -> Ticket<IngestOutcome> {
        if ops.is_empty() {
            return self.empty_ticket(ticket::Oneshot::new());
        }
        let shard = self.shared.store.shard_of(ops[0].key());
        let reserved = self.reserve_blocking(shard);
        self.publish(reserved, Ops::Many(ops))
    }

    /// Non-blocking [`Ingest::submit_batch`]: [`QueueFull`] (carrying the
    /// ops back for the caller to retry, redirect, or shed) instead of
    /// blocking when the batch's target ring is at capacity.
    pub fn try_submit_batch(
        &self,
        ops: Vec<TxnOp<K, V>>,
    ) -> Result<Ticket<IngestOutcome>, QueueFull<K, V>> {
        if ops.is_empty() {
            return Ok(self.empty_ticket(ticket::Oneshot::new()));
        }
        self.shared.assert_live();
        let shard = self.shared.store.shard_of(ops[0].key());
        match self.shared.rings[shard].try_reserve() {
            Some(reserved) => Ok(self.publish(reserved, Ops::Many(ops))),
            None => {
                self.shared.note_queue_full(shard, ops.len());
                Err(QueueFull { ops })
            }
        }
    }

    /// Submit many *independent* operations (one ticket each): the
    /// pipelined-producer fast path — push a window, then wait the
    /// tickets. Each op takes the same lock-free lane as
    /// [`Ingest::submit`], so with a bounded ring this may **block
    /// mid-window** (already-published ops stay published and keep
    /// committing, which is what frees the space being waited for).
    pub fn submit_all(
        &self,
        ops: impl IntoIterator<Item = TxnOp<K, V>>,
    ) -> Vec<Ticket<IngestOutcome>> {
        ops.into_iter().map(|op| self.submit(op)).collect()
    }

    /// Block until every submission accepted so far has resolved, then
    /// force the store's commit log — if one is attached — to stable
    /// storage. `flush` is therefore the **durability barrier**: when it
    /// returns, every accepted operation is resolved *and* its group is
    /// on disk, regardless of the log's sync policy (under
    /// `SyncPolicy::Always` each ticket already implied durability when
    /// it resolved; under the batching policies this is where the
    /// volatile tail gets paid down). Without a commit log the sync is
    /// a no-op and `flush` only waits for resolution, as before.
    pub fn flush(&self) {
        if self.shared.in_flight.load(Ordering::SeqCst) > 0 {
            let mut guard = self.shared.wake.lock().unwrap_or_else(|p| p.into_inner());
            // The committer that decrements to zero takes the wake mutex
            // before notifying, so a non-zero read under the mutex cannot
            // miss its notification.
            while self.shared.in_flight.load(Ordering::SeqCst) > 0 {
                guard = self
                    .shared
                    .idle
                    .wait(guard)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }
        self.shared.store.sync_commit_log();
    }

    /// Drain every ring, resolve every outstanding ticket, and join the
    /// committer threads. Idempotent; also runs on drop. All submissions
    /// must happen-before this call (a racing submit panics, including
    /// submitters parked on a full ring — they are woken to fail fast).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _g = self.shared.wake.lock().unwrap_or_else(|p| p.into_inner());
            self.shared.work.notify_all();
            self.shared.space.notify_all();
        }
        let workers = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|p| p.into_inner()));
        for w in workers {
            w.join().expect("an ingest committer thread panicked");
        }
    }
}

// Deliberately unbounded: counters and drop need no backend machinery.
impl<K, V, S> Ingest<K, V, S> {
    /// Monotonic front-end counters.
    #[must_use]
    pub fn stats(&self) -> IngestStats {
        IngestStats {
            groups: self.shared.groups.load(Ordering::Relaxed),
            submissions: self.shared.submissions.load(Ordering::Relaxed),
            ops: self.shared.ops.load(Ordering::Relaxed),
            folded_ops: self.shared.folded_ops.load(Ordering::Relaxed),
            largest_group: self.shared.largest_group.load(Ordering::Relaxed),
        }
    }
}

impl<K, V, S> Drop for Ingest<K, V, S> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _g = self.shared.wake.lock().unwrap_or_else(|p| p.into_inner());
            self.shared.work.notify_all();
            self.shared.space.notify_all();
        }
        let workers = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|p| p.into_inner()));
        for w in workers {
            let _ = w.join();
        }
    }
}

impl<K, V, S> std::fmt::Debug for Ingest<K, V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ingest")
            .field("committers", &self.shared.committers)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Park until one of this committer's rings has published work or
/// shutdown is flagged; returns the shutdown flag. The fast path (work
/// already visible) never touches the wake mutex — see
/// [`Shared::wake_committers`] for the pairing.
fn committer_wait<K, V, S>(shared: &Shared<K, V, S>, owned: &[usize]) -> bool {
    let ready = || owned.iter().any(|&s| shared.rings[s].has_ready());
    if shared.shutdown.load(Ordering::SeqCst) || ready() {
        return shared.shutdown.load(Ordering::SeqCst);
    }
    let mut guard = shared.wake.lock().unwrap_or_else(|p| p.into_inner());
    shared.work_sleepers.fetch_add(1, Ordering::SeqCst);
    fence(Ordering::SeqCst);
    while !shared.shutdown.load(Ordering::SeqCst) && !ready() {
        guard = shared.work.wait(guard).unwrap_or_else(|p| p.into_inner());
    }
    shared.work_sleepers.fetch_sub(1, Ordering::SeqCst);
    drop(guard);
    shared.shutdown.load(Ordering::SeqCst)
}

/// Scoop queued submissions from the committer's owned shard rings, up
/// to the soft op cap (the submission crossing the cap is taken whole).
/// The scan starts at `owned[start]` and wraps: callers rotate `start`
/// per round so that a sustained over-cap backlog on one shard cannot
/// starve the committer's other rings. Each ring's published run is
/// contiguous, so `pop`-until-`None` takes exactly the backlog.
fn drain<K, V, S>(
    shared: &Shared<K, V, S>,
    owned: &[usize],
    start: usize,
) -> Vec<Submission<K, V>> {
    let mut subs = Vec::new();
    let mut ops = 0usize;
    for i in 0..owned.len() {
        let shard = owned[(start + i) % owned.len()];
        let ring = &shared.rings[shard];
        while ops < shared.max_group_ops {
            // SAFETY: shard `s` is drained only by committer
            // `s % committers` (`owned` is exactly that partition), so
            // this thread is the ring's single consumer.
            match unsafe { ring.pop() } {
                Some(sub) => {
                    ops += sub.ops.len();
                    subs.push(sub);
                }
                None => break,
            }
        }
        if ops >= shared.max_group_ops {
            break;
        }
    }
    subs
}

/// Commit one group: fold same-key submissions in queue order into one
/// effective op per key, publish the super-batch under a single clock
/// advance, then replay the queue order to resolve every ticket with its
/// operation's individual outcome (see the `fold` module docs for why
/// the fold is outcome-exact).
fn commit_group<K, V, S>(
    shared: &Shared<K, V, S>,
    handle: &StoreHandle<K, V, S>,
    subs: &[Submission<K, V>],
) where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
    S: ShardBackend<K, V>,
{
    // Queue-order positions of every op, sorted by (key, queue position)
    // — a flat sort instead of a per-key map keeps the fold linear-ish
    // and allocation-free per op, which matters: the fold runs once per
    // op on the committer, the serial heart of the front-end.
    let mut positions: Vec<(K, u32, u32)> = Vec::new();
    for (si, sub) in subs.iter().enumerate() {
        for (oi, op) in sub.ops.as_slice().iter().enumerate() {
            positions.push((*op.key(), si as u32, oi as u32));
        }
    }
    positions.sort_unstable();
    let total_ops = positions.len();
    // One effective op per key; `runs[i]` is the positions range that
    // folded into `effective[i]`. Distinct keys (the common case under
    // uniform traffic) skip the fold entirely.
    let op_at =
        |si: u32, oi: u32| -> &TxnOp<K, V> { &subs[si as usize].ops.as_slice()[oi as usize] };
    let mut effective: Vec<TxnOp<K, V>> = Vec::with_capacity(total_ops);
    let mut runs: Vec<(usize, usize)> = Vec::with_capacity(total_ops);
    let mut i = 0;
    while i < total_ops {
        let mut j = i + 1;
        while j < total_ops && positions[j].0 == positions[i].0 {
            j += 1;
        }
        runs.push((i, j));
        if j - i == 1 {
            effective.push(op_at(positions[i].1, positions[i].2).clone());
        } else {
            let seq: Vec<&TxnOp<K, V>> = positions[i..j]
                .iter()
                .map(|&(_, si, oi)| op_at(si, oi))
                .collect();
            effective.push(fold::effective_op(positions[i].0, &seq));
        }
        i = j;
    }
    let receipt = handle.apply_grouped(&effective);
    // Replay each key's queue order against its recovered initial
    // presence, scattering outcome bits back to the submissions. A
    // singleton run's outcome is the staged op's own result bit.
    let mut outcomes: Vec<Vec<bool>> = subs.iter().map(|s| vec![false; s.ops.len()]).collect();
    for (key_idx, &(start, end)) in runs.iter().enumerate() {
        if end - start == 1 {
            let (_, si, oi) = positions[start];
            outcomes[si as usize][oi as usize] = receipt.applied[key_idx];
            continue;
        }
        let seq: Vec<&TxnOp<K, V>> = positions[start..end]
            .iter()
            .map(|&(_, si, oi)| op_at(si, oi))
            .collect();
        let present0 = fold::initial_presence(&effective[key_idx], receipt.applied[key_idx]);
        for (&(_, si, oi), bit) in positions[start..end]
            .iter()
            .zip(fold::replay_outcomes(present0, &seq))
        {
            outcomes[si as usize][oi as usize] = bit;
        }
    }
    // Account the group BEFORE resolving any ticket: a producer that
    // observes its outcome may immediately read [`Ingest::stats`], and
    // resolution-implies-counted is the ordering that makes those reads
    // meaningful (the reverse order let a stats read run ahead of the
    // group that just resolved it).
    shared.groups.fetch_add(1, Ordering::Relaxed);
    shared
        .submissions
        .fetch_add(subs.len() as u64, Ordering::Relaxed);
    shared.ops.fetch_add(total_ops as u64, Ordering::Relaxed);
    shared
        .folded_ops
        .fetch_add(effective.len() as u64, Ordering::Relaxed);
    shared
        .largest_group
        .fetch_max(total_ops as u64, Ordering::Relaxed);
    if let Some(o) = &shared.obs {
        let tid = handle.tid();
        let occupancy = (100 * total_ops / shared.max_group_ops) as u64;
        o.group_size.record(tid, total_ops as u64);
        o.linger_occupancy_pct.record(tid, occupancy);
        if let Some(tr) = &o.trace {
            // A group may span every shard this committer owns, so the
            // events carry no single shard.
            tr.record(
                tid,
                obs::TraceKind::GroupPublish,
                obs::trace::NO_SHARD,
                total_ops as u64,
            );
            tr.record(
                tid,
                obs::TraceKind::LingerFill,
                obs::trace::NO_SHARD,
                occupancy,
            );
        }
    }
    for (si, (sub, applied)) in subs.iter().zip(outcomes).enumerate() {
        if let (Some(o), Some(t0)) = (&shared.obs, sub.enqueued) {
            o.ticket_wait_ns
                .record(handle.tid(), t0.elapsed().as_nanos() as u64);
        }
        sub.ticket.resolve(IngestOutcome {
            applied,
            ts: receipt.ts,
            seq: si as u64,
            group_ops: total_ops,
        });
    }
}

fn committer_loop<K, V, S>(shared: &Shared<K, V, S>, handle: &StoreHandle<K, V, S>, c: usize)
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
    S: ShardBackend<K, V>,
{
    let owned: Vec<usize> = (c..shared.store.shard_count())
        .step_by(shared.committers)
        .collect();
    // Rotating drain origin: fairness across this committer's shards
    // when one ring alone can fill a whole group.
    let mut rotate = 0usize;
    loop {
        let shutdown = committer_wait(shared, &owned);
        if !shared.linger.is_zero() && !shutdown {
            // Optional epoch: let the group grow before draining.
            std::thread::sleep(shared.linger);
        }
        // Drain until the owned rings are empty: while a group commits,
        // producers refill the rings — natural group-commit batching.
        loop {
            let subs = drain(shared, &owned, rotate);
            rotate = (rotate + 1) % owned.len().max(1);
            if subs.is_empty() {
                break;
            }
            // The pops above released the submissions' ring slots
            // *before* the commit: backpressure bounds what sits in the
            // rings, and producers refilling during the commit is
            // exactly the batching this front-end exists for. Same
            // Dekker pairing as `wake_committers`, against the parked
            // submitters in `reserve_blocking`.
            fence(Ordering::SeqCst);
            if shared.space_sleepers.load(Ordering::SeqCst) > 0 {
                let _g = shared.wake.lock().unwrap_or_else(|p| p.into_inner());
                shared.space.notify_all();
            }
            if let Some(o) = &shared.obs {
                o.queue_depth.record(handle.tid(), subs.len() as u64);
                let occupancy: usize = shared.rings.iter().map(ring::MpscRing::occupancy).sum();
                o.depth.set(occupancy as i64);
                if let Some(tr) = &o.trace {
                    tr.record(
                        handle.tid(),
                        obs::TraceKind::DrainScoop,
                        obs::trace::NO_SHARD,
                        subs.len() as u64,
                    );
                }
            }
            commit_group(shared, handle, &subs);
            let resolved = subs.len() as u64;
            if shared.in_flight.fetch_sub(resolved, Ordering::SeqCst) == resolved {
                // This decrement hit zero: flush may be parked. Take the
                // wake mutex so a flusher that read non-zero is already
                // inside its condvar wait.
                let _g = shared.wake.lock().unwrap_or_else(|p| p.into_inner());
                shared.idle.notify_all();
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Rings verified empty by the drain above, and the shutdown
            // contract forbids concurrent submits: nothing can arrive.
            // Fsync the WAL tail (no-op without a log) so a clean
            // shutdown never loses an acknowledged group, whatever the
            // sync policy.
            shared.store.sync_commit_log();
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bundle::api::ConcurrentSet;
    use store::{uniform_splits, CitrusStore, LazyListStore, SkipListStore};

    #[test]
    fn single_ops_commit_and_report_outcomes() {
        let store = Arc::new(SkipListStore::<u64, u64>::new(4, uniform_splits(4, 400)));
        let ingest = Ingest::spawn(Arc::clone(&store), IngestConfig::default());
        assert_eq!(ingest.submit(TxnOp::Put(10, 1)).wait().applied, vec![true]);
        assert_eq!(ingest.submit(TxnOp::Put(10, 2)).wait().applied, vec![false]);
        assert_eq!(ingest.submit(TxnOp::Set(10, 3)).wait().applied, vec![true]);
        assert_eq!(ingest.submit(TxnOp::Remove(10)).wait().applied, vec![true]);
        assert_eq!(ingest.submit(TxnOp::Remove(10)).wait().applied, vec![false]);
        ingest.shutdown();
        assert!(!store.contains(0, &10));
        let stats = store.txn_stats();
        assert_eq!(stats.grouped_ops, 5);
        assert!(stats.group_commits >= 1);
    }

    #[test]
    fn batches_are_atomic_and_cross_shard() {
        let store = Arc::new(CitrusStore::<u64, u64>::new(4, uniform_splits(4, 400)));
        let ingest = Ingest::spawn(Arc::clone(&store), IngestConfig::default());
        let t = ingest.submit_batch(vec![
            TxnOp::Put(10, 1),
            TxnOp::Put(150, 2),
            TxnOp::Put(350, 3),
        ]);
        let outcome = t.wait();
        assert_eq!(outcome.applied, vec![true, true, true]);
        assert!(outcome.group_ops >= 3);
        // Empty batches resolve immediately without a committer round.
        let empty = ingest.submit_batch(Vec::new()).wait();
        assert!(empty.applied.is_empty());
        ingest.shutdown();
        let h = store.register();
        assert_eq!(
            h.range_query_vec(&0, &400),
            vec![(10, 1), (150, 2), (350, 3)]
        );
    }

    #[test]
    fn same_key_submissions_serialize_in_queue_order() {
        // One committer and a pre-seeded ring make the group composition
        // deterministic: all four same-key ops fold into one group.
        let store = Arc::new(LazyListStore::<u64, u64>::new(3, uniform_splits(2, 100)));
        store.insert(0, 10, 0);
        let ingest = Ingest::spawn(
            Arc::clone(&store),
            IngestConfig {
                committers: 1,
                linger: Duration::from_millis(20),
                ..IngestConfig::default()
            },
        );
        let tickets = [
            ingest.submit(TxnOp::Remove(10)), // removes the seed
            ingest.submit(TxnOp::Put(10, 1)), // re-inserts
            ingest.submit(TxnOp::Put(10, 2)), // loses to the previous put
            ingest.submit(TxnOp::Set(10, 3)), // replaces
        ];
        let outcomes: Vec<IngestOutcome> = tickets.into_iter().map(Ticket::wait).collect();
        // Queue-order outcomes hold however the committer grouped them.
        assert_eq!(outcomes[0].applied, vec![true]);
        assert_eq!(outcomes[1].applied, vec![true]);
        assert_eq!(outcomes[2].applied, vec![false]);
        assert_eq!(outcomes[3].applied, vec![true]);
        // Commit metadata linearizes them in queue order: (ts, seq)
        // strictly ascending.
        assert!(
            outcomes
                .windows(2)
                .all(|w| (w[0].ts, w[0].seq) < (w[1].ts, w[1].seq)),
            "queue order lost: {outcomes:?}"
        );
        ingest.shutdown();
        assert_eq!(store.get(0, &10), Some(3));
        let stats = store.txn_stats();
        // The linger window almost always coalesces all four ops into one
        // group, folding them into a single staged op — but a slow-CI
        // deschedule between submits can legally split them. What must
        // hold: the fold never stages more ops than were submitted, and
        // if everything landed in one group it folded to exactly one op.
        assert!(stats.grouped_ops <= 4);
        if stats.group_commits == 1 {
            assert_eq!(stats.grouped_ops, 1, "one group folds to one staged op");
        }
    }

    #[test]
    fn groups_amortize_clock_advances_under_load() {
        let store = Arc::new(SkipListStore::<u64, u64>::new(6, uniform_splits(4, 10_000)));
        let ingest = Arc::new(Ingest::spawn(Arc::clone(&store), IngestConfig::default()));
        let before = store.context().advance_calls();
        const PRODUCERS: usize = 4;
        const WINDOWS: usize = 20;
        const WINDOW: usize = 32;
        let producers: Vec<_> = (0..PRODUCERS as u64)
            .map(|p| {
                let ingest = Arc::clone(&ingest);
                std::thread::spawn(move || {
                    let mut applied = 0u64;
                    for w in 0..WINDOWS as u64 {
                        let ops = (0..WINDOW as u64)
                            .map(|i| TxnOp::Put(p * 2_500 + w * WINDOW as u64 + i, i));
                        for t in ingest.submit_all(ops) {
                            applied += t.wait().applied.iter().filter(|b| **b).count() as u64;
                        }
                    }
                    applied
                })
            })
            .collect();
        let total: u64 = producers.into_iter().map(|p| p.join().unwrap()).sum();
        assert_eq!(total, (PRODUCERS * WINDOWS * WINDOW) as u64);
        let stats = ingest.stats();
        assert_eq!(stats.ops, total);
        assert_eq!(stats.submissions, total);
        let advances = store.context().advance_calls() - before;
        assert_eq!(advances, stats.groups, "one clock advance per group");
        assert!(
            advances < total,
            "groups must amortize the clock: {advances} advances for {total} ops"
        );
        ingest.shutdown();
        let h = store.register();
        assert_eq!(h.len(), total as usize);
    }

    #[test]
    fn flush_waits_for_everything_accepted() {
        let store = Arc::new(SkipListStore::<u64, u64>::new(3, uniform_splits(2, 1_000)));
        let ingest = Ingest::spawn(Arc::clone(&store), IngestConfig::default());
        let tickets = ingest.submit_all((0..200u64).map(|k| TxnOp::Put(k, k)));
        ingest.flush();
        for t in &tickets {
            assert!(
                t.try_take().is_some(),
                "flush returned with an unresolved ticket"
            );
        }
        ingest.shutdown();
        assert_eq!(store.register().len(), 200);
    }

    #[test]
    fn drop_shuts_down_and_drains() {
        let store = Arc::new(SkipListStore::<u64, u64>::new(3, uniform_splits(2, 1_000)));
        let tickets = {
            let ingest = Ingest::spawn(Arc::clone(&store), IngestConfig::default());
            ingest.submit_all((0..50u64).map(|k| TxnOp::Put(k, k)))
            // dropped here: must drain, resolve, and join
        };
        for t in tickets {
            assert_eq!(t.wait().applied, vec![true]);
        }
        assert_eq!(store.register().len(), 50);
    }

    #[test]
    fn committers_beyond_shards_are_clamped_and_all_drain() {
        // Regression guard for the committer/shard mapping: a committer
        // beyond the shard count would own no ring and sleep forever on
        // its wake counter, so `spawn` must clamp — and every shard's
        // ring must still be owned by a live committer.
        let store = Arc::new(SkipListStore::<u64, u64>::new(4, uniform_splits(2, 100)));
        let ingest = Ingest::spawn(
            Arc::clone(&store),
            IngestConfig {
                committers: 8, // > 2 shards
                ..IngestConfig::default()
            },
        );
        assert_eq!(ingest.committers(), 2, "clamped to the shard count");
        // Ops landing on both shards commit (no orphaned ring).
        let t0 = ingest.submit(TxnOp::Put(10, 1));
        let t1 = ingest.submit(TxnOp::Put(60, 6));
        assert_eq!(t0.wait().applied, vec![true]);
        assert_eq!(t1.wait().applied, vec![true]);
        ingest.shutdown();
        assert_eq!(store.register().len(), 2);
    }

    #[test]
    fn try_submit_sheds_load_when_the_queue_is_full() {
        // One committer held back by a long linger: the ring fills to
        // its 1-submission cap, so a second non-blocking submission must
        // bounce with its ops handed back.
        let store = Arc::new(LazyListStore::<u64, u64>::new(3, uniform_splits(2, 100)));
        let ingest = Ingest::spawn(
            Arc::clone(&store),
            IngestConfig {
                committers: 1,
                linger: Duration::from_millis(300),
                max_queue_depth: 1,
                ..IngestConfig::default()
            },
        );
        let t = ingest.submit(TxnOp::Put(10, 1));
        // Same shard, ring at capacity, committer still lingering.
        match ingest.try_submit(TxnOp::Put(11, 2)) {
            Err(QueueFull { ops }) => {
                assert_eq!(ops, vec![TxnOp::Put(11, 2)], "rejected ops come back")
            }
            Ok(ticket) => {
                // A pathological scheduler stall can let the committer
                // drain first; the submission must then simply succeed.
                assert_eq!(ticket.wait().applied, vec![true]);
            }
        }
        assert_eq!(t.wait().applied, vec![true]);
        ingest.flush();
        // Space freed: the non-blocking path accepts again.
        let t2 = ingest
            .try_submit(TxnOp::Put(12, 3))
            .expect("drained queue accepts");
        assert_eq!(t2.wait().applied, vec![true]);
        ingest.shutdown();
    }

    #[test]
    fn blocking_submit_waits_for_space_and_loses_nothing() {
        // A tiny ring bound with a producer fleet pushing far more than
        // fits: every blocking submission must eventually land, and every
        // ticket must resolve (no drops, no deadlock, no lost wakeups).
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: u64 = 200;
        let store = Arc::new(SkipListStore::<u64, u64>::new(4, uniform_splits(4, 10_000)));
        let ingest = Arc::new(Ingest::spawn(
            Arc::clone(&store),
            IngestConfig {
                committers: 2,
                max_queue_depth: 2,
                ..IngestConfig::default()
            },
        ));
        let producers: Vec<_> = (0..PRODUCERS as u64)
            .map(|p| {
                let ingest = Arc::clone(&ingest);
                std::thread::spawn(move || {
                    let mut applied = 0u64;
                    let mut pending = Vec::new();
                    for i in 0..PER_PRODUCER {
                        pending.push(ingest.submit(TxnOp::Put(p * 2_500 + i, i)));
                        if pending.len() >= 8 {
                            for t in pending.drain(..) {
                                applied += u64::from(t.wait().applied[0]);
                            }
                        }
                    }
                    for t in pending {
                        applied += u64::from(t.wait().applied[0]);
                    }
                    applied
                })
            })
            .collect();
        let total: u64 = producers.into_iter().map(|p| p.join().unwrap()).sum();
        assert_eq!(total, PRODUCERS as u64 * PER_PRODUCER);
        ingest.shutdown();
        assert_eq!(store.register().len(), total as usize);
    }

    #[test]
    #[should_panic(expected = "shutting down")]
    fn submit_after_shutdown_panics() {
        let store = Arc::new(SkipListStore::<u64, u64>::new(3, uniform_splits(2, 100)));
        let ingest = Ingest::spawn(Arc::clone(&store), IngestConfig::default());
        ingest.shutdown();
        let _ = ingest.submit(TxnOp::Put(1, 1));
    }

    #[test]
    fn shutdown_wakes_a_submitter_parked_on_a_full_ring() {
        // A producer parked on the backpressure slow path (depth-1 ring,
        // committer lingering) must be woken by shutdown and fail fast
        // with the shutdown panic — not deadlock against the join.
        let store = Arc::new(SkipListStore::<u64, u64>::new(4, uniform_splits(1, 100)));
        let ingest = Arc::new(Ingest::spawn(
            Arc::clone(&store),
            IngestConfig {
                committers: 1,
                max_queue_depth: 1,
                linger: Duration::from_millis(400),
                ..IngestConfig::default()
            },
        ));
        let t = ingest.submit(TxnOp::Put(1, 1)); // fills the ring
        let parked = {
            let ingest = Arc::clone(&ingest);
            std::thread::spawn(move || {
                // Blocks: the ring is full until the linger expires, and
                // shutdown arrives first.
                let _ = ingest.submit(TxnOp::Put(2, 2));
            })
        };
        std::thread::sleep(Duration::from_millis(100));
        ingest.shutdown();
        assert!(
            parked.join().is_err(),
            "the parked submitter must wake and panic on shutdown"
        );
        assert_eq!(t.wait().applied, vec![true], "the accepted op resolved");
    }

    #[test]
    fn queue_depth_counts_submissions_not_ops() {
        // Depth 2, committer lingering: two 4-op batches must both be
        // accepted (8 ops, 2 submissions). If the bound counted ops, the
        // second batch would bounce — and a committer drain racing in
        // can only free space, never cause a spurious rejection.
        let store = Arc::new(SkipListStore::<u64, u64>::new(3, uniform_splits(1, 100)));
        let ingest = Ingest::spawn(
            Arc::clone(&store),
            IngestConfig {
                committers: 1,
                max_queue_depth: 2,
                linger: Duration::from_millis(100),
                ..IngestConfig::default()
            },
        );
        let mk = |base: u64| (0..4).map(|i| TxnOp::Put(base + i, i)).collect::<Vec<_>>();
        let t0 = ingest
            .try_submit_batch(mk(0))
            .expect("first batch occupies one slot");
        let t1 = ingest
            .try_submit_batch(mk(10))
            .expect("second batch occupies the second slot: the unit is submissions");
        assert_eq!(t0.wait().applied, vec![true; 4]);
        assert_eq!(t1.wait().applied, vec![true; 4]);
        ingest.shutdown();
        assert_eq!(store.register().len(), 8);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_queue_depth_is_rejected_at_spawn() {
        let store = Arc::new(SkipListStore::<u64, u64>::new(3, uniform_splits(2, 100)));
        let _ = Ingest::spawn(
            store,
            IngestConfig {
                max_queue_depth: 0,
                ..IngestConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_QUEUE_DEPTH")]
    fn oversized_queue_depth_is_rejected_at_spawn() {
        let store = Arc::new(SkipListStore::<u64, u64>::new(3, uniform_splits(2, 100)));
        let _ = Ingest::spawn(
            store,
            IngestConfig {
                max_queue_depth: MAX_QUEUE_DEPTH + 1,
                ..IngestConfig::default()
            },
        );
    }

    #[test]
    fn obs_instruments_the_front_end() {
        let reg = obs::MetricsRegistry::new();
        let store = Arc::new(SkipListStore::<u64, u64>::with_obs(
            4,
            store::ReclaimMode::Reclaim,
            uniform_splits(4, 400),
            &reg,
        ));
        let ingest = Ingest::spawn(Arc::clone(&store), IngestConfig::default());
        let tickets = ingest.submit_all((0..40u64).map(|k| TxnOp::Put(k * 10, k)));
        for t in tickets {
            let _ = t.wait();
        }
        ingest.flush();
        ingest.shutdown();
        let snap = store.obs_snapshot(0).expect("instrumented store");
        for name in [
            "ingest.queue_depth",
            "ingest.group_size",
            "ingest.linger_occupancy_pct",
            "ingest.ticket_wait_ns",
        ] {
            match snap.get(name) {
                Some(obs::SnapshotValue::Histogram(h)) => {
                    assert!(h.count >= 1, "{name} never recorded")
                }
                other => panic!("{name} missing or wrong kind: {other:?}"),
            }
        }
        // Group sizes account for every submitted op.
        match snap.get("ingest.group_size") {
            Some(obs::SnapshotValue::Histogram(h)) => assert_eq!(h.sum, 40),
            _ => unreachable!(),
        }
        // All submissions drained: the live-depth gauge (summed ring
        // occupancy at the last drain) reads zero.
        assert_eq!(
            snap.get("ingest.depth"),
            Some(&obs::SnapshotValue::Gauge(0))
        );
    }

    #[test]
    fn uninstrumented_store_spawns_uninstrumented_ingest() {
        let store = Arc::new(SkipListStore::<u64, u64>::new(3, uniform_splits(2, 100)));
        let ingest = Ingest::spawn(Arc::clone(&store), IngestConfig::default());
        assert!(ingest.shared.obs.is_none());
        assert_eq!(ingest.submit(TxnOp::Put(1, 1)).wait().applied, vec![true]);
        ingest.shutdown();
    }

    #[test]
    fn ring_path_outcomes_replay_against_an_oracle() {
        // The ticket-outcome oracle through the lock-free path: a seeded
        // multi-producer mixed workload over a small hot key range,
        // submitted via `try_submit` with handback-retry against a tiny
        // ring. Sorting every outcome by its commit metadata `(ts, seq)`
        // must yield a serial history a naive map replays exactly —
        // per-op outcome bits and final store contents both. (Same-key
        // ops share a shard, hence a ring, hence a committer, so the
        // per-key projection of the `(ts, seq)` order is exactly the
        // order the folds resolved them in.)
        use std::collections::BTreeMap;
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 300;
        const KEYS: u64 = 64;
        let store = Arc::new(SkipListStore::<u64, u64>::new(3, uniform_splits(4, KEYS)));
        let ingest = Arc::new(Ingest::spawn(
            Arc::clone(&store),
            IngestConfig {
                committers: 2,
                max_queue_depth: 4,
                ..IngestConfig::default()
            },
        ));
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let ingest = Arc::clone(&ingest);
                std::thread::spawn(move || {
                    let mut rng = p.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1; // seeded
                    let mut pending = Vec::new();
                    for i in 0..PER_PRODUCER {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        let k = rng % KEYS;
                        let op = match rng % 3 {
                            0 => TxnOp::Put(k, p * PER_PRODUCER + i),
                            1 => TxnOp::Set(k, p),
                            _ => TxnOp::Remove(k),
                        };
                        let ticket = loop {
                            match ingest.try_submit(op.clone()) {
                                Ok(t) => break t,
                                Err(QueueFull { ops }) => {
                                    // Handback exactness: the very op
                                    // that bounced comes back; retry it.
                                    assert_eq!(ops, vec![op.clone()]);
                                    std::thread::yield_now();
                                }
                            }
                        };
                        pending.push((op, ticket));
                    }
                    pending
                        .into_iter()
                        .map(|(op, t)| (op, t.wait()))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut history: Vec<(u64, u64, TxnOp<u64, u64>, bool)> = Vec::new();
        for h in producers {
            for (op, outcome) in h.join().unwrap() {
                assert_eq!(outcome.applied.len(), 1);
                history.push((outcome.ts, outcome.seq, op, outcome.applied[0]));
            }
        }
        ingest.shutdown();
        assert_eq!(history.len(), (PRODUCERS * PER_PRODUCER) as usize);
        history.sort_by_key(|e| (e.0, e.1));
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (ts, seq, op, applied) in &history {
            let expect = match op {
                TxnOp::Put(k, v) => {
                    if model.contains_key(k) {
                        false
                    } else {
                        model.insert(*k, *v);
                        true
                    }
                }
                TxnOp::Set(k, v) => model.insert(*k, *v).is_some(),
                TxnOp::Remove(k) => model.remove(k).is_some(),
            };
            assert_eq!(
                *applied, expect,
                "op {op:?} at ({ts}, {seq}) diverged from the serial oracle"
            );
        }
        // And the store's final contents are the model's.
        let h = store.register();
        assert_eq!(
            h.range_query_vec(&0, &KEYS),
            model.into_iter().collect::<Vec<_>>(),
            "final store contents diverged from the serial oracle"
        );
    }
}
