//! # ingest — a group-commit ingestion front-end for the sharded store
//!
//! Every committed write on a [`store::BundledStore`] pays one shared
//! clock advance ([`bundle::RqContext::advance`]) plus a per-shard intent
//! round trip. Under update-heavy traffic — exactly where the paper shows
//! bundles are cheapest — those two shared points become the bottleneck.
//! This crate amortizes both: clients fire operations at per-shard
//! submission queues and get back a waitable [`Ticket`]; dedicated
//! **committer threads** drain the queues, coalesce compatible operations
//! from *different* sessions into one super-batch, and publish the whole
//! group through [`store::BundledStore::apply_grouped`] — the store's
//! existing intents → prepare → finalize pipeline, entered **once per
//! group**, advancing the clock **once per group**.
//!
//! ## Linearizability
//!
//! A group is an atomic cut: every operation in it publishes at one
//! commit timestamp, so any snapshot (range query, leased read,
//! transaction) observes the group entirely or not at all. *Single-op*
//! submissions on the same key land in the same per-shard queue and are
//! serialized in queue order — the committer folds them into one
//! effective staged op (see the `fold` module) and replays the queue
//! order to give each ticket its operation's individual outcome, exactly
//! as if the operations had executed back-to-back at adjacent
//! linearization points that happen to share a timestamp. Whole
//! multi-key batches ([`Ingest::submit_batch`]) ride inside a single
//! group, so they stay atomic like a
//! [`store::BundledStore::apply_txn`] batch; a batch is *routed* by its
//! first key's shard, so its other keys may serialize against same-key
//! submissions in other committers' queues through the store's shard
//! intent locks rather than through any one queue — the tickets'
//! `(ts, seq)` metadata reports the order that actually resulted.
//!
//! ## Pipelining
//!
//! Group commit batches *naturally*: while a committer publishes group
//! *N*, producers keep enqueueing; the next drain scoops everything that
//! accumulated. Producers that want throughput rather than per-op latency
//! submit a window of operations ([`Ingest::submit_all`]) and wait the
//! tickets afterwards — the `store_ingest` scenario binary sweeps that
//! window size. An optional [`IngestConfig::linger`] adds a fixed epoch
//! delay to grow groups further at the cost of latency.
//!
//! ## Backpressure
//!
//! [`IngestConfig::max_queue_depth`] bounds each shard's submission
//! queue: when a committer falls behind, blocking submitters wait for a
//! drain ([`Ingest::submit`] / [`Ingest::submit_batch`] /
//! [`Ingest::submit_all`]) while [`Ingest::try_submit`] /
//! [`Ingest::try_submit_batch`] shed load with [`QueueFull`] (handing
//! the rejected ops back). The default is unbounded, matching the
//! pre-backpressure behaviour.
//!
//! ## Sessions and shutdown
//!
//! Each committer registers one store session (a dense tid), so the store
//! must be built with `max_threads >= producers + committers`.
//! [`Ingest::flush`] blocks until every accepted submission has resolved;
//! [`Ingest::shutdown`] (also run on drop) drains the queues, resolves
//! every outstanding ticket, and joins the committers. Submitting
//! concurrently with — or after — `shutdown` is a contract violation and
//! panics.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use ingest::{Ingest, IngestConfig};
//! use store::{uniform_splits, SkipListStore, TxnOp};
//!
//! let store = Arc::new(SkipListStore::<u64, u64>::new(3, uniform_splits(4, 1000)));
//! let ingest = Ingest::spawn(Arc::clone(&store), IngestConfig::default());
//!
//! // Fire-and-wait single ops...
//! let t = ingest.submit(TxnOp::Put(10, 1));
//! assert_eq!(t.wait().applied, vec![true]);
//!
//! // ...and whole atomic batches, pipelined.
//! let batch = ingest.submit_batch(vec![TxnOp::Put(500, 5), TxnOp::Set(10, 2)]);
//! let outcome = batch.wait();
//! assert_eq!(outcome.applied, vec![true, true]);
//! ingest.shutdown();
//! let h = store.register();
//! assert_eq!(h.get(&10), Some(2));
//! ```

mod fold;
mod ticket;

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use store::{BundledStore, ShardBackend, StoreHandle, TxnOp};

pub use ticket::Ticket;

/// Front-end instrument handles, registered in the store's metrics
/// registry when the store was built with observability
/// (`BundledStore::with_obs`); absent otherwise, so the hot paths pay
/// one never-taken branch per site.
struct IngestObs {
    /// Submissions found queued per drain round (the backlog a committer
    /// actually scooped — the batching the front-end exists to create).
    queue_depth: obs::Histogram,
    /// Submitted ops per committed group.
    group_size: obs::Histogram,
    /// Group fill as a percentage of [`IngestConfig::max_group_ops`]
    /// (how close the linger/backlog gets groups to the soft cap).
    linger_occupancy_pct: obs::Histogram,
    /// Nanoseconds from a submission's enqueue to its ticket resolving.
    ticket_wait_ns: obs::Histogram,
    /// Submissions currently sitting in the shard queues.
    depth: obs::Gauge,
    /// The store's flight recorder (group publish / linger fill / drain
    /// scoop / queue-full events land in the same merged stream as the
    /// commit pipeline's).
    trace: Option<Arc<obs::TraceRecorder>>,
}

impl IngestObs {
    fn new(registry: &obs::MetricsRegistry, trace: Option<Arc<obs::TraceRecorder>>) -> Self {
        IngestObs {
            queue_depth: registry.histogram("ingest.queue_depth"),
            group_size: registry.histogram("ingest.group_size"),
            linger_occupancy_pct: registry.histogram("ingest.linger_occupancy_pct"),
            ticket_wait_ns: registry.histogram("ingest.ticket_wait_ns"),
            depth: registry.gauge("ingest.depth"),
            trace,
        }
    }
}

/// Tuning knobs of an [`Ingest`] front-end.
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Committer threads. Shard `i` is owned by committer
    /// `i % committers`, so values above the store's shard count are
    /// **clamped to the shard count** (a committer beyond that would own
    /// no queue and idle forever). Each committer registers one store
    /// session; [`Ingest::committers`] reports the clamped count
    /// actually running.
    pub committers: usize,
    /// Soft cap on operations per super-batch: a drain stops pulling new
    /// submissions once the group holds this many ops (the submission
    /// that crosses the cap is still taken whole — batches never split).
    pub max_group_ops: usize,
    /// Extra epoch delay between waking on work and draining, letting a
    /// group grow beyond what accumulated naturally. Zero (the default)
    /// relies on commit-duration batching alone.
    pub linger: Duration,
    /// Per-shard submission-queue depth bound, in *submissions* (a batch
    /// counts once). When a queue is full, [`Ingest::submit`] /
    /// [`Ingest::submit_batch`] / [`Ingest::submit_all`] **block** until
    /// the owning committer drains it, and [`Ingest::try_submit`] /
    /// [`Ingest::try_submit_batch`] return [`QueueFull`] instead — the
    /// first slice of ingest backpressure: a producer fleet can no
    /// longer grow the queues without bound while a committer falls
    /// behind. The default (`usize::MAX`) is effectively unbounded;
    /// values are clamped to at least 1.
    pub max_queue_depth: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            committers: 2,
            max_group_ops: 4096,
            linger: Duration::ZERO,
            max_queue_depth: usize::MAX,
        }
    }
}

/// A non-blocking submission was rejected because the target shard's
/// queue is at [`IngestConfig::max_queue_depth`]; the rejected ops are
/// handed back for the caller to retry, redirect, or shed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueFull<K, V> {
    /// The ops of the rejected submission, in submission order.
    pub ops: Vec<TxnOp<K, V>>,
}

/// What a resolved [`Ticket`] carries: the submission's per-op outcomes
/// plus enough commit metadata to order it against every other
/// submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Per-op results in the submission's op order (`true` = the put
    /// inserted / the remove removed / the set replaced), with same-key
    /// interleavings from other sessions already accounted for in queue
    /// order.
    pub applied: Vec<bool>,
    /// The commit timestamp of the submission's group — the single
    /// shared-clock value every op of the group published at. Groups with
    /// smaller `ts` linearize earlier.
    pub ts: u64,
    /// The submission's position inside its group's fold order: two
    /// submissions with equal `ts` (same group) linearize in ascending
    /// `seq`.
    pub seq: u64,
    /// Total operations the group published (diagnostics: the
    /// amortization factor this submission enjoyed).
    pub group_ops: usize,
}

/// Monotonic counters of one [`Ingest`] front-end.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Groups committed.
    pub groups: u64,
    /// Submissions resolved (a batch counts once).
    pub submissions: u64,
    /// Operations resolved, as submitted (before same-key folding).
    pub ops: u64,
    /// Effective operations actually staged after same-key folding
    /// (`ops - folded_ops` operations never touched the store at all).
    pub folded_ops: u64,
    /// Largest group committed so far, in submitted ops.
    pub largest_group: u64,
}

impl IngestStats {
    /// Mean submitted ops per committed group (0 when no group committed).
    #[must_use]
    pub fn ops_per_group(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.ops as f64 / self.groups as f64
        }
    }
}

/// One queued submission: the ops of one ticket.
struct Submission<K, V> {
    ops: Vec<TxnOp<K, V>>,
    ticket: Arc<ticket::Oneshot<IngestOutcome>>,
    /// The shard queue this submission occupies (depth accounting).
    shard: usize,
    /// Enqueue time, recorded only under observability — the resolving
    /// committer turns it into a ticket-wait latency sample.
    enqueued: Option<Instant>,
}

/// One shard's submission queue.
type ShardQueue<K, V> = Mutex<VecDeque<Submission<K, V>>>;

/// Committer wake/flush bookkeeping (one mutex for all counters; every
/// critical section is a few integer ops).
struct SyncState {
    /// Per-committer count of submissions enqueued since its last drain
    /// (advisory wake signal; the queues themselves are the truth).
    queued: Box<[u64]>,
    /// Per-shard count of submissions currently sitting in the queue
    /// (bounded by [`IngestConfig::max_queue_depth`]; decremented when
    /// the committer pops, at which point the `space` condvar wakes
    /// blocked submitters).
    depth: Box<[usize]>,
    /// Accepted-but-unresolved submissions (drives [`Ingest::flush`]).
    in_flight: u64,
    shutdown: bool,
}

struct Shared<K, V, S> {
    store: Arc<BundledStore<K, V, S>>,
    /// One submission queue per shard; an op lands in the queue of the
    /// shard owning its key, a batch in the queue of its first key's
    /// shard. Same-key submissions therefore share a queue, which is what
    /// makes "serialized by queue order" well-defined.
    queues: Box<[ShardQueue<K, V>]>,
    sync: Mutex<SyncState>,
    work: Condvar,
    idle: Condvar,
    /// Wakes submitters blocked on a full shard queue (paired with the
    /// `sync` mutex; depth decrements happen under it, so a waiter that
    /// observed a full queue under the lock cannot miss the wakeup).
    space: Condvar,
    committers: usize,
    max_group_ops: usize,
    max_queue_depth: usize,
    linger: Duration,
    obs: Option<IngestObs>,
    groups: AtomicU64,
    submissions: AtomicU64,
    ops: AtomicU64,
    folded_ops: AtomicU64,
    largest_group: AtomicU64,
}

impl<K, V, S> Shared<K, V, S> {
    fn committer_of(&self, shard: usize) -> usize {
        shard % self.committers
    }
}

/// The group-commit ingestion front-end (see the crate docs). Spawn one
/// per store with [`Ingest::spawn`]; share it across producer threads
/// behind an `Arc`.
pub struct Ingest<K, V, S> {
    shared: Arc<Shared<K, V, S>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl<K, V, S> Ingest<K, V, S>
where
    K: Copy + Ord + Default + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: ShardBackend<K, V> + Send + Sync + 'static,
{
    /// Spawn the committer threads over `store` and return the front-end.
    ///
    /// Registers one store session per committer — the store must have
    /// that many free `max_threads` slots, or this panics (sizing the
    /// store for `producers + committers` is the caller's contract).
    pub fn spawn(store: Arc<BundledStore<K, V, S>>, cfg: IngestConfig) -> Self {
        let committers = cfg.committers.clamp(1, store.shard_count());
        let shared = Arc::new(Shared {
            queues: (0..store.shard_count())
                .map(|_| Mutex::new(VecDeque::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            sync: Mutex::new(SyncState {
                queued: vec![0; committers].into_boxed_slice(),
                depth: vec![0; store.shard_count()].into_boxed_slice(),
                in_flight: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            space: Condvar::new(),
            committers,
            max_group_ops: cfg.max_group_ops.max(1),
            max_queue_depth: cfg.max_queue_depth.max(1),
            linger: cfg.linger,
            obs: store
                .obs_registry()
                .map(|r| IngestObs::new(r, store.obs_trace().cloned())),
            groups: AtomicU64::new(0),
            submissions: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            folded_ops: AtomicU64::new(0),
            largest_group: AtomicU64::new(0),
            store,
        });
        let workers = (0..committers)
            .map(|c| {
                let shared = Arc::clone(&shared);
                let handle = shared.store.try_register().unwrap_or_else(|| {
                    panic!(
                        "no free store session slot for ingest committer #{c}: \
                         size the store's max_threads for producers + committers"
                    )
                });
                std::thread::Builder::new()
                    .name(format!("ingest-committer-{c}"))
                    .spawn(move || committer_loop(&shared, &handle, c))
                    .expect("spawning an ingest committer thread failed")
            })
            .collect();
        Ingest {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// The store the front-end commits into.
    #[must_use]
    pub fn store(&self) -> &Arc<BundledStore<K, V, S>> {
        &self.shared.store
    }

    /// Number of committer threads actually running.
    #[must_use]
    pub fn committers(&self) -> usize {
        self.shared.committers
    }

    /// A resolved-immediately ticket for an empty submission.
    fn empty_ticket(&self, slot: Arc<ticket::Oneshot<IngestOutcome>>) -> Ticket<IngestOutcome> {
        let ticket = Ticket::new(Arc::clone(&slot));
        slot.resolve(IngestOutcome {
            applied: Vec::new(),
            ts: self.shared.store.context().read(),
            seq: 0,
            group_ops: 0,
        });
        ticket
    }

    /// Enqueue `ops` on `shard`'s queue under an already-held sync lock
    /// (depth/queued/in_flight accounting and the enqueue are one atomic
    /// step: `in_flight` must be incremented before the submission
    /// becomes drainable, or a committer could commit it and decrement
    /// first — u64 underflow, flush/shutdown accounting torn). Lock
    /// order is sync -> queue everywhere; committers take the queue
    /// locks without holding sync.
    fn enqueue_locked(
        &self,
        st: &mut SyncState,
        shard: usize,
        ops: Vec<TxnOp<K, V>>,
        slot: Arc<ticket::Oneshot<IngestOutcome>>,
    ) {
        st.depth[shard] += 1;
        st.queued[self.shared.committer_of(shard)] += 1;
        st.in_flight += 1;
        self.shared.queues[shard]
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push_back(Submission {
                ops,
                ticket: slot,
                shard,
                enqueued: self.shared.obs.as_ref().map(|_| Instant::now()),
            });
    }

    /// Submit one operation; its ticket resolves with a single outcome
    /// bit when the operation's group commits. **Blocks** while the
    /// target shard's queue is at [`IngestConfig::max_queue_depth`].
    pub fn submit(&self, op: TxnOp<K, V>) -> Ticket<IngestOutcome> {
        self.submit_batch(vec![op])
    }

    /// Non-blocking [`Ingest::submit`]: [`QueueFull`] (carrying the op
    /// back) instead of blocking when the target shard's queue is at
    /// capacity.
    pub fn try_submit(&self, op: TxnOp<K, V>) -> Result<Ticket<IngestOutcome>, QueueFull<K, V>> {
        self.try_submit_batch(vec![op])
    }

    /// Submit a whole multi-key batch as one atomic unit: every op
    /// publishes at the batch's group timestamp, so no snapshot ever
    /// observes part of it (same guarantee as
    /// [`store::BundledStore::apply_txn`], amortized across the group).
    /// Duplicate keys inside the batch are legal and serialize in batch
    /// order. An empty batch resolves immediately. **Blocks** while the
    /// batch's target queue (its first key's shard) is at
    /// [`IngestConfig::max_queue_depth`].
    pub fn submit_batch(&self, ops: Vec<TxnOp<K, V>>) -> Ticket<IngestOutcome> {
        let slot = ticket::Oneshot::new();
        if ops.is_empty() {
            return self.empty_ticket(slot);
        }
        let ticket = Ticket::new(Arc::clone(&slot));
        let shard = self.shared.store.shard_of(ops[0].key());
        {
            let mut st = self.shared.sync.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                assert!(
                    !st.shutdown,
                    "submitted to an ingest front-end that is shutting down"
                );
                if st.depth[shard] < self.shared.max_queue_depth {
                    break;
                }
                // Backpressure: wait for the owning committer to drain.
                st = self
                    .shared
                    .space
                    .wait(st)
                    .unwrap_or_else(|p| p.into_inner());
            }
            self.enqueue_locked(&mut st, shard, ops, slot);
        }
        self.shared.work.notify_all();
        ticket
    }

    /// Non-blocking [`Ingest::submit_batch`]: [`QueueFull`] (carrying the
    /// ops back for the caller to retry, redirect, or shed) instead of
    /// blocking when the batch's target queue is at capacity.
    pub fn try_submit_batch(
        &self,
        ops: Vec<TxnOp<K, V>>,
    ) -> Result<Ticket<IngestOutcome>, QueueFull<K, V>> {
        if ops.is_empty() {
            return Ok(self.empty_ticket(ticket::Oneshot::new()));
        }
        let shard = self.shared.store.shard_of(ops[0].key());
        let ticket = {
            let mut st = self.shared.sync.lock().unwrap_or_else(|p| p.into_inner());
            assert!(
                !st.shutdown,
                "submitted to an ingest front-end that is shutting down"
            );
            if st.depth[shard] >= self.shared.max_queue_depth {
                // Shed: note the rejection in the flight recorder *after*
                // releasing the sync lock (the anomaly snapshot walks
                // every ring). Producers have no store tid, so the event
                // records under the full queue's shard id — the rings
                // are multi-writer-safe.
                drop(st);
                if let Some(o) = &self.shared.obs {
                    if let Some(tr) = &o.trace {
                        tr.record(
                            shard,
                            obs::TraceKind::QueueFull,
                            shard as u32,
                            ops.len() as u64,
                        );
                        tr.note_anomaly(obs::AnomalyCause::QueueFull, shard);
                    }
                }
                return Err(QueueFull { ops });
            }
            // Allocate the ticket only once accepted: the shed path runs
            // hottest exactly when producers spin-retry against a full
            // queue, and it should cost nothing but the depth check.
            let slot = ticket::Oneshot::new();
            let ticket = Ticket::new(Arc::clone(&slot));
            self.enqueue_locked(&mut st, shard, ops, slot);
            ticket
        };
        self.shared.work.notify_all();
        Ok(ticket)
    }

    /// Submit many *independent* operations (one ticket each) with a
    /// single bookkeeping round: the pipelined-producer fast path — push
    /// a window, then wait the tickets. With a bounded queue this may
    /// **block mid-window** (already-enqueued ops stay enqueued and keep
    /// committing, which is what frees the space being waited for).
    pub fn submit_all(
        &self,
        ops: impl IntoIterator<Item = TxnOp<K, V>>,
    ) -> Vec<Ticket<IngestOutcome>> {
        let mut tickets = Vec::new();
        {
            // Same ordering discipline as `submit_batch`: accounting and
            // enqueueing are one atomic step under the sync lock.
            let mut st = self.shared.sync.lock().unwrap_or_else(|p| p.into_inner());
            for op in ops {
                let shard = self.shared.store.shard_of(op.key());
                loop {
                    assert!(
                        !st.shutdown,
                        "submitted to an ingest front-end that is shutting down"
                    );
                    if st.depth[shard] < self.shared.max_queue_depth {
                        break;
                    }
                    // The committers only see already-enqueued work while
                    // we wait, so nudge them before sleeping.
                    self.shared.work.notify_all();
                    st = self
                        .shared
                        .space
                        .wait(st)
                        .unwrap_or_else(|p| p.into_inner());
                }
                let slot = ticket::Oneshot::new();
                tickets.push(Ticket::new(Arc::clone(&slot)));
                self.enqueue_locked(&mut st, shard, vec![op], slot);
            }
        }
        if !tickets.is_empty() {
            self.shared.work.notify_all();
        }
        tickets
    }

    /// Block until every submission accepted so far has resolved.
    pub fn flush(&self) {
        let mut st = self.shared.sync.lock().unwrap_or_else(|p| p.into_inner());
        while st.in_flight > 0 {
            st = self.shared.idle.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Drain every queue, resolve every outstanding ticket, and join the
    /// committer threads. Idempotent; also runs on drop. All submissions
    /// must happen-before this call (a racing submit panics).
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.sync.lock().unwrap_or_else(|p| p.into_inner());
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        // Submitters blocked on a full queue wake up and panic (the
        // shutdown contract forbids concurrent submissions).
        self.shared.space.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|p| p.into_inner()));
        for w in workers {
            w.join().expect("an ingest committer thread panicked");
        }
    }
}

// Deliberately unbounded: counters and drop need no backend machinery.
impl<K, V, S> Ingest<K, V, S> {
    /// Monotonic front-end counters.
    #[must_use]
    pub fn stats(&self) -> IngestStats {
        IngestStats {
            groups: self.shared.groups.load(Ordering::Relaxed),
            submissions: self.shared.submissions.load(Ordering::Relaxed),
            ops: self.shared.ops.load(Ordering::Relaxed),
            folded_ops: self.shared.folded_ops.load(Ordering::Relaxed),
            largest_group: self.shared.largest_group.load(Ordering::Relaxed),
        }
    }
}

impl<K, V, S> Drop for Ingest<K, V, S> {
    fn drop(&mut self) {
        {
            let mut st = self.shared.sync.lock().unwrap_or_else(|p| p.into_inner());
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|p| p.into_inner()));
        for w in workers {
            let _ = w.join();
        }
    }
}

impl<K, V, S> std::fmt::Debug for Ingest<K, V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ingest")
            .field("committers", &self.shared.committers)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Pull queued submissions from the committer's owned shards, up to the
/// soft op cap (the submission crossing the cap is taken whole). The
/// scan starts at `owned[start]` and wraps: callers rotate `start` per
/// round so that a sustained over-cap backlog on one shard cannot
/// starve the committer's other queues.
fn drain<K, V, S>(
    shared: &Shared<K, V, S>,
    owned: &[usize],
    start: usize,
) -> Vec<Submission<K, V>> {
    let mut subs = Vec::new();
    let mut ops = 0usize;
    for i in 0..owned.len() {
        let shard = owned[(start + i) % owned.len()];
        let mut q = shared.queues[shard]
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        while ops < shared.max_group_ops {
            match q.pop_front() {
                Some(sub) => {
                    ops += sub.ops.len();
                    subs.push(sub);
                }
                None => break,
            }
        }
        if ops >= shared.max_group_ops {
            break;
        }
    }
    subs
}

/// Commit one group: fold same-key submissions in queue order into one
/// effective op per key, publish the super-batch under a single clock
/// advance, then replay the queue order to resolve every ticket with its
/// operation's individual outcome (see the `fold` module docs for why
/// the fold is outcome-exact).
fn commit_group<K, V, S>(
    shared: &Shared<K, V, S>,
    handle: &StoreHandle<K, V, S>,
    subs: &[Submission<K, V>],
) where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
    S: ShardBackend<K, V>,
{
    // Queue-order positions of every op, sorted by (key, queue position)
    // — a flat sort instead of a per-key map keeps the fold linear-ish
    // and allocation-free per op, which matters: the fold runs once per
    // op on the committer, the serial heart of the front-end.
    let mut positions: Vec<(K, u32, u32)> = Vec::new();
    for (si, sub) in subs.iter().enumerate() {
        for (oi, op) in sub.ops.iter().enumerate() {
            positions.push((*op.key(), si as u32, oi as u32));
        }
    }
    positions.sort_unstable();
    let total_ops = positions.len();
    // One effective op per key; `runs[i]` is the positions range that
    // folded into `effective[i]`. Distinct keys (the common case under
    // uniform traffic) skip the fold entirely.
    let op_at = |si: u32, oi: u32| -> &TxnOp<K, V> { &subs[si as usize].ops[oi as usize] };
    let mut effective: Vec<TxnOp<K, V>> = Vec::with_capacity(total_ops);
    let mut runs: Vec<(usize, usize)> = Vec::with_capacity(total_ops);
    let mut i = 0;
    while i < total_ops {
        let mut j = i + 1;
        while j < total_ops && positions[j].0 == positions[i].0 {
            j += 1;
        }
        runs.push((i, j));
        if j - i == 1 {
            effective.push(op_at(positions[i].1, positions[i].2).clone());
        } else {
            let seq: Vec<&TxnOp<K, V>> = positions[i..j]
                .iter()
                .map(|&(_, si, oi)| op_at(si, oi))
                .collect();
            effective.push(fold::effective_op(positions[i].0, &seq));
        }
        i = j;
    }
    let receipt = handle.apply_grouped(&effective);
    // Replay each key's queue order against its recovered initial
    // presence, scattering outcome bits back to the submissions. A
    // singleton run's outcome is the staged op's own result bit.
    let mut outcomes: Vec<Vec<bool>> = subs.iter().map(|s| vec![false; s.ops.len()]).collect();
    for (key_idx, &(start, end)) in runs.iter().enumerate() {
        if end - start == 1 {
            let (_, si, oi) = positions[start];
            outcomes[si as usize][oi as usize] = receipt.applied[key_idx];
            continue;
        }
        let seq: Vec<&TxnOp<K, V>> = positions[start..end]
            .iter()
            .map(|&(_, si, oi)| op_at(si, oi))
            .collect();
        let present0 = fold::initial_presence(&effective[key_idx], receipt.applied[key_idx]);
        for (&(_, si, oi), bit) in positions[start..end]
            .iter()
            .zip(fold::replay_outcomes(present0, &seq))
        {
            outcomes[si as usize][oi as usize] = bit;
        }
    }
    // Account the group BEFORE resolving any ticket: a producer that
    // observes its outcome may immediately read [`Ingest::stats`], and
    // resolution-implies-counted is the ordering that makes those reads
    // meaningful (the reverse order let a stats read run ahead of the
    // group that just resolved it).
    shared.groups.fetch_add(1, Ordering::Relaxed);
    shared
        .submissions
        .fetch_add(subs.len() as u64, Ordering::Relaxed);
    shared.ops.fetch_add(total_ops as u64, Ordering::Relaxed);
    shared
        .folded_ops
        .fetch_add(effective.len() as u64, Ordering::Relaxed);
    shared
        .largest_group
        .fetch_max(total_ops as u64, Ordering::Relaxed);
    if let Some(o) = &shared.obs {
        let tid = handle.tid();
        let occupancy = (100 * total_ops / shared.max_group_ops) as u64;
        o.group_size.record(tid, total_ops as u64);
        o.linger_occupancy_pct.record(tid, occupancy);
        if let Some(tr) = &o.trace {
            // A group may span every shard this committer owns, so the
            // events carry no single shard.
            tr.record(
                tid,
                obs::TraceKind::GroupPublish,
                obs::trace::NO_SHARD,
                total_ops as u64,
            );
            tr.record(
                tid,
                obs::TraceKind::LingerFill,
                obs::trace::NO_SHARD,
                occupancy,
            );
        }
    }
    for (si, (sub, applied)) in subs.iter().zip(outcomes).enumerate() {
        if let (Some(o), Some(t0)) = (&shared.obs, sub.enqueued) {
            o.ticket_wait_ns
                .record(handle.tid(), t0.elapsed().as_nanos() as u64);
        }
        sub.ticket.resolve(IngestOutcome {
            applied,
            ts: receipt.ts,
            seq: si as u64,
            group_ops: total_ops,
        });
    }
}

fn committer_loop<K, V, S>(shared: &Shared<K, V, S>, handle: &StoreHandle<K, V, S>, c: usize)
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
    S: ShardBackend<K, V>,
{
    let owned: Vec<usize> = (c..shared.store.shard_count())
        .step_by(shared.committers)
        .collect();
    // Rotating drain origin: fairness across this committer's shards
    // when one queue alone can fill a whole group.
    let mut rotate = 0usize;
    loop {
        let shutdown = {
            let mut st = shared.sync.lock().unwrap_or_else(|p| p.into_inner());
            while st.queued[c] == 0 && !st.shutdown {
                st = shared.work.wait(st).unwrap_or_else(|p| p.into_inner());
            }
            st.queued[c] = 0;
            st.shutdown
        };
        if !shared.linger.is_zero() && !shutdown {
            // Optional epoch: let the group grow before draining.
            std::thread::sleep(shared.linger);
            shared.sync.lock().unwrap_or_else(|p| p.into_inner()).queued[c] = 0;
        }
        // Drain until the owned queues are empty: while a group commits,
        // producers refill the queues — natural group-commit batching.
        loop {
            let subs = drain(shared, &owned, rotate);
            rotate = (rotate + 1) % owned.len().max(1);
            if subs.is_empty() {
                break;
            }
            // Release the popped submissions' queue slots *before* the
            // commit: backpressure bounds what sits in the queues, and
            // producers refilling during the commit is exactly the
            // batching this front-end exists for.
            {
                let mut st = shared.sync.lock().unwrap_or_else(|p| p.into_inner());
                for sub in &subs {
                    st.depth[sub.shard] -= 1;
                }
                if let Some(o) = &shared.obs {
                    o.queue_depth.record(handle.tid(), subs.len() as u64);
                    o.depth.set(st.depth.iter().sum::<usize>() as i64);
                    if let Some(tr) = &o.trace {
                        tr.record(
                            handle.tid(),
                            obs::TraceKind::DrainScoop,
                            obs::trace::NO_SHARD,
                            subs.len() as u64,
                        );
                    }
                }
            }
            if shared.max_queue_depth != usize::MAX {
                shared.space.notify_all();
            }
            commit_group(shared, handle, &subs);
            let resolved = subs.len() as u64;
            let mut st = shared.sync.lock().unwrap_or_else(|p| p.into_inner());
            st.in_flight -= resolved;
            if st.in_flight == 0 {
                shared.idle.notify_all();
            }
        }
        if shutdown {
            // Queues verified empty by the drain above, and the shutdown
            // contract forbids concurrent submits: nothing can arrive.
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bundle::api::ConcurrentSet;
    use store::{uniform_splits, CitrusStore, LazyListStore, SkipListStore};

    #[test]
    fn single_ops_commit_and_report_outcomes() {
        let store = Arc::new(SkipListStore::<u64, u64>::new(4, uniform_splits(4, 400)));
        let ingest = Ingest::spawn(Arc::clone(&store), IngestConfig::default());
        assert_eq!(ingest.submit(TxnOp::Put(10, 1)).wait().applied, vec![true]);
        assert_eq!(ingest.submit(TxnOp::Put(10, 2)).wait().applied, vec![false]);
        assert_eq!(ingest.submit(TxnOp::Set(10, 3)).wait().applied, vec![true]);
        assert_eq!(ingest.submit(TxnOp::Remove(10)).wait().applied, vec![true]);
        assert_eq!(ingest.submit(TxnOp::Remove(10)).wait().applied, vec![false]);
        ingest.shutdown();
        assert!(!store.contains(0, &10));
        let stats = store.txn_stats();
        assert_eq!(stats.grouped_ops, 5);
        assert!(stats.group_commits >= 1);
    }

    #[test]
    fn batches_are_atomic_and_cross_shard() {
        let store = Arc::new(CitrusStore::<u64, u64>::new(4, uniform_splits(4, 400)));
        let ingest = Ingest::spawn(Arc::clone(&store), IngestConfig::default());
        let t = ingest.submit_batch(vec![
            TxnOp::Put(10, 1),
            TxnOp::Put(150, 2),
            TxnOp::Put(350, 3),
        ]);
        let outcome = t.wait();
        assert_eq!(outcome.applied, vec![true, true, true]);
        assert!(outcome.group_ops >= 3);
        // Empty batches resolve immediately without a committer round.
        let empty = ingest.submit_batch(Vec::new()).wait();
        assert!(empty.applied.is_empty());
        ingest.shutdown();
        let h = store.register();
        assert_eq!(
            h.range_query_vec(&0, &400),
            vec![(10, 1), (150, 2), (350, 3)]
        );
    }

    #[test]
    fn same_key_submissions_serialize_in_queue_order() {
        // One committer and a pre-seeded queue make the group composition
        // deterministic: all four same-key ops fold into one group.
        let store = Arc::new(LazyListStore::<u64, u64>::new(3, uniform_splits(2, 100)));
        store.insert(0, 10, 0);
        let ingest = Ingest::spawn(
            Arc::clone(&store),
            IngestConfig {
                committers: 1,
                linger: Duration::from_millis(20),
                ..IngestConfig::default()
            },
        );
        let tickets = [
            ingest.submit(TxnOp::Remove(10)), // removes the seed
            ingest.submit(TxnOp::Put(10, 1)), // re-inserts
            ingest.submit(TxnOp::Put(10, 2)), // loses to the previous put
            ingest.submit(TxnOp::Set(10, 3)), // replaces
        ];
        let outcomes: Vec<IngestOutcome> = tickets.into_iter().map(Ticket::wait).collect();
        // Queue-order outcomes hold however the committer grouped them.
        assert_eq!(outcomes[0].applied, vec![true]);
        assert_eq!(outcomes[1].applied, vec![true]);
        assert_eq!(outcomes[2].applied, vec![false]);
        assert_eq!(outcomes[3].applied, vec![true]);
        // Commit metadata linearizes them in queue order: (ts, seq)
        // strictly ascending.
        assert!(
            outcomes
                .windows(2)
                .all(|w| (w[0].ts, w[0].seq) < (w[1].ts, w[1].seq)),
            "queue order lost: {outcomes:?}"
        );
        ingest.shutdown();
        assert_eq!(store.get(0, &10), Some(3));
        let stats = store.txn_stats();
        // The linger window almost always coalesces all four ops into one
        // group, folding them into a single staged op — but a slow-CI
        // deschedule between submits can legally split them. What must
        // hold: the fold never stages more ops than were submitted, and
        // if everything landed in one group it folded to exactly one op.
        assert!(stats.grouped_ops <= 4);
        if stats.group_commits == 1 {
            assert_eq!(stats.grouped_ops, 1, "one group folds to one staged op");
        }
    }

    #[test]
    fn groups_amortize_clock_advances_under_load() {
        let store = Arc::new(SkipListStore::<u64, u64>::new(6, uniform_splits(4, 10_000)));
        let ingest = Arc::new(Ingest::spawn(Arc::clone(&store), IngestConfig::default()));
        let before = store.context().advance_calls();
        const PRODUCERS: usize = 4;
        const WINDOWS: usize = 20;
        const WINDOW: usize = 32;
        let producers: Vec<_> = (0..PRODUCERS as u64)
            .map(|p| {
                let ingest = Arc::clone(&ingest);
                std::thread::spawn(move || {
                    let mut applied = 0u64;
                    for w in 0..WINDOWS as u64 {
                        let ops = (0..WINDOW as u64)
                            .map(|i| TxnOp::Put(p * 2_500 + w * WINDOW as u64 + i, i));
                        for t in ingest.submit_all(ops) {
                            applied += t.wait().applied.iter().filter(|b| **b).count() as u64;
                        }
                    }
                    applied
                })
            })
            .collect();
        let total: u64 = producers.into_iter().map(|p| p.join().unwrap()).sum();
        assert_eq!(total, (PRODUCERS * WINDOWS * WINDOW) as u64);
        let stats = ingest.stats();
        assert_eq!(stats.ops, total);
        assert_eq!(stats.submissions, total);
        let advances = store.context().advance_calls() - before;
        assert_eq!(advances, stats.groups, "one clock advance per group");
        assert!(
            advances < total,
            "groups must amortize the clock: {advances} advances for {total} ops"
        );
        ingest.shutdown();
        let h = store.register();
        assert_eq!(h.len(), total as usize);
    }

    #[test]
    fn flush_waits_for_everything_accepted() {
        let store = Arc::new(SkipListStore::<u64, u64>::new(3, uniform_splits(2, 1_000)));
        let ingest = Ingest::spawn(Arc::clone(&store), IngestConfig::default());
        let tickets = ingest.submit_all((0..200u64).map(|k| TxnOp::Put(k, k)));
        ingest.flush();
        for t in &tickets {
            assert!(
                t.try_take().is_some(),
                "flush returned with an unresolved ticket"
            );
        }
        ingest.shutdown();
        assert_eq!(store.register().len(), 200);
    }

    #[test]
    fn drop_shuts_down_and_drains() {
        let store = Arc::new(SkipListStore::<u64, u64>::new(3, uniform_splits(2, 1_000)));
        let tickets = {
            let ingest = Ingest::spawn(Arc::clone(&store), IngestConfig::default());
            ingest.submit_all((0..50u64).map(|k| TxnOp::Put(k, k)))
            // dropped here: must drain, resolve, and join
        };
        for t in tickets {
            assert_eq!(t.wait().applied, vec![true]);
        }
        assert_eq!(store.register().len(), 50);
    }

    #[test]
    fn committers_beyond_shards_are_clamped_and_all_drain() {
        // Regression guard for the committer/shard mapping: a committer
        // beyond the shard count would own no queue and sleep forever on
        // its wake counter, so `spawn` must clamp — and every shard's
        // queue must still be owned by a live committer.
        let store = Arc::new(SkipListStore::<u64, u64>::new(4, uniform_splits(2, 100)));
        let ingest = Ingest::spawn(
            Arc::clone(&store),
            IngestConfig {
                committers: 8, // > 2 shards
                ..IngestConfig::default()
            },
        );
        assert_eq!(ingest.committers(), 2, "clamped to the shard count");
        // Ops landing on both shards commit (no orphaned queue).
        let t0 = ingest.submit(TxnOp::Put(10, 1));
        let t1 = ingest.submit(TxnOp::Put(60, 6));
        assert_eq!(t0.wait().applied, vec![true]);
        assert_eq!(t1.wait().applied, vec![true]);
        ingest.shutdown();
        assert_eq!(store.register().len(), 2);
    }

    #[test]
    fn try_submit_sheds_load_when_the_queue_is_full() {
        // One committer held back by a long linger: the queue fills to
        // its 1-submission cap, so a second non-blocking submission must
        // bounce with its ops handed back.
        let store = Arc::new(LazyListStore::<u64, u64>::new(3, uniform_splits(2, 100)));
        let ingest = Ingest::spawn(
            Arc::clone(&store),
            IngestConfig {
                committers: 1,
                linger: Duration::from_millis(300),
                max_queue_depth: 1,
                ..IngestConfig::default()
            },
        );
        let t = ingest.submit(TxnOp::Put(10, 1));
        // Same shard, queue at capacity, committer still lingering.
        match ingest.try_submit(TxnOp::Put(11, 2)) {
            Err(QueueFull { ops }) => {
                assert_eq!(ops, vec![TxnOp::Put(11, 2)], "rejected ops come back")
            }
            Ok(ticket) => {
                // A pathological scheduler stall can let the committer
                // drain first; the submission must then simply succeed.
                assert_eq!(ticket.wait().applied, vec![true]);
            }
        }
        assert_eq!(t.wait().applied, vec![true]);
        ingest.flush();
        // Space freed: the non-blocking path accepts again.
        let t2 = ingest
            .try_submit(TxnOp::Put(12, 3))
            .expect("drained queue accepts");
        assert_eq!(t2.wait().applied, vec![true]);
        ingest.shutdown();
    }

    #[test]
    fn blocking_submit_waits_for_space_and_loses_nothing() {
        // A tiny queue bound with a producer fleet pushing far more than
        // fits: every blocking submission must eventually land, and every
        // ticket must resolve (no drops, no deadlock, no lost wakeups).
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: u64 = 200;
        let store = Arc::new(SkipListStore::<u64, u64>::new(4, uniform_splits(4, 10_000)));
        let ingest = Arc::new(Ingest::spawn(
            Arc::clone(&store),
            IngestConfig {
                committers: 2,
                max_queue_depth: 2,
                ..IngestConfig::default()
            },
        ));
        let producers: Vec<_> = (0..PRODUCERS as u64)
            .map(|p| {
                let ingest = Arc::clone(&ingest);
                std::thread::spawn(move || {
                    let mut applied = 0u64;
                    let mut pending = Vec::new();
                    for i in 0..PER_PRODUCER {
                        pending.push(ingest.submit(TxnOp::Put(p * 2_500 + i, i)));
                        if pending.len() >= 8 {
                            for t in pending.drain(..) {
                                applied += u64::from(t.wait().applied[0]);
                            }
                        }
                    }
                    for t in pending {
                        applied += u64::from(t.wait().applied[0]);
                    }
                    applied
                })
            })
            .collect();
        let total: u64 = producers.into_iter().map(|p| p.join().unwrap()).sum();
        assert_eq!(total, PRODUCERS as u64 * PER_PRODUCER);
        ingest.shutdown();
        assert_eq!(store.register().len(), total as usize);
    }

    #[test]
    #[should_panic(expected = "shutting down")]
    fn submit_after_shutdown_panics() {
        let store = Arc::new(SkipListStore::<u64, u64>::new(3, uniform_splits(2, 100)));
        let ingest = Ingest::spawn(Arc::clone(&store), IngestConfig::default());
        ingest.shutdown();
        let _ = ingest.submit(TxnOp::Put(1, 1));
    }

    #[test]
    fn obs_instruments_the_front_end() {
        let reg = obs::MetricsRegistry::new();
        let store = Arc::new(SkipListStore::<u64, u64>::with_obs(
            4,
            store::ReclaimMode::Reclaim,
            uniform_splits(4, 400),
            &reg,
        ));
        let ingest = Ingest::spawn(Arc::clone(&store), IngestConfig::default());
        let tickets = ingest.submit_all((0..40u64).map(|k| TxnOp::Put(k * 10, k)));
        for t in tickets {
            let _ = t.wait();
        }
        ingest.flush();
        ingest.shutdown();
        let snap = store.obs_snapshot(0).expect("instrumented store");
        for name in [
            "ingest.queue_depth",
            "ingest.group_size",
            "ingest.linger_occupancy_pct",
            "ingest.ticket_wait_ns",
        ] {
            match snap.get(name) {
                Some(obs::SnapshotValue::Histogram(h)) => {
                    assert!(h.count >= 1, "{name} never recorded")
                }
                other => panic!("{name} missing or wrong kind: {other:?}"),
            }
        }
        // Group sizes account for every submitted op.
        match snap.get("ingest.group_size") {
            Some(obs::SnapshotValue::Histogram(h)) => assert_eq!(h.sum, 40),
            _ => unreachable!(),
        }
        // All submissions drained: the live-depth gauge reads zero.
        assert_eq!(
            snap.get("ingest.depth"),
            Some(&obs::SnapshotValue::Gauge(0))
        );
    }

    #[test]
    fn uninstrumented_store_spawns_uninstrumented_ingest() {
        let store = Arc::new(SkipListStore::<u64, u64>::new(3, uniform_splits(2, 100)));
        let ingest = Ingest::spawn(Arc::clone(&store), IngestConfig::default());
        assert!(ingest.shared.obs.is_none());
        assert_eq!(ingest.submit(TxnOp::Put(1, 1)).wait().applied, vec![true]);
        ingest.shutdown();
    }
}
