//! # store — a sharded, backend-generic KV store with linearizable
//! cross-shard range queries
//!
//! The paper's bundled references give a *single* structure linearizable
//! range queries by ordering every update through one global timestamp.
//! This crate scales that guarantee out: a [`BundledStore`] partitions the
//! keyspace into N contiguous **range shards**, each backed by any bundled
//! workspace structure ([`skiplist::BundledSkipList`],
//! [`lazylist::BundledLazyList`], [`citrus::BundledCitrusTree`]), while
//! every shard orders its updates through **one shared**
//! [`bundle::RqContext`] (clock + range-query tracker).
//!
//! Because all shards share the clock, a cross-shard [`range_query`] can
//! read the clock *once*, announce that snapshot, and then traverse each
//! overlapping shard at that fixed timestamp
//! ([`ShardBackend::range_query_at`]). Every shard serves its fragment of
//! the *same* atomic snapshot — there is no shard skew, and the whole-store
//! range query is linearizable at the moment the clock was read. Sharding
//! meanwhile spreads update traffic over N independent lock domains and N
//! smaller structures, which is what lets the design serve update-heavy
//! traffic (the direction contention-adapting trees and MTASet pursue, here
//! built on bundles).
//!
//! [`range_query`]: bundle::api::RangeQuerySet::range_query
//!
//! ## Pieces
//!
//! * [`BundledStore`] — the store: `get` / `insert` / `remove` /
//!   `multi_get` / `multi_put` plus the linearizable cross-shard
//!   `range_query`. Implements the workspace [`ConcurrentSet`] /
//!   [`RangeQuerySet`] traits, so the whole benchmark harness can drive it
//!   like any single structure.
//! * [`BundledStore::apply_txn`] / [`TxnOp`] — **atomic cross-shard write
//!   transactions**: per-shard write intents in shard order (2PL), the
//!   backends' two-phase prepare (pending bundle entries under node
//!   locks), one shared-clock advance, one commit timestamp for every
//!   entry on every shard. The `txn` crate's `WriteTxn` is the ergonomic
//!   staging front-end.
//! * [`BundledStore::apply_grouped`] — **group commit**: the same
//!   pipeline driven by the `ingest` crate's committer threads, which
//!   drain per-shard submission queues and publish a whole super-batch of
//!   independently-submitted operations under **one** clock advance (the
//!   per-shard intent locks are the hand-off point). Groups are counted
//!   separately in [`TxnStats`] so the clock amortization
//!   (`group_commits / grouped_ops` advances per op) is measurable.
//! * [`ShardBackend`] — what a structure must provide to back a shard:
//!   construction over a shared [`bundle::RqContext`], a range query at a
//!   caller-fixed snapshot timestamp, and the two-phase commit surface,
//!   now cursor-shaped (`txn_begin` / `txn_cursor` +
//!   [`bundle::PrepareCursor`] seeks / `txn_finalize` / `txn_abort`):
//!   each shard's key-sorted op run stages through one **prepare
//!   cursor** that resumes every seek from the previous op's position —
//!   one root descent plus short forward walks per shard instead of a
//!   descent per op. (The pre-cursor point prepares and the
//!   `apply_grouped_unhinted` measurement shim are gone; the cursor
//!   equivalence suite replays batches through test-local one-op cursors
//!   instead.) Implemented for all three bundled structures.
//! * [`BundledStore::with_obs`] — **observability**: a store built over
//!   an [`obs::MetricsRegistry`] records commit-pipeline stage
//!   latencies, conflict/abort counters by cause, per-shard op counters
//!   (the key-skew signal), cursor hint rates, and sampled EBR /
//!   tracker / clock gauges. The default constructors skip all of it at
//!   the cost of one never-taken branch per site
//!   ([`BundledStore::obs_snapshot`] exports the snapshot).
//! * [`StoreHandle`] / [`BundledStore::register`] — a session API that
//!   manages the dense thread-id registration the underlying structures
//!   (EBR collectors, trackers) require: register once, operate without
//!   threading `tid` everywhere, slot returns to the pool on drop.
//!   Registration **blocks** when all slots are taken
//!   ([`BundledStore::try_register`] is the non-blocking variant).
//!
//! ## Semantics change: `multi_put` and `multi_get`
//!
//! `multi_put` used to be a per-key-linearizable batch convenience — a
//! concurrent range query could observe half of a batch. It now routes
//! through [`BundledStore::apply_txn`], so the whole batch commits under
//! **one timestamp**: every range query and snapshot read sees all of it
//! or none of it. `multi_get` is the read-side mirror: the whole batch is
//! answered from one leased [`StoreSnapshot`] read, so every key comes
//! from a single atomic cut of the store.
//!
//! [`ConcurrentSet`]: bundle::api::ConcurrentSet
//! [`RangeQuerySet`]: bundle::api::RangeQuerySet
//!
//! ## Example
//!
//! ```
//! use store::{uniform_splits, SkipListStore};
//! use bundle::api::{ConcurrentSet, RangeQuerySet};
//! use std::sync::Arc;
//!
//! // 4 shards over the keyspace [0, 40_000), up to 2 registered threads.
//! let store = Arc::new(SkipListStore::<u64, u64>::new(2, uniform_splits(4, 40_000)));
//! let h = store.register();
//! h.insert(5, 50);
//! h.insert(15_000, 150);
//! h.insert(35_000, 350);
//!
//! // One atomic snapshot spanning three shards.
//! let snap = h.range_query_vec(&0, &40_000);
//! assert_eq!(snap, vec![(5, 50), (15_000, 150), (35_000, 350)]);
//! ```

mod backends;
mod commitlog;
mod handle;
mod observe;
mod sharded;
mod snapshot;

pub use backends::ShardBackend;
pub use bundle::{Conflict, TxnValidateError};
pub use commitlog::CommitLog;
pub use ebr::ReclaimMode;
pub use handle::StoreHandle;
pub use observe::PIPELINE_STAGES;
pub use sharded::{uniform_splits, BundledStore, GroupReceipt, TxnOp, TxnStats};
pub use snapshot::{ShardRead, StoreSnapshot, TxnAborted};

/// A store sharded over bundled lazy skip lists (§5 structures).
pub type SkipListStore<K, V> = BundledStore<K, V, skiplist::BundledSkipList<K, V>>;
/// A store sharded over bundled lazy linked lists (§4 structures).
pub type LazyListStore<K, V> = BundledStore<K, V, lazylist::BundledLazyList<K, V>>;
/// A store sharded over bundled Citrus-style BSTs (§6 structures).
pub type CitrusStore<K, V> = BundledStore<K, V, citrus::BundledCitrusTree<K, V>>;
