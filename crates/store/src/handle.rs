//! Session handles: managed dense thread-id registration for the store.
//!
//! Every structure in this workspace identifies threads by a dense index
//! `tid in 0..max_threads` (EBR collector slots, tracker announcement
//! slots, per-thread PRNG seeds). Passing raw tids around is error-prone
//! in application code — two threads accidentally sharing a tid corrupts
//! the EBR pin protocol. A [`StoreHandle`] owns a tid for its lifetime:
//! [`crate::BundledStore::register`] allocates the lowest free slot,
//! `Drop` returns it, and every operation is exposed tid-free.

use std::sync::Arc;

use bundle::api::{ConcurrentSet, RangeQuerySet};

use crate::backends::ShardBackend;
use crate::sharded::BundledStore;

/// A registered session on a [`BundledStore`]: a dense thread id plus the
/// store it belongs to. One handle serves one thread at a time (it is
/// `Send` but deliberately not `Clone` — clone the `Arc<BundledStore>` and
/// register again instead).
pub struct StoreHandle<K, V, S> {
    store: Arc<BundledStore<K, V, S>>,
    tid: usize,
    /// `!Sync`: sharing `&StoreHandle` across threads would let two
    /// threads drive the same dense tid concurrently, violating the EBR
    /// collector's per-slot single-owner discipline. Moving the handle
    /// (`Send`) is fine.
    _not_sync: std::marker::PhantomData<std::cell::Cell<()>>,
}

impl<K, V, S> StoreHandle<K, V, S>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
    S: ShardBackend<K, V>,
{
    pub(crate) fn new(store: Arc<BundledStore<K, V, S>>, tid: usize) -> Self {
        StoreHandle {
            store,
            tid,
            _not_sync: std::marker::PhantomData,
        }
    }

    /// The dense thread id this session owns.
    #[must_use]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// The store this session operates on.
    #[must_use]
    pub fn store(&self) -> &Arc<BundledStore<K, V, S>> {
        &self.store
    }

    /// Insert `key -> value`; `false` if the key was already present.
    pub fn insert(&self, key: K, value: V) -> bool {
        self.store.insert(self.tid, key, value)
    }

    /// Remove `key`; `false` if it was not present.
    pub fn remove(&self, key: &K) -> bool {
        self.store.remove(self.tid, key)
    }

    /// Wait-free membership test.
    #[must_use]
    pub fn contains(&self, key: &K) -> bool {
        self.store.contains(self.tid, key)
    }

    /// Lookup returning a copy of the value.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<V> {
        self.store.get(self.tid, key)
    }

    /// Atomic batched lookup: every key is answered from one leased
    /// snapshot read, so the batch observes a single atomic cut of the
    /// store (see [`BundledStore::multi_get`]). Do not call while this
    /// session holds a live [`crate::StoreSnapshot`].
    #[must_use]
    pub fn multi_get(&self, keys: &[K]) -> Vec<Option<V>> {
        self.store.multi_get(self.tid, keys)
    }

    /// Batched insert; returns how many pairs were newly inserted.
    ///
    /// Since the introduction of cross-shard write transactions this is
    /// **atomic**: the batch commits under one timestamp, so no range
    /// query or snapshot read ever observes part of it (previously each
    /// insert was only individually linearizable).
    pub fn multi_put(&self, pairs: &[(K, V)]) -> usize {
        self.store.multi_put(self.tid, pairs)
    }

    /// Atomically apply a multi-key, multi-shard write batch (sorted by
    /// key, duplicate-free); see [`BundledStore::apply_txn`]. The `txn`
    /// crate's `WriteTxn` builder is the ergonomic front-end for this.
    pub fn apply_txn(&self, ops: &[crate::TxnOp<K, V>]) -> Vec<bool> {
        self.store.apply_txn(self.tid, ops)
    }

    /// Atomically commit one ingest **group**: a key-sorted super-batch
    /// published under a single clock advance; see
    /// [`BundledStore::apply_grouped`]. The `ingest` crate's committer
    /// threads are the intended callers.
    pub fn apply_grouped(&self, ops: &[crate::TxnOp<K, V>]) -> crate::GroupReceipt {
        self.store.apply_grouped(self.tid, ops)
    }

    /// Atomically commit a read-write transaction: writes plus a recorded
    /// read set that must still be current at the commit timestamp; see
    /// [`BundledStore::apply_rw_txn`]. The `txn` crate's `ReadWriteTxn`
    /// is the ergonomic front-end for this.
    pub fn apply_rw_txn(
        &self,
        ops: &[crate::TxnOp<K, V>],
        reads: &[crate::ShardRead<K>],
    ) -> Result<Vec<bool>, crate::TxnAborted> {
        self.store.apply_rw_txn(self.tid, ops, reads)
    }

    /// Open a leased read snapshot on this session's thread id: every
    /// read through it observes the store at one shared-clock timestamp
    /// (see [`BundledStore::snapshot`]). At most one snapshot per session
    /// at a time, and no plain `range_query` while it is live (both use
    /// the session's tracker slot).
    #[must_use]
    pub fn snapshot(&self) -> crate::StoreSnapshot<'_, K, V, S> {
        self.store.snapshot(self.tid)
    }

    /// Linearizable cross-shard range query into `out` (cleared first).
    pub fn range_query(&self, low: &K, high: &K, out: &mut Vec<(K, V)>) -> usize {
        self.store.range_query(self.tid, low, high, out)
    }

    /// Linearizable cross-shard range query into a fresh vector.
    #[must_use]
    pub fn range_query_vec(&self, low: &K, high: &K) -> Vec<(K, V)> {
        self.store.range_query_vec(self.tid, low, high)
    }

    /// Element count by full traversal (non-linearizable; diagnostics).
    #[must_use]
    pub fn len(&self) -> usize {
        self.store.len(self.tid)
    }

    /// `true` when [`Self::len`] would be 0.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.store.is_empty(self.tid)
    }
}

impl<K, V, S> Drop for StoreHandle<K, V, S> {
    fn drop(&mut self) {
        self.store.release_tid(self.tid);
    }
}

impl<K, V, S> std::fmt::Debug for StoreHandle<K, V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreHandle")
            .field("tid", &self.tid)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{uniform_splits, SkipListStore};

    #[test]
    fn handle_round_trip_and_debug() {
        let store = Arc::new(SkipListStore::<u64, u64>::new(2, uniform_splits(2, 100)));
        let h = store.register();
        assert!(h.is_empty());
        assert!(h.insert(1, 10));
        assert!(h.insert(60, 600));
        assert!(!h.insert(1, 11));
        assert!(h.contains(&60));
        assert_eq!(h.get(&1), Some(10));
        assert_eq!(h.multi_get(&[1, 2, 60]), vec![Some(10), None, Some(600)]);
        assert_eq!(h.multi_put(&[(2, 20), (61, 610)]), 2);
        assert_eq!(h.len(), 4);
        let mut out = Vec::new();
        assert_eq!(h.range_query(&0, &100, &mut out), 4);
        assert_eq!(out, h.range_query_vec(&0, &100));
        assert!(h.remove(&2));
        assert!(!h.remove(&2));
        assert_eq!(format!("{h:?}"), "StoreHandle { tid: 0 }");
    }

    #[test]
    fn handles_move_across_threads() {
        let store = Arc::new(SkipListStore::<u64, u64>::new(4, uniform_splits(4, 1_000)));
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let h = store.register();
            joins.push(std::thread::spawn(move || {
                for k in (t * 250)..(t * 250 + 250) {
                    assert!(h.insert(k, k));
                }
                h.len()
            }));
        }
        for j in joins {
            let _ = j.join().unwrap();
        }
        let h = store.register();
        assert_eq!(h.len(), 1_000);
        assert_eq!(h.range_query_vec(&0, &1_000).len(), 1_000);
    }
}
