//! Leased read snapshots and read-set bookkeeping for read-write
//! transactions.
//!
//! A [`StoreSnapshot`] is the read surface of one read-write transaction:
//! it pins **every** shard's epoch collector, then leases one timestamp
//! from the shared clock ([`bundle::RqContext::lease_read`]) — the same
//! pin-all-shards-then-read-the-clock protocol the store's cross-shard
//! range query uses, held open across arbitrarily many reads instead of
//! one. Every read through the snapshot is answered at that single
//! timestamp, so a transaction's whole read set is one atomic cut of the
//! store.
//!
//! Reads can be *recorded*: each read pushes a [`ShardRead`] describing
//! the range it covered and the node identities it observed. At commit,
//! [`crate::BundledStore::apply_rw_txn`] validates every recorded read
//! under the shard intent locks ([`crate::ShardBackend::txn_validate`])
//! and pins it until the commit timestamp — which is what upgrades the
//! optimistic snapshot reads to full serializability.

use bundle::ReadLease;

use crate::backends::ShardBackend;
use crate::sharded::BundledStore;

/// One recorded read of a read-write transaction: the fragment of
/// `low..=high` served by shard `shard`, as the list of `(key, node)`
/// identities observed at the leased read timestamp. An empty `entries`
/// list is still meaningful — validating it pins the *gap*, so phantoms
/// inserted into a read-empty range are detected.
#[derive(Debug, Clone)]
pub struct ShardRead<K> {
    /// Index of the shard that served this fragment.
    pub shard: usize,
    /// Inclusive lower bound of the read.
    pub low: K,
    /// Inclusive upper bound of the read.
    pub high: K,
    /// `(key, node address)` pairs observed, in ascending key order.
    pub entries: Vec<(K, usize)>,
}

/// A read-write transaction aborted at commit because one of its
/// validated reads went stale: another transaction (or primitive
/// operation) committed to a read key — or into a read range — between
/// the leased read timestamp and validation. The transaction's writes
/// were rolled back completely (no snapshot at any timestamp observes
/// them); re-run the transaction body against a fresh snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnAborted;

impl std::fmt::Display for TxnAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("read-write transaction aborted: a validated read went stale before commit")
    }
}

impl std::error::Error for TxnAborted {}

/// A leased read snapshot over the whole store (see the module docs).
///
/// Holds, for its entire lifetime: one EBR pin per shard (so every node a
/// fixed-timestamp read can reach — and every node identity recorded in a
/// read set — stays allocated) and the read lease announcing the snapshot
/// timestamp in the shared tracker (so bundle cleanup preserves every
/// entry the snapshot needs). Drop the snapshot to release both.
///
/// One snapshot per registered `tid` at a time: the lease occupies the
/// tid's tracker slot, so the owning thread must not run a plain
/// `range_query` (or take a second snapshot) on the same tid while it is
/// live.
pub struct StoreSnapshot<'a, K, V, S> {
    store: &'a BundledStore<K, V, S>,
    tid: usize,
    ts: u64,
    _lease: ReadLease,
    _guards: Vec<ebr::Guard<'a>>,
}

impl<K, V, S> BundledStore<K, V, S>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
    S: ShardBackend<K, V>,
{
    /// Open a leased read snapshot for `tid`: pin every shard, then read
    /// and announce the shared clock once. All reads through the returned
    /// handle observe the store at that single timestamp.
    pub fn snapshot(&self, tid: usize) -> StoreSnapshot<'_, K, V, S> {
        // Pin every shard BEFORE fixing the timestamp, exactly like the
        // cross-shard range query: a node removed with a timestamp newer
        // than the lease retires only after the clock read below, so these
        // pins keep every node the fixed-timestamp reads can touch alive.
        let guards: Vec<ebr::Guard<'_>> = (0..self.shard_count())
            .map(|i| self.shard(i).pin(tid))
            .collect();
        let lease = self.context().lease_read(tid);
        StoreSnapshot {
            store: self,
            tid,
            ts: lease.ts(),
            _lease: lease,
            _guards: guards,
        }
    }
}

impl<K, V, S> StoreSnapshot<'_, K, V, S> {
    /// The leased snapshot timestamp every read is answered at.
    #[must_use]
    pub fn ts(&self) -> u64 {
        self.ts
    }

    /// The dense thread id the snapshot is leased on.
    #[must_use]
    pub fn tid(&self) -> usize {
        self.tid
    }
}

impl<K, V, S> StoreSnapshot<'_, K, V, S>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
    S: ShardBackend<K, V>,
{
    /// Unrecorded point read at the snapshot timestamp: a versioned peek
    /// that does not join the read set (commit will not validate it).
    #[must_use]
    pub fn get(&self, key: &K) -> Option<V> {
        let mut out = Vec::with_capacity(1);
        let mut nodes = Vec::new();
        let shard = self.store.shard_of(key);
        self.store
            .shard(shard)
            .txn_range_read(self.tid, self.ts, key, key, &mut out, &mut nodes);
        out.pop().map(|(_, v)| v)
    }

    /// Recorded point read: like [`StoreSnapshot::get`], additionally
    /// pushing the observation into `reads` for commit-time validation.
    pub fn get_recorded(&self, key: &K, reads: &mut Vec<ShardRead<K>>) -> Option<V> {
        let mut out = Vec::with_capacity(1);
        let mut nodes = Vec::new();
        let shard = self.store.shard_of(key);
        self.store
            .shard(shard)
            .txn_range_read(self.tid, self.ts, key, key, &mut out, &mut nodes);
        reads.push(ShardRead {
            shard,
            low: *key,
            high: *key,
            entries: nodes,
        });
        out.pop().map(|(_, v)| v)
    }

    /// Unrecorded range read at the snapshot timestamp (versioned peek).
    pub fn range(&self, low: &K, high: &K, out: &mut Vec<(K, V)>) -> usize {
        self.range_inner(low, high, out, None)
    }

    /// Recorded range read: collects `low..=high` at the snapshot
    /// timestamp and pushes one [`ShardRead`] per overlapping shard into
    /// `reads` — including empty fragments, whose validation pins the gap
    /// against phantoms.
    pub fn range_recorded(
        &self,
        low: &K,
        high: &K,
        out: &mut Vec<(K, V)>,
        reads: &mut Vec<ShardRead<K>>,
    ) -> usize {
        self.range_inner(low, high, out, Some(reads))
    }

    fn range_inner(
        &self,
        low: &K,
        high: &K,
        out: &mut Vec<(K, V)>,
        mut reads: Option<&mut Vec<ShardRead<K>>>,
    ) -> usize {
        out.clear();
        if low > high {
            return 0;
        }
        let first = self.store.shard_of(low);
        let last = self.store.shard_of(high);
        let mut scratch = Vec::new();
        let mut nodes = Vec::new();
        for shard in first..=last {
            self.store.shard(shard).txn_range_read(
                self.tid,
                self.ts,
                low,
                high,
                &mut scratch,
                &mut nodes,
            );
            out.append(&mut scratch);
            if let Some(rs) = reads.as_deref_mut() {
                rs.push(ShardRead {
                    shard,
                    low: *low,
                    high: *high,
                    entries: std::mem::take(&mut nodes),
                });
            } else {
                nodes.clear();
            }
        }
        out.len()
    }
}

impl<K, V, S> std::fmt::Debug for StoreSnapshot<'_, K, V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreSnapshot")
            .field("tid", &self.tid)
            .field("ts", &self.ts)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::{uniform_splits, LazyListStore, SkipListStore};
    use bundle::api::ConcurrentSet;

    #[test]
    fn snapshot_reads_are_one_atomic_cut() {
        let s = SkipListStore::<u64, u64>::new(2, uniform_splits(4, 400));
        s.insert(0, 10, 1);
        s.insert(0, 250, 2);
        let snap = s.snapshot(1);
        // Updates after the lease are invisible to every read.
        s.insert(0, 20, 3);
        s.remove(0, &250);
        assert_eq!(snap.get(&10), Some(1));
        assert_eq!(snap.get(&20), None);
        assert_eq!(snap.get(&250), Some(2));
        let mut out = Vec::new();
        snap.range(&0, &400, &mut out);
        assert_eq!(out, vec![(10, 1), (250, 2)]);
        drop(snap);
        let snap = s.snapshot(1);
        assert_eq!(snap.get(&20), Some(3));
        assert_eq!(snap.get(&250), None);
    }

    #[test]
    fn recorded_reads_cover_every_overlapping_shard() {
        let s = LazyListStore::<u64, u64>::new(1, uniform_splits(4, 400));
        s.insert(0, 10, 1);
        s.insert(0, 150, 2);
        let snap = s.snapshot(0);
        let mut out = Vec::new();
        let mut reads = Vec::new();
        snap.range_recorded(&0, &399, &mut out, &mut reads);
        assert_eq!(out, vec![(10, 1), (150, 2)]);
        // One fragment per shard, empty fragments included (gap pinning).
        assert_eq!(reads.len(), 4);
        assert_eq!(reads[0].entries[0].0, 10, "fragment keys are recorded");
        assert_eq!(reads[0].entries.len(), 1);
        assert_eq!(reads[1].entries.len(), 1);
        assert!(reads[2].entries.is_empty());
        assert!(reads[3].entries.is_empty());
        let mut point = Vec::new();
        assert_eq!(snap.get_recorded(&150, &mut point), Some(2));
        assert_eq!(point.len(), 1);
        assert_eq!(point[0].shard, 1);
        assert_eq!(point[0].entries[0].0, 150);
    }
}
