//! The backend contract a structure must satisfy to serve as one shard of
//! a [`crate::BundledStore`], and its implementations for the three
//! bundled workspace structures.

use bundle::api::RangeQuerySet;
use bundle::{PrepareCursor, RqContext, TxnValidateError};
use ebr::ReclaimMode;

/// A bundled structure that can back one shard of a sharded store.
///
/// Beyond the ordinary [`RangeQuerySet`] operations, a shard must support
/// the two things that make *cross*-shard linearizability possible:
///
/// 1. **construction over a shared [`RqContext`]** — every shard orders
///    its updates through the store's single clock, so updates across the
///    whole store are totally ordered, and
/// 2. **a range query at a caller-fixed snapshot timestamp**
///    ([`Self::range_query_at`]) — the store reads the shared clock once
///    and traverses every overlapping shard at that one timestamp.
///
/// The bundle-maintenance hooks (`cleanup`, `bundle_entries`) let the
/// store run one recycler over all shards.
pub trait ShardBackend<K, V>: RangeQuerySet<K, V> + Sized {
    /// Build a shard ordering its updates through `ctx` (shared with every
    /// other shard of the store).
    fn build(max_threads: usize, mode: ReclaimMode, ctx: &RqContext) -> Self;

    /// Pin this shard's epoch collector for `tid`.
    ///
    /// A cross-shard range query MUST pin every shard it will traverse
    /// *before* fixing its snapshot timestamp: a node removed with a
    /// timestamp newer than the snapshot necessarily retires after the
    /// clock read, so a pin taken before the read protects every node the
    /// fixed-timestamp traversal can visit. (Pins are reentrant, so the
    /// shard's own internal pin in [`Self::range_query_at`] just nests.)
    fn pin(&self, tid: usize) -> ebr::Guard<'_>;

    /// Collect `low ..= high` into `out` (cleared first) as of snapshot
    /// `ts`, which the caller has read from the shared clock and announced
    /// in the shared tracker for the duration of the call.
    fn range_query_at(
        &self,
        tid: usize,
        ts: u64,
        low: &K,
        high: &K,
        out: &mut Vec<(K, V)>,
    ) -> usize;

    /// One pass pruning bundle entries no active snapshot needs; returns
    /// the number of entries retired.
    fn cleanup(&self, tid: usize) -> usize;

    /// Total bundle entries currently held (space diagnostic).
    fn bundle_entries(&self, tid: usize) -> usize;

    /// The shard's epoch-reclamation counters (retired / freed / pending
    /// backlog) — the store's observability layer sums these across
    /// shards into its EBR retire-backlog gauges.
    fn reclaim_stats(&self) -> &ebr::Stats;

    /// Accumulated two-phase state of one transaction's writes on this
    /// shard: held node locks, pending bundle entries, and the undo log
    /// reverting eager structural changes on abort.
    type Txn;

    /// Begin accumulating two-phase writes for thread `tid`.
    ///
    /// The two-phase commit surface generalizes the paper's
    /// `LinearizeUpdateOperation` from one structure to N shards: each
    /// staged write applies its structural change eagerly but leaves every
    /// affected bundle entry *pending*; the store then reads the shared
    /// clock **once** and finalizes all entries on all shards with that
    /// single timestamp, so every snapshot (fixed through the shared
    /// [`RqContext`]) observes the whole write batch or none of it.
    ///
    /// Protocol obligations of the caller:
    /// * at most one transaction prepares on a given shard at a time (the
    ///   store's per-shard intent locks enforce this);
    /// * every begun token is consumed by exactly one of
    ///   [`Self::txn_finalize`] or [`Self::txn_abort`];
    /// * on [`bundle::Conflict`] from any prepare, *all* shards' tokens are
    ///   aborted and the whole transaction retries.
    fn txn_begin(&self, tid: usize) -> Self::Txn;

    /// [`Self::txn_begin`] for a transaction that will never validate
    /// reads (empty read set): backends may skip recording the per-key
    /// staged images the validate phase would consume. The store routes
    /// `apply_txn`, `multi_put` and every group commit through this —
    /// group commits stage hundreds of ops per token, so bookkeeping
    /// nothing reads is worth skipping. Calling [`Self::txn_validate`] on
    /// such a token is a contract violation.
    fn txn_begin_write_only(&self, tid: usize) -> Self::Txn {
        self.txn_begin(tid)
    }

    /// A prepare cursor over one transaction token: stages the same
    /// two-phase writes as the point prepares, but retains the last
    /// located position (a frontier) and resumes the next seek from it
    /// when the target key lies at or beyond the current position —
    /// turning a key-sorted batch into one root descent plus short
    /// forward walks. See [`bundle::PrepareCursor`] for the frontier
    /// retention rules and fallback conditions.
    type Cursor<'a>: PrepareCursor<K, V, Txn = Self::Txn>
    where
        Self: 'a;

    /// Open a prepare cursor over `txn`. The cursor holds an EBR pin on
    /// this shard for its whole lifetime; [`bundle::PrepareCursor::finish`]
    /// gives the token back for [`Self::txn_finalize`] /
    /// [`Self::txn_abort`]. The store's commit pipeline drives every
    /// shard's staged ops (already key-sorted) through one cursor.
    fn txn_cursor(&self, txn: Self::Txn) -> Self::Cursor<'_>;

    /// Transactional snapshot read of `low..=high` at the caller-fixed
    /// (leased) timestamp `ts`: like [`Self::range_query_at`], but every
    /// collected node's address is additionally recorded into `nodes` —
    /// the read-set entry [`Self::txn_validate`] re-checks at commit.
    ///
    /// Contract: `ts` must stay announced in the shared tracker (the
    /// transaction's read lease) and the caller must hold an EBR pin on
    /// this shard from before the lease until validation, so the recorded
    /// addresses stay comparable (no node reuse).
    fn txn_range_read(
        &self,
        tid: usize,
        ts: u64,
        low: &K,
        high: &K,
        out: &mut Vec<(K, V)>,
        nodes: &mut Vec<(K, usize)>,
    ) -> usize;

    /// Validate one recorded read range of the transaction and pin it
    /// (node locks held inside `txn`) until finalize/abort. Must run
    /// *after* every staged write of the transaction on this shard, under
    /// the shard's intent lock.
    ///
    /// [`TxnValidateError::Conflict`] = lock race, roll back everything
    /// and retry the transaction; [`TxnValidateError::Invalidated`] = a
    /// foreign update committed inside the range since the leased read
    /// timestamp — the abort must propagate to the application, which
    /// re-runs against a fresh snapshot.
    fn txn_validate(
        &self,
        txn: &mut Self::Txn,
        low: &K,
        high: &K,
        recorded: &[(K, usize)],
    ) -> Result<(), TxnValidateError>;

    /// Commit the shard's staged writes with the transaction's single
    /// timestamp (acquired once from the shared clock *after* every
    /// shard's prepare phase succeeded).
    fn txn_finalize(&self, txn: Self::Txn, ts: u64);

    /// Roll back the shard's staged writes: structural changes reverted,
    /// pending bundle entries neutralized, locks released.
    fn txn_abort(&self, txn: Self::Txn);
}

macro_rules! impl_shard_backend {
    ($ty:path, $txn:path, $cursor:ident) => {
        impl<K, V> ShardBackend<K, V> for $ty
        where
            K: Copy + Ord + Default + Send + Sync,
            V: Clone + Send + Sync,
        {
            fn build(max_threads: usize, mode: ReclaimMode, ctx: &RqContext) -> Self {
                Self::with_context(max_threads, mode, ctx)
            }

            fn pin(&self, tid: usize) -> ebr::Guard<'_> {
                self.collector().pin(tid)
            }

            fn range_query_at(
                &self,
                tid: usize,
                ts: u64,
                low: &K,
                high: &K,
                out: &mut Vec<(K, V)>,
            ) -> usize {
                Self::range_query_at(self, tid, ts, low, high, out)
            }

            fn cleanup(&self, tid: usize) -> usize {
                self.cleanup_bundles(tid)
            }

            fn bundle_entries(&self, tid: usize) -> usize {
                Self::bundle_entries(self, tid)
            }

            fn reclaim_stats(&self) -> &ebr::Stats {
                self.collector().stats()
            }

            type Txn = $txn;

            fn txn_begin(&self, tid: usize) -> Self::Txn {
                Self::txn_begin(self, tid)
            }

            fn txn_begin_write_only(&self, tid: usize) -> Self::Txn {
                Self::txn_begin_write_only(self, tid)
            }

            type Cursor<'a>
                = $cursor<'a, K, V>
            where
                Self: 'a;

            fn txn_cursor(&self, txn: Self::Txn) -> Self::Cursor<'_> {
                Self::txn_cursor(self, txn)
            }

            fn txn_range_read(
                &self,
                tid: usize,
                ts: u64,
                low: &K,
                high: &K,
                out: &mut Vec<(K, V)>,
                nodes: &mut Vec<(K, usize)>,
            ) -> usize {
                Self::txn_range_read(self, tid, ts, low, high, out, nodes)
            }

            fn txn_validate(
                &self,
                txn: &mut Self::Txn,
                low: &K,
                high: &K,
                recorded: &[(K, usize)],
            ) -> Result<(), TxnValidateError> {
                Self::txn_validate(self, txn, low, high, recorded)
            }

            fn txn_finalize(&self, txn: Self::Txn, ts: u64) {
                Self::txn_finalize(self, txn, ts)
            }

            fn txn_abort(&self, txn: Self::Txn) {
                Self::txn_abort(self, txn)
            }
        }
    };
}

/// The cursor GAT needs the backend crate name for its lifetime-generic
/// type, so each expansion names its `ShardCursor` explicitly.
use citrus::ShardCursor as CitrusCursor;
use lazylist::ShardCursor as LazyCursor;
use skiplist::ShardCursor as SkipCursor;

impl_shard_backend!(skiplist::BundledSkipList<K, V>, skiplist::ShardTxn<K, V>, SkipCursor);
impl_shard_backend!(lazylist::BundledLazyList<K, V>, lazylist::ShardTxn<K, V>, LazyCursor);
impl_shard_backend!(citrus::BundledCitrusTree<K, V>, citrus::ShardTxn<K, V>, CitrusCursor);

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<S: ShardBackend<u64, u64>>() {
        let ctx = RqContext::new(2);
        let shard = S::build(2, ReclaimMode::Reclaim, &ctx);
        assert!(shard.insert(0, 7, 70));
        let before = ctx.read();
        assert!(shard.insert(0, 9, 90));
        let mut out = Vec::new();
        // Fixed-timestamp query: the second insert is invisible at `before`.
        let announced = ctx.start_rq(1);
        assert!(announced >= before);
        shard.range_query_at(1, before, &0, &100, &mut out);
        ctx.finish_rq(1);
        assert_eq!(out, vec![(7, 70)]);
        assert!(shard.bundle_entries(0) > 0);
        let _ = shard.cleanup(1);
        assert!(shard.contains(0, &9));
    }

    fn exercise_txn<S: ShardBackend<u64, u64>>() {
        let ctx = RqContext::new(2);
        let shard = S::build(2, ReclaimMode::Reclaim, &ctx);
        shard.insert(0, 1, 10);
        let before = ctx.read();

        // Commit path: two staged writes through one cursor, one
        // timestamp, atomic cut.
        let mut cur = shard.txn_cursor(shard.txn_begin(0));
        assert_eq!(cur.seek_prepare_remove(&1), Ok(true));
        assert_eq!(cur.seek_prepare_put(2, 20), Ok(true));
        assert_eq!(cur.seek_read(&2), Some(20), "cursor reads eager writes");
        let stats = cur.stats();
        assert!(stats.hinted + stats.descents >= 3, "every seek is counted");
        let txn = cur.finish();
        let ts = ctx.advance(0);
        shard.txn_finalize(txn, ts);
        let mut out = Vec::new();
        let announced = ctx.start_rq(1);
        assert!(announced >= ts);
        shard.range_query_at(1, before, &0, &100, &mut out);
        assert_eq!(out, vec![(1, 10)], "pre-commit snapshot unchanged");
        shard.range_query_at(1, ts, &0, &100, &mut out);
        assert_eq!(out, vec![(2, 20)], "commit snapshot has both writes");
        ctx.finish_rq(1);

        // Abort path: nothing changes, the clock never advances.
        let clock = ctx.read();
        let mut cur = shard.txn_cursor(shard.txn_begin(0));
        assert_eq!(cur.seek_prepare_put(3, 30), Ok(true));
        assert_eq!(cur.seek_prepare_remove(&2), Ok(true));
        shard.txn_abort(cur.finish());
        assert_eq!(ctx.read(), clock);
        shard.range_query_at(1, clock, &0, &100, &mut out);
        assert_eq!(out, vec![(2, 20)], "aborted writes are invisible");

        // One-op cursors (a fresh cursor per op, the legacy point-prepare
        // discipline) stay outcome-identical to batch staging.
        {
            let mut txn = shard.txn_begin(0);
            let mut cur = shard.txn_cursor(txn);
            assert_eq!(cur.seek_prepare_put(4, 40), Ok(true));
            txn = cur.finish();
            let mut cur = shard.txn_cursor(txn);
            assert_eq!(cur.seek_prepare_put(2, 99), Ok(false));
            txn = cur.finish();
            let mut cur = shard.txn_cursor(txn);
            assert_eq!(cur.seek_prepare_remove(&7), Ok(false));
            txn = cur.finish();
            let ts = ctx.advance(0);
            shard.txn_finalize(txn, ts);
            let announced = ctx.start_rq(1);
            shard.range_query_at(1, announced, &0, &100, &mut out);
            ctx.finish_rq(1);
            assert_eq!(out, vec![(2, 20), (4, 40)]);
        }

        // Reclamation counters are visible through the trait.
        let _ = shard.reclaim_stats().retired();
    }

    #[test]
    fn all_three_backends_satisfy_the_contract() {
        exercise::<skiplist::BundledSkipList<u64, u64>>();
        exercise::<lazylist::BundledLazyList<u64, u64>>();
        exercise::<citrus::BundledCitrusTree<u64, u64>>();
    }

    #[test]
    fn all_three_backends_satisfy_the_txn_contract() {
        exercise_txn::<skiplist::BundledSkipList<u64, u64>>();
        exercise_txn::<lazylist::BundledLazyList<u64, u64>>();
        exercise_txn::<citrus::BundledCitrusTree<u64, u64>>();
    }
}
