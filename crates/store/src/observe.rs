//! Store-side observability: the pre-registered instrument handles the
//! commit pipeline, primitive ops, cursors, EBR, and the shared clock
//! record into.
//!
//! The store holds an `Option<StoreObs>`: `None` (the default
//! constructors) keeps every instrumentation site to one never-taken
//! branch — no atomics, no clock reads — which is what the
//! `--check-obs-overhead` gate measures. [`BundledStore::with_obs`]
//! builds the handles once at construction so the hot paths never touch
//! the registry lock.
//!
//! [`BundledStore::with_obs`]: crate::BundledStore::with_obs

use std::sync::Arc;

use obs::{Counter, Gauge, Histogram, MetricsRegistry, TraceRecorder};

/// The five commit-pipeline stages in pipeline order; stage `i`'s wall
/// latency lands in the `store.pipeline.{stage}_ns` histogram (indexes
/// into [`StoreObs::stage_ns`]).
pub const PIPELINE_STAGES: [&str; 5] = ["intents", "prepare", "validate", "advance", "finalize"];

/// Instrument handles of one store (see the module docs). Fields are
/// crate-internal: the recording sites live in `sharded.rs`.
pub(crate) struct StoreObs {
    /// The registry the handles were registered in (snapshot source).
    pub(crate) registry: MetricsRegistry,
    /// Per-stage wall latency of the commit pipeline, nanoseconds, one
    /// sample per stage per attempt (a conflict retry re-samples the
    /// stages it re-runs). Indexed by [`PIPELINE_STAGES`].
    pub(crate) stage_ns: [Histogram; 5],
    /// Committed transactions (groups included, once each).
    pub(crate) commits: Counter,
    /// Pipeline-internal retries after a staging lock race (phase 2).
    pub(crate) conflicts_prepare: Counter,
    /// Pipeline-internal retries after a validation lock race (phase 3).
    pub(crate) conflicts_validate: Counter,
    /// Transactions aborted to the caller because a validated read went
    /// stale ([`crate::TxnAborted`]).
    pub(crate) aborts_invalidated: Counter,
    /// Application-level re-runs of a read-write closure after an abort
    /// (recorded by the `txn` crate's retry loop through
    /// [`crate::BundledStore::obs_note_rw_retry`]).
    pub(crate) rw_retries: Counter,
    /// Prepare-cursor seeks that resumed from the retained frontier.
    pub(crate) cursor_hinted: Counter,
    /// Prepare-cursor seeks that paid a full root descent.
    pub(crate) cursor_descents: Counter,
    /// Operations routed to each shard (primitive ops, staged pipeline
    /// ops, and range-query fragments) — the key-skew signal a future
    /// resharding policy consumes.
    pub(crate) shard_ops: Box<[Counter]>,
    /// Bundle entries per shard, sampled at snapshot time.
    pub(crate) shard_entries: Box<[Gauge]>,
    /// EBR nodes retired but not yet freed, summed across shards.
    pub(crate) ebr_pending: Gauge,
    /// EBR nodes retired so far, summed across shards.
    pub(crate) ebr_retired: Gauge,
    /// EBR nodes freed so far, summed across shards.
    pub(crate) ebr_freed: Gauge,
    /// Snapshots currently announced in the shared tracker (live range
    /// queries, store snapshots, read leases).
    pub(crate) rq_active: Gauge,
    /// Current value of the shared clock.
    pub(crate) clock_value: Gauge,
    /// Total advance calls on the shared clock.
    pub(crate) clock_advances: Gauge,
    /// Anomalies the flight recorder has noted over its lifetime
    /// (including those past the retention cap), sampled at snapshot
    /// time — makes self-observability losses scrapable.
    pub(crate) trace_anomalies: Gauge,
    /// The flight recorder (always on with `with_obs`; `None` only when
    /// tracing was explicitly disabled via
    /// [`crate::BundledStore::with_obs_trace_capacity`] with capacity 0
    /// or the registry is inert). Event sites check this once — the
    /// same never-taken-branch contract as the metric handles.
    pub(crate) trace: Option<Arc<TraceRecorder>>,
}

impl StoreObs {
    /// Register (or re-attach to) every store instrument in `registry`,
    /// attaching `trace` as the store's flight recorder.
    pub(crate) fn new(
        registry: &MetricsRegistry,
        shards: usize,
        trace: Option<Arc<TraceRecorder>>,
    ) -> Self {
        let stage_ns =
            PIPELINE_STAGES.map(|s| registry.histogram(&format!("store.pipeline.{s}_ns")));
        StoreObs {
            stage_ns,
            commits: registry.counter("store.txn.commits"),
            conflicts_prepare: registry.counter("store.txn.conflicts.prepare"),
            conflicts_validate: registry.counter("store.txn.conflicts.validate"),
            aborts_invalidated: registry.counter("store.txn.aborts.invalidated"),
            rw_retries: registry.counter("store.txn.rw_retries"),
            cursor_hinted: registry.counter("store.cursor.hinted"),
            cursor_descents: registry.counter("store.cursor.descents"),
            shard_ops: (0..shards)
                .map(|i| registry.counter(&format!("store.shard{i}.ops")))
                .collect(),
            shard_entries: (0..shards)
                .map(|i| registry.gauge(&format!("store.shard{i}.bundle_entries")))
                .collect(),
            ebr_pending: registry.gauge("store.ebr.pending"),
            ebr_retired: registry.gauge("store.ebr.retired"),
            ebr_freed: registry.gauge("store.ebr.freed"),
            rq_active: registry.gauge("store.rq.active_queries"),
            clock_value: registry.gauge("store.clock.value"),
            clock_advances: registry.gauge("store.clock.advances"),
            trace_anomalies: registry.gauge("obs.trace.anomalies"),
            trace,
            registry: registry.clone(),
        }
    }
}
