//! The durability hook of the commit pipeline.
//!
//! A [`CommitLog`] is attached to a [`crate::BundledStore`] *before* the
//! store is shared (see [`crate::BundledStore::attach_commit_log`]) and is
//! called once per committing write group, between validation and
//! finalization: at that point the group's single commit timestamp has
//! been drawn and every per-key outcome is decided, but no bundle entry
//! has been finalized — concurrent snapshots still spin on the pending
//! entries. Logging (and, under [`SyncPolicy::Always`]-style policies,
//! fsyncing) inside that window makes the **durable prefix of the log a
//! prefix of the visible history**: an outcome can only be observed by a
//! reader after the log call for its group has returned.
//!
//! The trait is object-safe and lives in `store` (rather than the `wal`
//! crate that implements it) so the dependency points outward:
//! `wal -> store`, and a store built without a log pays exactly one
//! never-taken branch per commit — the same deal as disabled
//! observability.
//!
//! [`SyncPolicy::Always`]: ../../wal/enum.SyncPolicy.html

use crate::TxnOp;

/// A write-ahead group log attached to the commit pipeline.
///
/// Implementations must be internally synchronized: `log_group` is called
/// concurrently from every committing thread, and the log order it
/// chooses is the replay order. That is always safe, because two groups
/// whose shard sets overlap are serialized by the per-shard intent locks
/// (both held across the `log_group` call), so their log order matches
/// their timestamp order; fully disjoint groups commute under replay.
pub trait CommitLog<K, V>: Send + Sync {
    /// Record one committed group, durably if the sync policy demands it.
    ///
    /// * `ts` — the group's single commit timestamp.
    /// * `ops` — the operations in **caller order**; `order[i]` is the
    ///   caller index of the `i`-th operation in key-ascending shard
    ///   order, so iterating `order` yields the ops sorted the way
    ///   [`crate::BundledStore::apply_grouped`] wants them on replay.
    /// * `applied[order[i]]` — the final outcome of that operation from
    ///   the pipeline's fold (`false` = no-op, e.g. a `Put` on a present
    ///   key).
    /// * `shards` — ascending indices of the shards the group wrote.
    ///
    /// Called while the group's intent locks are held and its bundle
    /// entries are still pending; must not call back into the store.
    fn log_group(
        &self,
        tid: usize,
        ts: u64,
        ops: &[TxnOp<K, V>],
        order: &[usize],
        applied: &[bool],
        shards: &[usize],
    );

    /// Force everything logged so far to stable storage (fsync), e.g. at
    /// an [`Ingest::flush`]-style durability barrier or clean shutdown.
    ///
    /// [`Ingest::flush`]: ../../ingest/struct.Ingest.html#method.flush
    fn sync(&self);
}
