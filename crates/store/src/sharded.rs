//! The sharded store itself.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use bundle::api::{ConcurrentSet, RangeQuerySet};
use bundle::{Conflict, PrepareCursor, Recycler, RqContext, TxnValidateError};
use ebr::ReclaimMode;
use obs::{AnomalyCause, MetricsRegistry, MetricsSnapshot, TraceKind, TraceRecorder};

use crate::backends::ShardBackend;
use crate::handle::StoreHandle;
use crate::observe::StoreObs;
use crate::snapshot::{ShardRead, TxnAborted};

/// [`StoreObs::stage_ns`] indexes of the five pipeline stages.
/// Conflict-retry attempt count at which the flight recorder snapshots
/// an anomaly (once per transaction — the trigger fires on equality).
/// By attempt 6 the pipeline has spun through its exponential backoff
/// several times; that is a burst worth keeping the interleaving for.
const CONFLICT_BURST_ANOMALY: u32 = 6;

const STAGE_INTENTS: usize = 0;
const STAGE_PREPARE: usize = 1;
const STAGE_VALIDATE: usize = 2;
const STAGE_ADVANCE: usize = 3;
const STAGE_FINALIZE: usize = 4;

/// One write of a multi-key transaction (see [`BundledStore::apply_txn`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOp<K, V> {
    /// Insert `key -> value`; a no-op if the key is already present
    /// (set-insert semantics, like [`ConcurrentSet::insert`]).
    Put(K, V),
    /// Upsert `key -> value`: replace the current value if the key is
    /// present, insert otherwise. Staged as a remove-then-insert on the
    /// owning shard, both finalized with the transaction's single
    /// timestamp, so no snapshot ever sees the key absent (or half of the
    /// update).
    Set(K, V),
    /// Remove `key`; a no-op if absent.
    Remove(K),
}

impl<K, V> TxnOp<K, V> {
    /// The key this operation targets.
    pub fn key(&self) -> &K {
        match self {
            TxnOp::Put(k, _) => k,
            TxnOp::Set(k, _) => k,
            TxnOp::Remove(k) => k,
        }
    }
}

/// Commit/conflict counters of a store's transaction path (monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnStats {
    /// Transactions committed (group commits included — each counted once).
    pub commits: u64,
    /// Prepare/validate rounds that lost a lock race, rolled back, and
    /// retried internally.
    pub conflicts: u64,
    /// Read-write transactions aborted because a validated read went
    /// stale before commit (surfaced to the application as
    /// [`TxnAborted`]; the caller re-runs against a fresh snapshot).
    pub validation_failures: u64,
    /// Cumulative size of the read sets submitted to the validate phase:
    /// one unit per recorded range fragment plus one per recorded entry.
    pub read_set_size: u64,
    /// Group commits ([`BundledStore::apply_grouped`]) — super-batches
    /// that published many independently-submitted operations under one
    /// clock advance.
    pub group_commits: u64,
    /// Operations published by group commits (so
    /// `grouped_ops / group_commits` is the mean super-batch size and
    /// `group_commits / grouped_ops` the clock advances per grouped op —
    /// the amortization the ingestion front-end exists to deliver).
    pub grouped_ops: u64,
}

/// Outcome of one committed group ([`BundledStore::apply_grouped`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupReceipt {
    /// Per-op results in the caller's (key-ascending) op order: `true` =
    /// the put inserted / the remove removed / the set replaced.
    pub applied: Vec<bool>,
    /// The single commit timestamp every op of the group published at
    /// (for an empty group, the clock value at the call).
    pub ts: u64,
}

/// One acquired per-shard intent of a committing transaction: exclusive
/// for shards it writes, shared for shards it only validates reads on
/// (so disjoint read-only validations proceed in parallel). Held purely
/// for its RAII release.
#[allow(dead_code)]
enum IntentGuard<'a> {
    Shared(RwLockReadGuard<'a, ()>),
    Exclusive(RwLockWriteGuard<'a, ()>),
}

/// Dense-tid session allocator state (see [`StoreHandle`]).
struct TidPool {
    /// Next never-used slot.
    next: usize,
    /// Slots returned by dropped handles.
    free: Vec<usize>,
}

/// Evenly spaced shard boundaries for a `u64` keyspace `[0, key_range)`:
/// `shards - 1` split points producing `shards` contiguous range shards.
/// Keys at or above `key_range` all land in the last shard.
#[must_use]
pub fn uniform_splits(shards: usize, key_range: u64) -> Vec<u64> {
    assert!(shards > 0, "a store needs at least one shard");
    (1..shards as u64)
        .map(|i| i * (key_range / shards as u64).max(1))
        .collect()
}

/// A concurrent KV store sharding a totally ordered keyspace across N
/// bundled structures while preserving the paper's headline guarantee
/// *across* shards: every range query is one atomic snapshot of the whole
/// store.
///
/// * Shard `0` holds keys `< splits[0]`, shard `i` holds
///   `splits[i-1] <= k < splits[i]`, the last shard holds the rest.
/// * All shards are built over one shared [`RqContext`], so updates on any
///   shard are totally ordered by the one clock and a snapshot timestamp
///   is meaningful store-wide.
/// * Single-key operations route to one shard and are exactly as fast as
///   the underlying structure; different shards never contend on locks or
///   structure memory (the clock is the only shared word, identical to a
///   single structure of the same total size).
///
/// Thread identifiers: the store supports `max_threads` dense thread ids,
/// passed through to every shard (each shard's EBR collector registers the
/// same id space). Use [`BundledStore::register`] for managed allocation.
pub struct BundledStore<K, V, S> {
    shards: Box<[S]>,
    /// Strictly increasing shard boundaries (`len == shards.len() - 1`).
    splits: Box<[K]>,
    ctx: RqContext,
    max_threads: usize,
    /// Dense-tid session allocator (see [`StoreHandle`]); registrations
    /// block on the condvar when all slots are in use.
    tids: Mutex<TidPool>,
    tid_freed: Condvar,
    /// Per-shard intent locks: at most one transaction *prepares writes*
    /// on a shard at a time (exclusive mode), while any number of
    /// read-only validations may proceed in parallel (shared mode — they
    /// exclude writers but not each other; node locks arbitrate
    /// overlapping validations). Acquired in ascending shard order (2PL,
    /// deadlock free by ordering); single-key operations never touch
    /// them. These locks are also the hand-off point of the `ingest`
    /// front-end: a committer thread presents a whole drained queue as
    /// one [`BundledStore::apply_grouped`] super-batch, paying each
    /// shard's intent acquisition once per *group* instead of once per
    /// operation.
    intents: Box<[RwLock<()>]>,
    /// Round-robin cursor of the chunked bundle recycler.
    recycle_cursor: AtomicUsize,
    txn_commits: AtomicU64,
    txn_conflicts: AtomicU64,
    txn_validation_failures: AtomicU64,
    txn_read_set: AtomicU64,
    group_commits: AtomicU64,
    grouped_ops: AtomicU64,
    /// Observability handles ([`BundledStore::with_obs`]); `None` keeps
    /// every instrumentation site to one never-taken branch.
    obs: Option<StoreObs>,
    /// Durability hook ([`BundledStore::attach_commit_log`]); `None` —
    /// the default — keeps the commit pipeline to one never-taken
    /// branch, exactly like disabled observability.
    commit_log: Option<Arc<dyn crate::CommitLog<K, V>>>,
    _values: std::marker::PhantomData<V>,
}

impl<K, V, S> BundledStore<K, V, S>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
    S: ShardBackend<K, V>,
{
    /// A store with `splits.len() + 1` range shards supporting
    /// `max_threads` registered threads, reclaiming memory through EBR.
    ///
    /// `splits` must be strictly increasing.
    pub fn new(max_threads: usize, splits: Vec<K>) -> Self {
        Self::with_mode(max_threads, ReclaimMode::Reclaim, splits)
    }

    /// A store with an explicit reclamation mode for every shard.
    pub fn with_mode(max_threads: usize, mode: ReclaimMode, splits: Vec<K>) -> Self {
        assert!(
            splits.windows(2).all(|w| w[0] < w[1]),
            "shard boundaries must be strictly increasing"
        );
        let ctx = RqContext::new(max_threads);
        let shards = (0..=splits.len())
            .map(|_| S::build(max_threads, mode, &ctx))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let intents = (0..shards.len())
            .map(|_| RwLock::new(()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        BundledStore {
            shards,
            splits: splits.into_boxed_slice(),
            ctx,
            max_threads,
            tids: Mutex::new(TidPool {
                next: 0,
                free: Vec::new(),
            }),
            tid_freed: Condvar::new(),
            intents,
            recycle_cursor: AtomicUsize::new(0),
            txn_commits: AtomicU64::new(0),
            txn_conflicts: AtomicU64::new(0),
            txn_validation_failures: AtomicU64::new(0),
            txn_read_set: AtomicU64::new(0),
            group_commits: AtomicU64::new(0),
            grouped_ops: AtomicU64::new(0),
            obs: None,
            commit_log: None,
            _values: std::marker::PhantomData,
        }
    }

    /// Attach a write-ahead commit log. Every subsequent committing write
    /// group is handed to `log` between validation and finalization (see
    /// [`crate::CommitLog`]), so the durable prefix of the log is always
    /// a prefix of the visible history.
    ///
    /// Takes `&mut self`: attach before wrapping the store in an `Arc`
    /// and sharing it — a log cannot appear mid-flight.
    pub fn attach_commit_log(&mut self, log: Arc<dyn crate::CommitLog<K, V>>) {
        self.commit_log = Some(log);
    }

    /// The attached commit log, if any.
    #[must_use]
    pub fn commit_log(&self) -> Option<&Arc<dyn crate::CommitLog<K, V>>> {
        self.commit_log.as_ref()
    }

    /// Force the attached commit log (if any) to stable storage. A no-op
    /// without a log; see [`crate::CommitLog::sync`].
    pub fn sync_commit_log(&self) {
        if let Some(log) = &self.commit_log {
            log.sync();
        }
    }

    /// [`BundledStore::with_mode`] plus observability: every layer of the
    /// store records into instruments registered in `registry` (commit
    /// pipeline stage latencies, conflict/abort counters by cause,
    /// per-shard op counters, cursor hint rates, and the sampled gauges
    /// of [`BundledStore::obs_sample`]), and — when the registry is
    /// live — a flight recorder ([`BundledStore::obs_trace`]) captures
    /// per-thread event rings around every pipeline stage, conflict, and
    /// abort. Pass [`MetricsRegistry::disabled`] for inert instruments,
    /// or use the plain constructors to skip instrumentation entirely
    /// (one never-taken branch per site — the production default).
    pub fn with_obs(
        max_threads: usize,
        mode: ReclaimMode,
        splits: Vec<K>,
        registry: &MetricsRegistry,
    ) -> Self {
        Self::with_obs_trace_capacity(
            max_threads,
            mode,
            splits,
            registry,
            obs::trace::DEFAULT_RING_CAPACITY,
        )
    }

    /// [`BundledStore::with_obs`] with an explicit per-thread flight-
    /// recorder ring capacity (rounded up to a power of two).
    /// `trace_capacity == 0` keeps the metrics but disables tracing —
    /// what the `--check-obs-overhead` panel uses to price the two
    /// instrumentation tiers separately. An inert registry never
    /// traces.
    pub fn with_obs_trace_capacity(
        max_threads: usize,
        mode: ReclaimMode,
        splits: Vec<K>,
        registry: &MetricsRegistry,
        trace_capacity: usize,
    ) -> Self {
        let mut store = Self::with_mode(max_threads, mode, splits);
        let trace = (registry.is_enabled() && trace_capacity > 0)
            .then(|| Arc::new(TraceRecorder::new(max_threads, trace_capacity)));
        store.obs = Some(StoreObs::new(registry, store.shards.len(), trace));
        store
    }

    /// Number of range shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of dense thread ids the store (and every shard) supports.
    #[must_use]
    pub fn max_threads(&self) -> usize {
        self.max_threads
    }

    /// The linearization context shared by every shard. Structures built
    /// from clones of this context join the store's snapshot domain.
    #[must_use]
    pub fn context(&self) -> RqContext {
        self.ctx.clone()
    }

    /// Index of the shard owning `key`.
    #[inline]
    #[must_use]
    pub fn shard_of(&self, key: &K) -> usize {
        self.splits.partition_point(|s| s <= key)
    }

    /// Direct access to shard `i` (diagnostics and tests).
    #[must_use]
    pub fn shard(&self, i: usize) -> &S {
        &self.shards[i]
    }

    /// Register a session: allocates the lowest free dense thread id and
    /// wraps the store so operations need no explicit `tid`.
    ///
    /// When all `max_threads` slots are in use this **blocks** until
    /// another session drops (bursty fleets queue instead of crashing);
    /// use [`BundledStore::try_register`] for a non-blocking variant.
    pub fn register(self: &Arc<Self>) -> StoreHandle<K, V, S> {
        let tid = self.acquire_tid();
        StoreHandle::new(Arc::clone(self), tid)
    }

    /// Non-blocking [`BundledStore::register`]: `None` when every slot is
    /// currently in use.
    pub fn try_register(self: &Arc<Self>) -> Option<StoreHandle<K, V, S>> {
        let tid = self.try_acquire_tid()?;
        Some(StoreHandle::new(Arc::clone(self), tid))
    }

    /// Look up several keys **atomically**: the whole batch is answered
    /// from one leased [`crate::StoreSnapshot`] read, so every key comes
    /// from a single atomic cut of the store — the multi-read observes
    /// each committed transaction entirely or not at all, exactly like a
    /// range query. The result vector is keyed by position.
    ///
    /// (This retires the old per-key convenience semantics, where each
    /// lookup was only individually linearizable and a concurrent
    /// transaction could be observed half-applied across the batch.)
    ///
    /// Like every snapshot read, this briefly occupies `tid`'s tracker
    /// slot: do not call it while a [`crate::StoreSnapshot`] or range
    /// query is live on the same `tid`.
    #[must_use]
    pub fn multi_get(&self, tid: usize, keys: &[K]) -> Vec<Option<V>> {
        if keys.is_empty() {
            return Vec::new();
        }
        let snap = self.snapshot(tid);
        keys.iter().map(|k| snap.get(k)).collect()
    }

    /// Insert several pairs **atomically**: the whole batch is applied as
    /// one cross-shard write transaction ([`BundledStore::apply_txn`]), so
    /// every range query and snapshot read observes either all of the
    /// batch or none of it. Returns how many pairs were newly inserted.
    ///
    /// Duplicate keys keep the first occurrence (set-insert semantics: the
    /// later duplicates would have failed anyway).
    ///
    /// This retires the pre-transactional semantics where each insert was
    /// only *individually* linearizable and a concurrent range query could
    /// observe half of a batch.
    pub fn multi_put(&self, tid: usize, pairs: &[(K, V)]) -> usize {
        let mut sorted: Vec<(K, V)> = pairs.to_vec();
        sorted.sort_by_key(|a| a.0);
        sorted.dedup_by(|a, b| a.0 == b.0);
        let ops: Vec<TxnOp<K, V>> = sorted.into_iter().map(|(k, v)| TxnOp::Put(k, v)).collect();
        self.apply_txn(tid, &ops).into_iter().filter(|b| *b).count()
    }

    /// Atomically apply a multi-key, multi-shard write batch.
    ///
    /// `ops` may be in any order but must target distinct keys (the
    /// [`txn` crate's `WriteTxn`] staging buffer deduplicates for you;
    /// duplicate keys here panic — their combined meaning is ambiguous).
    /// The per-op results (`true` = the put inserted / the remove removed
    /// / the set replaced) come back in the caller's op order.
    ///
    /// [`txn` crate's `WriteTxn`]: StoreHandle::apply_txn
    ///
    /// This is the degenerate (empty-read-set) case of the full
    /// [`BundledStore::apply_rw_txn`] pipeline: with nothing to validate,
    /// the validate phase is vacuous and the transaction can never abort —
    /// exactly the pre-read-set semantics, which is how `multi_put` keeps
    /// its contract unchanged. See `apply_rw_txn` for the protocol.
    pub fn apply_txn(&self, tid: usize, ops: &[TxnOp<K, V>]) -> Vec<bool> {
        self.apply_rw_txn(tid, ops, &[])
            .expect("a transaction with an empty read set cannot fail validation")
    }

    /// Atomically commit a read-write transaction: a multi-key,
    /// multi-shard write batch plus a set of recorded snapshot reads that
    /// must still be current at the commit timestamp (serializability).
    ///
    /// `ops` follows the [`BundledStore::apply_txn`] contract (any order,
    /// distinct keys, results in caller order). `reads` is the read set
    /// recorded through a [`crate::StoreSnapshot`] whose lease must still
    /// be live — all reads were answered at one leased timestamp, and the
    /// snapshot's EBR pins keep the recorded node identities comparable.
    ///
    /// Protocol — an explicit **prepare → validate → advance-clock →
    /// finalize** pipeline (generalizing Algorithm 1 from one structure
    /// to N shards, now with OCC-style read validation):
    ///
    /// 1. **intents**: acquire the write-intent locks of every involved
    ///    shard (written *or* read) in ascending shard order (2PL —
    ///    deadlock-free by ordering, at most one transaction
    ///    prepares/validates per shard at a time);
    /// 2. **prepare**: stage every write through the backend's two-phase
    ///    surface — structural changes apply eagerly under node locks,
    ///    bundle entries stay *pending*, per-key pre/post images are
    ///    recorded for the validate phase;
    /// 3. **validate**: re-walk every recorded read range in the live
    ///    structure ([`ShardBackend::txn_validate`]), lock it (the same
    ///    no-op outcome pinning the write path uses), and compare node
    ///    identities against the recorded read, reconciled with the
    ///    transaction's own staged writes. A stale read aborts the whole
    ///    transaction to the caller ([`TxnAborted`]); a lock race rolls
    ///    back and retries internally with backoff, like any prepare
    ///    conflict;
    /// 4. **advance-clock**: read the shared clock **once**
    ///    ([`RqContext::advance`]) — the transaction's serialization
    ///    point. The validated reads hold *at this timestamp* because
    ///    every lock acquired in steps 2–3 is still held. (A read-only
    ///    transaction stages no pending entries and skips the advance:
    ///    its serialization point is the validation window itself.)
    /// 5. **finalize**: publish every pending entry on every shard with
    ///    that single timestamp and release all locks.
    ///
    /// A snapshot fixed before step 4 sees none of the batch; one fixed
    /// after sees all of it. On abort (conflict or stale read) every
    /// staged entry is neutralized — invisible at every timestamp.
    pub fn apply_rw_txn(
        &self,
        tid: usize,
        ops: &[TxnOp<K, V>],
        reads: &[ShardRead<K>],
    ) -> Result<Vec<bool>, TxnAborted> {
        self.apply_rw_txn_ts(tid, ops, reads).map(|(r, _)| r)
    }

    /// [`BundledStore::apply_rw_txn`] additionally returning the commit
    /// timestamp — the single shared-clock value every write of the
    /// transaction published at (for a read-only transaction, the clock
    /// value its validation window closed over). The `txn` crate threads
    /// this into its receipts so applications can correlate commits with
    /// snapshot timestamps (and with the groups of the `ingest`
    /// front-end, whose tickets carry the same clock values).
    pub fn apply_rw_txn_ts(
        &self,
        tid: usize,
        ops: &[TxnOp<K, V>],
        reads: &[ShardRead<K>],
    ) -> Result<(Vec<bool>, u64), TxnAborted> {
        if ops.is_empty() && reads.is_empty() {
            return Ok((Vec::new(), self.ctx.read()));
        }
        // Work in key order regardless of the caller's op order: the
        // 2PL intent acquisition below is only deadlock-free (and only
        // visits each shard once) when shards are taken in ascending
        // order, so an unsorted batch must never reach it. `order` maps
        // sorted position -> caller position.
        let mut order: Vec<usize> = (0..ops.len()).collect();
        if !ops.windows(2).all(|w| w[0].key() < w[1].key()) {
            order.sort_by(|&a, &b| ops[a].key().cmp(ops[b].key()));
            assert!(
                order.windows(2).all(|w| ops[w[0]].key() < ops[w[1]].key()),
                "apply_txn ops must target distinct keys (stage through \
                 WriteTxn to deduplicate)"
            );
        }
        self.commit_pipeline(tid, ops, &order, reads)
    }

    /// Atomically commit one **group**: a super-batch of operations that
    /// independent sessions submitted to the `ingest` front-end, coalesced
    /// by a committer thread and published here under **one clock
    /// advance**.
    ///
    /// This runs exactly the [`BundledStore::apply_rw_txn`] pipeline
    /// (intents → prepare → advance-clock → finalize; there are no reads
    /// to validate, so commit cannot abort), but with the planning phase
    /// hoisted out: `ops` must already be in strictly ascending key order
    /// — the committer's per-key fold produces that for free — and the
    /// call is accounted as a *group* ([`TxnStats::group_commits`] /
    /// [`TxnStats::grouped_ops`]), which is what makes the clock
    /// amortization measurable (`group_commits / grouped_ops` advances
    /// per op).
    ///
    /// Linearizability: the whole group publishes at the returned
    /// timestamp, so every snapshot observes the group entirely or not at
    /// all; within the group, the committer's queue order is preserved by
    /// the fold that produced `ops`, and each submitter's ticket carries
    /// its own op's outcome. Conflicting writes from *outside* the group
    /// (primitive ops, transactions, other groups) serialize against it
    /// through the per-shard intent locks and node locks as usual.
    ///
    /// # Panics
    ///
    /// If `ops` is not strictly ascending by key (duplicates included —
    /// the ingest layer folds same-key submissions into one effective op
    /// *before* calling this).
    pub fn apply_grouped(&self, tid: usize, ops: &[TxnOp<K, V>]) -> GroupReceipt {
        assert!(
            ops.windows(2).all(|w| w[0].key() < w[1].key()),
            "apply_grouped ops must be strictly ascending by key \
             (the ingest fold produces this order)"
        );
        if ops.is_empty() {
            return GroupReceipt {
                applied: Vec::new(),
                ts: self.ctx.read(),
            };
        }
        let order: Vec<usize> = (0..ops.len()).collect();
        let (applied, ts) = self
            .commit_pipeline(tid, ops, &order, &[])
            .expect("a group has no read set and cannot fail validation");
        self.group_commits.fetch_add(1, Ordering::Relaxed);
        self.grouped_ops
            .fetch_add(ops.len() as u64, Ordering::Relaxed);
        GroupReceipt { applied, ts }
    }

    /// The shared commit pipeline behind [`BundledStore::apply_rw_txn`],
    /// [`BundledStore::apply_txn`] and [`BundledStore::apply_grouped`]:
    /// intents → prepare → validate → advance-clock → finalize, with the
    /// planning (key sorting, duplicate rejection) already done by the
    /// caller (`order` maps sorted position → caller position). Each
    /// shard's key-sorted run stages through one prepare cursor
    /// ([`ShardBackend::txn_cursor`] — one root descent plus short
    /// forward walks per shard).
    fn commit_pipeline(
        &self,
        tid: usize,
        ops: &[TxnOp<K, V>],
        order: &[usize],
        reads: &[ShardRead<K>],
    ) -> Result<(Vec<bool>, u64), TxnAborted> {
        // Contiguous per-shard runs over the sorted order (shards
        // partition the keyspace in key order), ascending by shard.
        let mut groups: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
        for (i, &pos) in order.iter().enumerate() {
            let shard = self.shard_of(ops[pos].key());
            match groups.last_mut() {
                Some((s, r)) if *s == shard => r.end = i + 1,
                _ => groups.push((shard, i..i + 1)),
            }
        }
        // Intent set: every shard the transaction writes or validates,
        // ascending. Written shards need the intent exclusively; shards
        // only *read* take it shared, so disjoint read validations
        // proceed in parallel (overlapping ones arbitrate through node
        // locks like everything else).
        let write_shards: Vec<usize> = groups.iter().map(|(s, _)| *s).collect();
        let mut intent_shards: Vec<usize> = write_shards
            .iter()
            .copied()
            .chain(reads.iter().map(|r| r.shard))
            .collect();
        intent_shards.sort_unstable();
        intent_shards.dedup();
        self.txn_read_set.fetch_add(
            reads
                .iter()
                .map(|r| 1 + r.entries.len() as u64)
                .sum::<u64>(),
            Ordering::Relaxed,
        );

        let mut attempt = 0u32;
        loop {
            let t = self.obs_now();
            self.obs_stage_begin(STAGE_INTENTS, tid, attempt);
            // Phase 1: intents over every involved shard, in ascending
            // shard order (deadlock-free regardless of mode mix).
            let _intents: Vec<IntentGuard<'_>> = intent_shards
                .iter()
                .map(|s| {
                    if write_shards.binary_search(s).is_ok() {
                        IntentGuard::Exclusive(
                            self.intents[*s].write().unwrap_or_else(|p| p.into_inner()),
                        )
                    } else {
                        IntentGuard::Shared(
                            self.intents[*s].read().unwrap_or_else(|p| p.into_inner()),
                        )
                    }
                })
                .collect();
            let t = self.obs_stage(STAGE_INTENTS, tid, t);
            // Phase 2: prepare every write.
            self.obs_stage_begin(STAGE_PREPARE, tid, attempt);
            let mut prepared: Vec<(usize, S::Txn)> = Vec::with_capacity(intent_shards.len());
            let mut results = vec![false; ops.len()];
            let mut failure = None;
            let mut prepare_conflict = false;
            let mut fail_shard = 0usize;
            'prepare: for (shard, range) in &groups {
                let backend = &self.shards[*shard];
                // Write-only pipelines (plain batches, group commits)
                // skip the staged-image bookkeeping only validation reads.
                let txn = if reads.is_empty() {
                    backend.txn_begin_write_only(tid)
                } else {
                    backend.txn_begin(tid)
                };
                let (txn, ok) =
                    self.stage_run(backend, txn, tid, ops, &order[range.clone()], &mut results);
                if !ok {
                    backend.txn_abort(txn);
                    failure = Some(TxnValidateError::Conflict);
                    prepare_conflict = true;
                    fail_shard = *shard;
                    break 'prepare;
                }
                prepared.push((*shard, txn));
            }
            let t = self.obs_stage(STAGE_PREPARE, tid, t);
            // Phase 3: validate every recorded read under the intents,
            // after all of this transaction's writes have staged.
            let validate_ran = failure.is_none();
            if failure.is_none() {
                self.obs_stage_begin(STAGE_VALIDATE, tid, attempt);
                for r in reads {
                    let pos = match prepared.iter().position(|(s, _)| *s == r.shard) {
                        Some(p) => p,
                        None => {
                            // Read-only shard: a token to carry the
                            // validation locks until finalize.
                            prepared.push((r.shard, self.shards[r.shard].txn_begin(tid)));
                            prepared.len() - 1
                        }
                    };
                    let token = &mut prepared[pos].1;
                    if let Err(e) =
                        self.shards[r.shard].txn_validate(token, &r.low, &r.high, &r.entries)
                    {
                        failure = Some(e);
                        fail_shard = r.shard;
                        break;
                    }
                }
            }
            let t = if validate_ran {
                self.obs_stage(STAGE_VALIDATE, tid, t)
            } else {
                t
            };
            if let Some(e) = failure {
                // Roll back every shard staged so far (reverse order).
                while let Some((s, txn)) = prepared.pop() {
                    self.shards[s].txn_abort(txn);
                }
                drop(_intents);
                match e {
                    TxnValidateError::Conflict => {
                        // Lock race: retry the whole transaction after a
                        // bounded backoff. The recorded reads may still be
                        // valid — only the walk lost a race.
                        self.txn_conflicts.fetch_add(1, Ordering::Relaxed);
                        if let Some(o) = &self.obs {
                            if prepare_conflict {
                                o.conflicts_prepare.incr(tid);
                            } else {
                                o.conflicts_validate.incr(tid);
                            }
                            if let Some(tr) = &o.trace {
                                tr.record(
                                    tid,
                                    TraceKind::Conflict,
                                    fail_shard as u32,
                                    (u64::from(attempt) << 1) | u64::from(!prepare_conflict),
                                );
                                if attempt == CONFLICT_BURST_ANOMALY {
                                    tr.note_anomaly(AnomalyCause::ConflictBurst, tid);
                                }
                            }
                        }
                        for _ in 0..(1u32 << attempt.min(10)) {
                            std::hint::spin_loop();
                        }
                        std::thread::yield_now();
                        attempt = attempt.saturating_add(1);
                        continue;
                    }
                    TxnValidateError::Invalidated => {
                        // Stale read: no internal retry can help — the
                        // caller must re-run against a fresh snapshot.
                        self.txn_validation_failures.fetch_add(1, Ordering::Relaxed);
                        if let Some(o) = &self.obs {
                            o.aborts_invalidated.incr(tid);
                            if let Some(tr) = &o.trace {
                                tr.record(
                                    tid,
                                    TraceKind::AbortInvalidated,
                                    fail_shard as u32,
                                    u64::from(attempt),
                                );
                                tr.note_anomaly(AnomalyCause::InvalidatedAbort, tid);
                            }
                        }
                        return Err(TxnAborted);
                    }
                }
            }
            // Phase 4: the transaction's single serialization timestamp.
            // Read-only transactions have no pending entries to stamp and
            // must not advance the clock (an abort-equivalent no-op for
            // every observer); their serialization point is the validation
            // window, during which every read was re-checked and locked.
            self.obs_stage_begin(STAGE_ADVANCE, tid, attempt);
            let ts = if groups.is_empty() {
                self.ctx.read()
            } else {
                self.ctx.advance(tid)
            };
            let t = self.obs_stage(STAGE_ADVANCE, tid, t);
            // Durability hook: log (and per sync policy, fsync) the group
            // *before* any bundle entry is finalized. Concurrent readers
            // are still spinning on the pendings, so an outcome can only
            // become visible after its group is in the log — the durable
            // prefix of the log is always a prefix of the visible
            // history. With no log attached (the default) this is one
            // never-taken branch. Log order is replay-correct: groups
            // with overlapping shard sets hold conflicting intent locks
            // across this call, so their log order matches their
            // timestamp order; disjoint groups commute under replay.
            if !groups.is_empty() {
                if let Some(log) = &self.commit_log {
                    log.log_group(tid, ts, ops, order, &results, &write_shards);
                }
            }
            self.obs_stage_begin(STAGE_FINALIZE, tid, attempt);
            // Phase 5: release every snapshot spinning on the pendings
            // (and every validation lock).
            for (s, txn) in prepared {
                self.shards[s].txn_finalize(txn, ts);
            }
            self.txn_commits.fetch_add(1, Ordering::Relaxed);
            let _ = self.obs_stage(STAGE_FINALIZE, tid, t);
            if let Some(o) = &self.obs {
                o.commits.incr(tid);
                for (shard, range) in &groups {
                    o.shard_ops[*shard].add(tid, range.len() as u64);
                }
            }
            return Ok((results, ts));
        }
    }

    /// Stage one shard's key-sorted op run into `txn` through one prepare
    /// cursor (each seek resumes from the previous op's position).
    /// Returns the token and whether every op staged (`false` = a
    /// [`Conflict`]; the caller aborts the token and retries the
    /// transaction).
    fn stage_run(
        &self,
        backend: &S,
        txn: S::Txn,
        tid: usize,
        ops: &[TxnOp<K, V>],
        order: &[usize],
        results: &mut [bool],
    ) -> (S::Txn, bool) {
        let mut cur = backend.txn_cursor(txn);
        let mut ok = true;
        for &pos in order {
            let staged = match &ops[pos] {
                TxnOp::Put(k, v) => cur.seek_prepare_put(*k, v.clone()),
                TxnOp::Set(k, v) => {
                    // Upsert: stage the removal of any current node
                    // then insert the replacement; both changes share
                    // the transaction's commit timestamp, so every
                    // snapshot sees exactly one value for the key.
                    // Reports whether the key existed. (The second
                    // seek targets the key the first just removed —
                    // the cursor's frontier is right at the gap.)
                    cur.seek_prepare_remove(k).and_then(|existed| {
                        cur.seek_prepare_put(*k, v.clone()).map(|inserted| {
                            debug_assert!(
                                inserted,
                                "upsert re-insert must succeed after staged remove"
                            );
                            existed
                        })
                    })
                }
                TxnOp::Remove(k) => cur.seek_prepare_remove(k),
            };
            match staged {
                Ok(applied) => results[pos] = applied,
                Err(Conflict) => {
                    ok = false;
                    break;
                }
            }
        }
        if let Some(o) = &self.obs {
            let cs = cur.stats();
            o.cursor_hinted.add(tid, cs.hinted);
            o.cursor_descents.add(tid, cs.descents);
        }
        (cur.finish(), ok)
    }

    /// `Instant::now()` only when instrumentation is on (the disabled
    /// store never reads the clock).
    #[inline]
    fn obs_now(&self) -> Option<Instant> {
        if self.obs.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Record the elapsed time since `start` into pipeline-stage
    /// histogram `stage` (plus a `StageEnd` flight-recorder event with
    /// the same duration) and return the start of the next stage.
    #[inline]
    fn obs_stage(&self, stage: usize, tid: usize, start: Option<Instant>) -> Option<Instant> {
        match (&self.obs, start) {
            (Some(o), Some(t0)) => {
                let now = Instant::now();
                let dur = now.duration_since(t0).as_nanos() as u64;
                o.stage_ns[stage].record(tid, dur);
                if let Some(tr) = &o.trace {
                    tr.record(tid, TraceKind::StageEnd, stage as u32, dur);
                }
                Some(now)
            }
            _ => None,
        }
    }

    /// Emit a `StageBegin` flight-recorder event (no-op without a
    /// recorder; the event's payload is the attempt number).
    #[inline]
    fn obs_stage_begin(&self, stage: usize, tid: usize, attempt: u32) {
        if let Some(o) = &self.obs {
            if let Some(tr) = &o.trace {
                tr.record(tid, TraceKind::StageBegin, stage as u32, u64::from(attempt));
            }
        }
    }

    /// The metrics registry this store records into, when built with
    /// [`BundledStore::with_obs`] — the `ingest` front-end registers its
    /// own instruments here so one snapshot covers the whole pipeline.
    #[must_use]
    pub fn obs_registry(&self) -> Option<&MetricsRegistry> {
        self.obs.as_ref().map(|o| &o.registry)
    }

    /// The store's flight recorder, when built with
    /// [`BundledStore::with_obs`] against a live registry — the `ingest`
    /// front-end records its queue events here so one merged dump covers
    /// the whole pipeline, and scenario binaries dump it at exit.
    #[must_use]
    pub fn obs_trace(&self) -> Option<&Arc<TraceRecorder>> {
        self.obs.as_ref().and_then(|o| o.trace.as_ref())
    }

    /// Record one application-level re-run of a read-write transaction
    /// closure after a [`TxnAborted`] (called by the `txn` crate's retry
    /// loop; a no-op without instrumentation).
    pub fn obs_note_rw_retry(&self, tid: usize) {
        if let Some(o) = &self.obs {
            o.rw_retries.incr(tid);
            if let Some(tr) = &o.trace {
                tr.record(tid, TraceKind::RwRetry, obs::trace::NO_SHARD, 0);
            }
        }
    }

    /// Sample every point-in-time gauge: per-shard bundle entries, the
    /// EBR retire backlog summed across shards, active snapshot
    /// announcements, and the shared clock. Counters and histograms
    /// record continuously and need no sampling; call this right before
    /// reading a snapshot so the gauges are current.
    pub fn obs_sample(&self, tid: usize) {
        let Some(o) = &self.obs else { return };
        let (mut pending, mut retired, mut freed) = (0u64, 0u64, 0u64);
        for (i, s) in self.shards.iter().enumerate() {
            o.shard_entries[i].set(s.bundle_entries(tid) as i64);
            let st = s.reclaim_stats();
            pending += st.pending();
            retired += st.retired();
            freed += st.freed();
        }
        o.ebr_pending.set(pending as i64);
        o.ebr_retired.set(retired as i64);
        o.ebr_freed.set(freed as i64);
        o.rq_active.set(self.ctx.active_rqs() as i64);
        o.clock_value.set(self.ctx.read() as i64);
        o.clock_advances.set(self.ctx.advance_calls() as i64);
        if let Some(tr) = &o.trace {
            o.trace_anomalies.set(tr.anomaly_total() as i64);
        }
    }

    /// Sample the gauges ([`BundledStore::obs_sample`]) and snapshot
    /// every instrument in the store's registry; `None` without
    /// instrumentation.
    #[must_use]
    pub fn obs_snapshot(&self, tid: usize) -> Option<MetricsSnapshot> {
        self.obs.as_ref().map(|o| {
            self.obs_sample(tid);
            o.registry.snapshot()
        })
    }

    /// Commit/conflict counters of the transaction path.
    #[must_use]
    pub fn txn_stats(&self) -> TxnStats {
        TxnStats {
            commits: self.txn_commits.load(Ordering::Relaxed),
            conflicts: self.txn_conflicts.load(Ordering::Relaxed),
            validation_failures: self.txn_validation_failures.load(Ordering::Relaxed),
            read_set_size: self.txn_read_set.load(Ordering::Relaxed),
            group_commits: self.group_commits.load(Ordering::Relaxed),
            grouped_ops: self.grouped_ops.load(Ordering::Relaxed),
        }
    }

    /// One bundle-cleanup pass over every shard (Appendix B, store-wide):
    /// prunes entries no active snapshot — on *any* shard — still needs.
    pub fn cleanup_bundles(&self, tid: usize) -> usize {
        self.shards.iter().map(|s| s.cleanup(tid)).sum()
    }

    /// One *chunked* cleanup pass: sweeps the next `chunk` shards after a
    /// shared round-robin cursor instead of walking all shards
    /// sequentially. Interleaving short chunks keeps every shard's bundle
    /// footprint bounded under churn without one long stop-the-shard-scan
    /// pass, and lets several callers (or recycler ticks) cover disjoint
    /// chunks.
    pub fn cleanup_bundles_chunk(&self, tid: usize, chunk: usize) -> usize {
        let n = self.shards.len();
        let chunk = chunk.clamp(1, n);
        let start = self.recycle_cursor.fetch_add(chunk, Ordering::Relaxed) % n;
        (0..chunk)
            .map(|i| self.shards[(start + i) % n].cleanup(tid))
            .sum()
    }

    /// Total bundle entries across all shards (space diagnostic).
    #[must_use]
    pub fn bundle_entries(&self, tid: usize) -> usize {
        self.shards.iter().map(|s| s.bundle_entries(tid)).sum()
    }

    /// Bundle entries held by each shard (space diagnostic, indexed by
    /// shard). The per-shard breakdown is what makes recycler progress and
    /// skewed-churn hotspots visible.
    #[must_use]
    pub fn per_shard_bundle_entries(&self, tid: usize) -> Vec<usize> {
        self.shards.iter().map(|s| s.bundle_entries(tid)).collect()
    }

    /// Spawn one background recycler on reserved thread slot `tid` with
    /// the given delay between passes. Each pass sweeps a round-robin
    /// *chunk* of roughly half the shards ([`cleanup_bundles_chunk`]), so
    /// consecutive passes interleave across the store instead of repeating
    /// one long sequential scan.
    ///
    /// [`cleanup_bundles_chunk`]: BundledStore::cleanup_bundles_chunk
    pub fn spawn_recycler(self: &Arc<Self>, tid: usize, delay: Duration) -> Recycler
    where
        K: 'static,
        V: 'static,
        S: 'static,
    {
        let chunk = self.shards.len().div_ceil(2);
        self.spawn_recycler_chunked(tid, delay, chunk)
    }

    /// [`spawn_recycler`](BundledStore::spawn_recycler) with an explicit
    /// shards-per-pass chunk size.
    pub fn spawn_recycler_chunked(
        self: &Arc<Self>,
        tid: usize,
        delay: Duration,
        chunk: usize,
    ) -> Recycler
    where
        K: 'static,
        V: 'static,
        S: 'static,
    {
        let store = Arc::clone(self);
        Recycler::spawn(delay, move || {
            store.cleanup_bundles_chunk(tid, chunk);
        })
    }
}

// Deliberately unbounded: `StoreHandle`'s `Drop` (which has no bounds)
// must be able to return its tid.
impl<K, V, S> BundledStore<K, V, S> {
    fn pop_tid(pool: &mut TidPool, cap: usize) -> Option<usize> {
        if let Some(tid) = pool.free.pop() {
            return Some(tid);
        }
        if pool.next < cap {
            let tid = pool.next;
            pool.next += 1;
            return Some(tid);
        }
        None
    }

    /// Blocking allocation: waits on the condvar until a session slot is
    /// released. Fair enough for bursty fleets — waiters wake one at a
    /// time as handles drop.
    pub(crate) fn acquire_tid(&self) -> usize {
        let mut pool = self.tids.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(tid) = Self::pop_tid(&mut pool, self.max_threads) {
                return tid;
            }
            pool = self.tid_freed.wait(pool).unwrap_or_else(|p| p.into_inner());
        }
    }

    pub(crate) fn try_acquire_tid(&self) -> Option<usize> {
        let mut pool = self.tids.lock().unwrap_or_else(|p| p.into_inner());
        Self::pop_tid(&mut pool, self.max_threads)
    }

    pub(crate) fn release_tid(&self, tid: usize) {
        self.tids
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .free
            .push(tid);
        self.tid_freed.notify_one();
    }
}

impl<K, V, S> ConcurrentSet<K, V> for BundledStore<K, V, S>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
    S: ShardBackend<K, V>,
{
    fn insert(&self, tid: usize, key: K, value: V) -> bool {
        let shard = self.shard_of(&key);
        if let Some(o) = &self.obs {
            o.shard_ops[shard].incr(tid);
        }
        self.shards[shard].insert(tid, key, value)
    }

    fn remove(&self, tid: usize, key: &K) -> bool {
        let shard = self.shard_of(key);
        if let Some(o) = &self.obs {
            o.shard_ops[shard].incr(tid);
        }
        self.shards[shard].remove(tid, key)
    }

    fn contains(&self, tid: usize, key: &K) -> bool {
        let shard = self.shard_of(key);
        if let Some(o) = &self.obs {
            o.shard_ops[shard].incr(tid);
        }
        self.shards[shard].contains(tid, key)
    }

    fn get(&self, tid: usize, key: &K) -> Option<V> {
        let shard = self.shard_of(key);
        if let Some(o) = &self.obs {
            o.shard_ops[shard].incr(tid);
        }
        self.shards[shard].get(tid, key)
    }

    fn len(&self, tid: usize) -> usize {
        self.shards.iter().map(|s| s.len(tid)).sum()
    }
}

impl<K, V, S> RangeQuerySet<K, V> for BundledStore<K, V, S>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
    S: ShardBackend<K, V>,
{
    /// Linearizable **cross-shard** range query.
    ///
    /// Reads the shared clock once (the query's linearization point),
    /// announces that snapshot in the shared tracker — pinning bundle
    /// reclamation on *every* shard — and then collects each overlapping
    /// shard's fragment at that fixed timestamp. Shards partition the
    /// keyspace in key order, so concatenating the fragments yields the
    /// snapshot in ascending key order with no shard skew: an update
    /// linearized before the clock read is visible in every fragment, one
    /// linearized after it in none.
    fn range_query(&self, tid: usize, low: &K, high: &K, out: &mut Vec<(K, V)>) -> usize {
        out.clear();
        if low > high {
            return 0;
        }
        let first = self.shard_of(low);
        let last = self.shard_of(high);
        if let Some(o) = &self.obs {
            // One op per overlapping shard: fragment collection is the
            // per-shard work a range query imposes.
            for ops in &o.shard_ops[first..=last] {
                ops.incr(tid);
            }
        }
        // Pin every shard we will traverse BEFORE fixing the snapshot: a
        // node removed with a timestamp newer than the snapshot retires
        // only after the clock read below, so these pins keep every node
        // (and bundle entry) the fixed-timestamp traversals can touch
        // alive across the whole multi-shard collection.
        let _guards: Vec<ebr::Guard<'_>> = self.shards[first..=last]
            .iter()
            .map(|s| s.pin(tid))
            .collect();
        // Linearization point: one clock read for the whole store.
        let ts = self.ctx.start_rq(tid);
        if first == last {
            self.shards[first].range_query_at(tid, ts, low, high, out);
        } else {
            let mut scratch = Vec::new();
            for shard in &self.shards[first..=last] {
                // Shards only hold keys inside their boundary range, so the
                // unclamped bounds are correct for every fragment.
                shard.range_query_at(tid, ts, low, high, &mut scratch);
                out.append(&mut scratch);
            }
        }
        self.ctx.finish_rq(tid);
        out.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CitrusStore, LazyListStore, SkipListStore};
    use std::collections::BTreeMap;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn uniform_splits_partition_evenly() {
        assert_eq!(uniform_splits(1, 100), vec![]);
        assert_eq!(uniform_splits(4, 100), vec![25, 50, 75]);
        assert_eq!(uniform_splits(3, 9), vec![3, 6]);
    }

    #[test]
    fn keys_route_to_expected_shards() {
        let s = SkipListStore::<u64, u64>::new(1, uniform_splits(4, 100));
        assert_eq!(s.shard_count(), 4);
        assert_eq!(s.shard_of(&0), 0);
        assert_eq!(s.shard_of(&24), 0);
        assert_eq!(s.shard_of(&25), 1);
        assert_eq!(s.shard_of(&74), 2);
        assert_eq!(s.shard_of(&75), 3);
        assert_eq!(
            s.shard_of(&1_000_000),
            3,
            "overflow keys land in the last shard"
        );
        for k in [0u64, 24, 25, 74, 75, 99, 1_000_000] {
            assert!(s.insert(0, k, k));
        }
        // Each key is only in its own shard.
        assert_eq!(s.shard(0).len(0), 2);
        assert_eq!(s.shard(3).len(0), 3);
        assert_eq!(s.len(0), 7);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_splits_are_rejected() {
        let _ = SkipListStore::<u64, u64>::new(1, vec![10, 10]);
    }

    fn basic_ops<S: ShardBackend<u64, u64>>(splits: Vec<u64>) {
        let s = BundledStore::<u64, u64, S>::new(2, splits);
        let mut model = BTreeMap::new();
        let mut seed = 0x5eed_u64;
        for _ in 0..4000 {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let k = seed % 300;
            match seed % 3 {
                0 => assert_eq!(s.insert(0, k, k), model.insert(k, k).is_none()),
                1 => assert_eq!(s.remove(0, &k), model.remove(&k).is_some()),
                _ => assert_eq!(s.get(0, &k), model.get(&k).copied()),
            }
        }
        assert_eq!(s.len(0), model.len());
        let mut out = Vec::new();
        s.range_query(1, &40, &260, &mut out);
        let expected: Vec<(u64, u64)> = model.range(40..=260).map(|(k, v)| (*k, *v)).collect();
        assert_eq!(out, expected, "cross-shard range must equal the model");
    }

    #[test]
    fn model_equivalence_on_all_backends() {
        basic_ops::<skiplist::BundledSkipList<u64, u64>>(uniform_splits(4, 300));
        basic_ops::<lazylist::BundledLazyList<u64, u64>>(uniform_splits(3, 300));
        basic_ops::<citrus::BundledCitrusTree<u64, u64>>(uniform_splits(5, 300));
        // Degenerate single-shard store must also behave.
        basic_ops::<skiplist::BundledSkipList<u64, u64>>(vec![]);
    }

    #[test]
    fn multi_get_and_multi_put() {
        let s = LazyListStore::<u64, u64>::new(1, uniform_splits(3, 90));
        assert_eq!(s.multi_put(0, &[(1, 10), (40, 400), (80, 800), (1, 99)]), 3);
        assert_eq!(
            s.multi_get(0, &[1, 40, 80, 7]),
            vec![Some(10), Some(400), Some(800), None]
        );
        assert_eq!(s.len(0), 3);
    }

    #[test]
    fn handles_allocate_and_recycle_tids() {
        let s = Arc::new(CitrusStore::<u64, u64>::new(2, uniform_splits(2, 100)));
        let h0 = s.register();
        assert_eq!(h0.tid(), 0);
        {
            let h1 = s.register();
            assert_eq!(h1.tid(), 1);
            h1.insert(60, 6);
        }
        // Dropped handle's slot is reused.
        let h1b = s.register();
        assert_eq!(h1b.tid(), 1);
        h0.insert(10, 1);
        assert_eq!(h1b.get(&10), Some(1));
        assert_eq!(h0.range_query_vec(&0, &100), vec![(10, 1), (60, 6)]);
    }

    #[test]
    fn try_register_returns_none_when_exhausted() {
        let s = Arc::new(SkipListStore::<u64, u64>::new(1, vec![]));
        let a = s.try_register().expect("first slot is free");
        assert_eq!(a.tid(), 0);
        assert!(s.try_register().is_none(), "pool exhausted");
        drop(a);
        assert!(s.try_register().is_some(), "slot returned on drop");
    }

    #[test]
    fn register_drop_register_tight_loop_never_blocks_with_full_pool() {
        // Regression guard for `StoreHandle`'s Drop returning its tid to
        // the pool: with every slot in use, a register->drop->register
        // loop must always find the just-released slot instead of parking
        // forever on the condvar. Run it off-thread with a deadline so a
        // regression fails the test rather than hanging the suite.
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let worker = std::thread::spawn(move || {
            let s = Arc::new(SkipListStore::<u64, u64>::new(2, uniform_splits(2, 100)));
            // One slot parked for the whole test: the pool is full once
            // the loop's handle is live.
            let _parked = s.register();
            for i in 0..10_000u64 {
                let h = s.register();
                assert_eq!(h.tid(), 1, "the released slot is reused");
                if i % 128 == 0 {
                    h.insert(i % 100, i);
                }
                drop(h);
            }
            done_tx.send(()).unwrap();
        });
        done_rx
            .recv_timeout(Duration::from_secs(30))
            .expect("register->drop->register loop wedged on the tid condvar");
        worker.join().unwrap();
    }

    #[test]
    fn register_blocks_until_a_slot_frees_in_a_burst() {
        // 8 worker threads share a 2-slot session pool: every registration
        // must eventually succeed by waiting on the condvar (the old
        // behaviour panicked the whole fleet).
        const WORKERS: usize = 8;
        const ROUNDS: usize = 25;
        let s = Arc::new(SkipListStore::<u64, u64>::new(2, uniform_splits(2, 1_000)));
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for r in 0..ROUNDS {
                        let h = s.register();
                        assert!(h.tid() < 2, "dense slot discipline");
                        let k = (w * ROUNDS + r) as u64 % 1_000;
                        h.insert(k, k);
                        let _ = h.get(&k);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Both slots are free again afterwards.
        let a = s.try_register().unwrap();
        let b = s.try_register().unwrap();
        assert!(s.try_register().is_none());
        drop((a, b));
    }

    fn txn_roundtrip<S: ShardBackend<u64, u64>>(label: &str) {
        let s = BundledStore::<u64, u64, S>::new(2, uniform_splits(4, 400));
        s.insert(0, 10, 10);
        s.insert(0, 250, 250);
        // A cross-shard transaction mixing puts, a remove, and no-ops.
        let ops = vec![
            TxnOp::Put(5, 50),
            TxnOp::Remove(10),
            TxnOp::Put(150, 151),
            TxnOp::Remove(240),
            TxnOp::Put(250, 999),
            TxnOp::Put(399, 390),
        ];
        let results = s.apply_txn(0, &ops);
        assert_eq!(
            results,
            vec![true, true, true, false, false, true],
            "{label}: per-op outcomes"
        );
        let mut out = Vec::new();
        s.range_query(1, &0, &400, &mut out);
        assert_eq!(
            out,
            vec![(5, 50), (150, 151), (250, 250), (399, 390)],
            "{label}: committed state"
        );
        let stats = s.txn_stats();
        assert_eq!(stats.commits, 1, "{label}");
        // Empty transactions are free.
        assert!(s.apply_txn(0, &[]).is_empty());
        assert_eq!(s.txn_stats().commits, 1, "{label}: empty txn not counted");
    }

    #[test]
    fn apply_txn_roundtrip_on_all_backends() {
        txn_roundtrip::<skiplist::BundledSkipList<u64, u64>>("skiplist");
        txn_roundtrip::<lazylist::BundledLazyList<u64, u64>>("lazylist");
        txn_roundtrip::<citrus::BundledCitrusTree<u64, u64>>("citrus");
    }

    fn txn_set_upserts<S: ShardBackend<u64, u64>>(label: &str) {
        let s = BundledStore::<u64, u64, S>::new(1, uniform_splits(3, 300));
        s.insert(0, 10, 1);
        let ops = vec![
            TxnOp::Set(10, 2),   // replace existing
            TxnOp::Set(150, 5),  // insert fresh
            TxnOp::Put(250, 25), // plain insert alongside
        ];
        let results = s.apply_txn(0, &ops);
        assert_eq!(
            results,
            vec![true, false, true],
            "{label}: Set reports whether the key existed"
        );
        assert_eq!(s.get(0, &10), Some(2), "{label}: value replaced");
        assert_eq!(s.get(0, &150), Some(5));
        let mut out = Vec::new();
        s.range_query(0, &0, &300, &mut out);
        assert_eq!(out, vec![(10, 2), (150, 5), (250, 25)], "{label}");
    }

    #[test]
    fn apply_txn_accepts_unsorted_ops_and_keeps_caller_order() {
        let s = SkipListStore::<u64, u64>::new(1, uniform_splits(4, 400));
        s.insert(0, 50, 5);
        // Unsorted, with two keys in the same shard (10 and 50): internal
        // key-ordering must still take each shard's intent exactly once.
        let ops = vec![
            TxnOp::Put(350, 35),
            TxnOp::Remove(50),
            TxnOp::Put(10, 1),
            TxnOp::Put(150, 15),
        ];
        let results = s.apply_txn(0, &ops);
        assert_eq!(results, vec![true, true, true, true], "caller op order");
        let mut out = Vec::new();
        s.range_query(0, &0, &400, &mut out);
        assert_eq!(out, vec![(10, 1), (150, 15), (350, 35)]);
    }

    #[test]
    #[should_panic(expected = "distinct keys")]
    fn apply_txn_rejects_duplicate_keys() {
        let s = SkipListStore::<u64, u64>::new(1, uniform_splits(2, 100));
        let _ = s.apply_txn(0, &[TxnOp::Put(1, 1), TxnOp::Put(1, 2)]);
    }

    #[test]
    fn apply_txn_set_upserts_on_all_backends() {
        txn_set_upserts::<skiplist::BundledSkipList<u64, u64>>("skiplist");
        txn_set_upserts::<lazylist::BundledLazyList<u64, u64>>("lazylist");
        txn_set_upserts::<citrus::BundledCitrusTree<u64, u64>>("citrus");
    }

    fn rw_txn_pipeline<S: ShardBackend<u64, u64>>(label: &str) {
        let s = BundledStore::<u64, u64, S>::new(2, uniform_splits(4, 400));
        s.insert(0, 10, 1);
        s.insert(0, 250, 2);

        // A read-modify-write across shards: read 10 and the (empty)
        // range around 300, write both based on the reads.
        let mut reads = Vec::new();
        let snap = s.snapshot(0);
        assert_eq!(snap.get_recorded(&10, &mut reads), Some(1));
        let mut out = Vec::new();
        snap.range_recorded(&300, &390, &mut out, &mut reads);
        assert!(out.is_empty());
        let ops = vec![TxnOp::Set(10, 100), TxnOp::Put(300, 3)];
        let results = s
            .apply_rw_txn(0, &ops, &reads)
            .expect("no interference, commit must succeed");
        drop(snap);
        assert_eq!(results, vec![true, true], "{label}");
        assert_eq!(s.get(0, &10), Some(100), "{label}");
        assert_eq!(s.get(0, &300), Some(3), "{label}");
        let stats = s.txn_stats();
        assert_eq!(stats.commits, 1, "{label}");
        assert_eq!(stats.validation_failures, 0, "{label}");
        assert!(stats.read_set_size >= 3, "{label}: fragments + entries");

        // Stale read: key 10 changes between the snapshot and the commit.
        let mut reads = Vec::new();
        let snap = s.snapshot(0);
        assert_eq!(snap.get_recorded(&10, &mut reads), Some(100));
        s.remove(1, &10);
        let err = s.apply_rw_txn(0, &[TxnOp::Set(10, 999)], &reads);
        drop(snap);
        assert_eq!(err, Err(TxnAborted), "{label}: stale read must abort");
        assert_eq!(s.get(0, &10), None, "{label}: aborted write invisible");
        assert_eq!(s.txn_stats().validation_failures, 1, "{label}");

        // Phantom: the read-empty range gains a key before commit.
        let mut reads = Vec::new();
        let snap = s.snapshot(0);
        snap.range_recorded(&320, &340, &mut out, &mut reads);
        s.insert(1, 330, 33);
        let err = s.apply_rw_txn(0, &[TxnOp::Put(399, 9)], &reads);
        drop(snap);
        assert_eq!(err, Err(TxnAborted), "{label}: phantom must abort");
        assert!(!s.contains(0, &399), "{label}");

        // Read-only transaction: validates without advancing the clock.
        let clock = s.context().read();
        let mut reads = Vec::new();
        let snap = s.snapshot(0);
        assert_eq!(snap.get_recorded(&300, &mut reads), Some(3));
        assert_eq!(s.apply_rw_txn(0, &[], &reads), Ok(Vec::new()), "{label}");
        drop(snap);
        assert_eq!(
            s.context().read(),
            clock,
            "{label}: read-only txn is clock-free"
        );
    }

    #[test]
    fn rw_txn_pipeline_on_all_backends() {
        rw_txn_pipeline::<skiplist::BundledSkipList<u64, u64>>("skiplist");
        rw_txn_pipeline::<lazylist::BundledLazyList<u64, u64>>("lazylist");
        rw_txn_pipeline::<citrus::BundledCitrusTree<u64, u64>>("citrus");
    }

    /// The transactional analogue of `no_shard_skew`: a writer commits
    /// batches that touch every shard; every concurrent snapshot must
    /// contain each batch entirely or not at all.
    fn no_partial_batches<S: ShardBackend<u64, u64> + 'static>(shards: usize) {
        const BATCHES: u64 = 400;
        let span = 1_000u64;
        let n = shards as u64;
        let splits: Vec<u64> = (1..n).map(|i| i * span).collect();
        let s = Arc::new(BundledStore::<u64, u64, S>::new(3, splits));
        let writer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for b in 0..BATCHES {
                    // One key per shard, all tagged with the batch id.
                    let ops: Vec<TxnOp<u64, u64>> =
                        (0..n).map(|sh| TxnOp::Put(sh * span + b, b)).collect();
                    let results = s.apply_txn(0, &ops);
                    assert!(results.iter().all(|r| *r));
                }
            })
        };
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    s.range_query(1, &0, &(n * span), &mut out);
                    assert!(
                        out.len().is_multiple_of(shards),
                        "snapshot holds a partial transaction: {} keys over {shards} shards",
                        out.len()
                    );
                    // Each batch is all-present or all-absent.
                    let mut per_batch = std::collections::HashMap::new();
                    for (k, v) in &out {
                        assert_eq!(k % span, *v);
                        *per_batch.entry(*v).or_insert(0usize) += 1;
                    }
                    for (batch, count) in per_batch {
                        assert_eq!(count, shards, "batch {batch} partially visible");
                    }
                }
            })
        };
        writer.join().unwrap();
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
        assert_eq!(s.len(0), (BATCHES * n) as usize);
        assert_eq!(s.txn_stats().commits, BATCHES);
    }

    #[test]
    fn cross_shard_transactions_are_never_partially_visible() {
        no_partial_batches::<skiplist::BundledSkipList<u64, u64>>(3);
        no_partial_batches::<lazylist::BundledLazyList<u64, u64>>(2);
        no_partial_batches::<citrus::BundledCitrusTree<u64, u64>>(4);
    }

    fn grouped_commit<S: ShardBackend<u64, u64>>(label: &str) {
        let s = BundledStore::<u64, u64, S>::new(2, uniform_splits(4, 400));
        s.insert(0, 10, 10);
        s.insert(0, 250, 250);
        // A key-sorted super-batch spanning three shards: puts, a remove,
        // and no-ops, published under one clock advance.
        let before_calls = s.context().advance_calls();
        let ops = vec![
            TxnOp::Put(5, 50),
            TxnOp::Remove(10),
            TxnOp::Put(150, 151),
            TxnOp::Remove(240),
            TxnOp::Set(250, 999),
            TxnOp::Put(399, 390),
        ];
        let receipt = s.apply_grouped(0, &ops);
        assert_eq!(
            receipt.applied,
            vec![true, true, true, false, true, true],
            "{label}: per-op outcomes"
        );
        assert_eq!(
            s.context().advance_calls(),
            before_calls + 1,
            "{label}: the whole group advanced the clock once"
        );
        assert_eq!(
            receipt.ts,
            s.context().read(),
            "{label}: receipt carries the commit timestamp"
        );
        let mut out = Vec::new();
        s.range_query(1, &0, &400, &mut out);
        assert_eq!(
            out,
            vec![(5, 50), (150, 151), (250, 999), (399, 390)],
            "{label}: committed state"
        );
        let stats = s.txn_stats();
        assert_eq!(stats.group_commits, 1, "{label}");
        assert_eq!(stats.grouped_ops, 6, "{label}");
        assert_eq!(stats.commits, 1, "{label}: a group is one commit");
        // Empty groups are free (and report the current clock).
        let empty = s.apply_grouped(0, &[]);
        assert!(empty.applied.is_empty());
        assert_eq!(empty.ts, s.context().read());
        assert_eq!(s.txn_stats().group_commits, 1, "{label}: empty not counted");
    }

    #[test]
    fn apply_grouped_on_all_backends() {
        grouped_commit::<skiplist::BundledSkipList<u64, u64>>("skiplist");
        grouped_commit::<lazylist::BundledLazyList<u64, u64>>("lazylist");
        grouped_commit::<citrus::BundledCitrusTree<u64, u64>>("citrus");
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn apply_grouped_rejects_unsorted_ops() {
        let s = SkipListStore::<u64, u64>::new(1, uniform_splits(2, 100));
        let _ = s.apply_grouped(0, &[TxnOp::Put(7, 7), TxnOp::Put(3, 3)]);
    }

    #[test]
    fn apply_rw_txn_ts_returns_the_commit_timestamp() {
        let s = SkipListStore::<u64, u64>::new(1, uniform_splits(2, 100));
        let (results, ts) = s
            .apply_rw_txn_ts(0, &[TxnOp::Put(10, 1), TxnOp::Put(60, 6)], &[])
            .expect("no reads, cannot abort");
        assert_eq!(results, vec![true, true]);
        assert_eq!(ts, s.context().read(), "writes published at `ts`");
        // An empty transaction reports the current clock without advancing.
        let (empty, ts2) = s.apply_rw_txn_ts(0, &[], &[]).unwrap();
        assert!(empty.is_empty());
        assert_eq!(ts2, ts);
    }

    /// `multi_get` answers every key from one leased snapshot: a
    /// concurrently-committing transaction that rewrites two keys in
    /// lockstep can never be observed half-applied across the batch.
    #[test]
    fn multi_get_is_one_atomic_cut() {
        let s = Arc::new(SkipListStore::<u64, u64>::new(2, uniform_splits(4, 400)));
        let (a, b) = (10u64, 350u64); // different shards
        s.apply_txn(0, &[TxnOp::Put(a, 0), TxnOp::Put(b, 0)]);
        let writer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for round in 1..400u64 {
                    s.apply_txn(0, &[TxnOp::Set(a, round), TxnOp::Set(b, round)]);
                }
            })
        };
        for _ in 0..400 {
            let got = s.multi_get(1, &[a, b]);
            assert_eq!(
                got[0], got[1],
                "multi_get observed a transaction half-applied: {got:?}"
            );
        }
        writer.join().unwrap();
    }

    /// Read-only transactions take *shared* intents: many concurrent
    /// validations on the same shard must all commit (and writers still
    /// serialize against them correctly).
    #[test]
    fn read_only_validations_share_the_intent_lock() {
        const READERS: usize = 4;
        let s = Arc::new(SkipListStore::<u64, u64>::new(
            READERS + 1,
            uniform_splits(2, 100),
        ));
        s.insert(0, 10, 1);
        s.insert(0, 60, 6);
        let readers: Vec<_> = (0..READERS)
            .map(|r| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let tid = r + 1;
                    for _ in 0..200 {
                        let mut reads = Vec::new();
                        let snap = s.snapshot(tid);
                        let v = snap.get_recorded(&10, &mut reads);
                        let ok = s.apply_rw_txn(tid, &[], &reads).is_ok();
                        drop(snap);
                        // The key is never touched, so validation always
                        // holds and the read is always current.
                        assert!(ok, "uncontended read-only validation aborted");
                        assert_eq!(v, Some(1));
                    }
                })
            })
            .collect();
        // A concurrent writer on the *other* key of the same shard:
        // exclusive intents interleave with the shared ones without
        // deadlock or lost writes.
        for i in 0..200u64 {
            s.apply_txn(0, &[TxnOp::Set(60, i)]);
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(s.get(0, &60), Some(199));
    }

    #[test]
    fn multi_put_is_atomic_and_keeps_first_wins_semantics() {
        let s = LazyListStore::<u64, u64>::new(2, uniform_splits(3, 90));
        // Unsorted input with a duplicate: first occurrence wins.
        assert_eq!(s.multi_put(0, &[(80, 800), (1, 10), (40, 400), (1, 99)]), 3);
        assert_eq!(s.get(0, &1), Some(10));
        assert_eq!(s.txn_stats().commits, 1, "one transaction for the batch");
        // Re-putting existing keys is a no-op transaction.
        assert_eq!(s.multi_put(0, &[(1, 0), (40, 0), (41, 410)]), 1);
        assert_eq!(s.get(0, &40), Some(400));
        assert_eq!(s.len(0), 4);
    }

    #[test]
    fn chunked_cleanup_covers_all_shards_round_robin() {
        let s = SkipListStore::<u64, u64>::new(2, uniform_splits(4, 400));
        for k in 0..400u64 {
            s.insert(0, k, k);
        }
        for _ in 0..4 {
            for k in 0..400u64 {
                s.remove(0, &k);
                s.insert(0, k, k);
            }
        }
        let before = s.per_shard_bundle_entries(0);
        assert_eq!(before.len(), 4);
        // Four chunk-1 passes advance the cursor across every shard.
        let mut reclaimed = 0;
        for _ in 0..4 {
            reclaimed += s.cleanup_bundles_chunk(1, 1);
        }
        assert!(reclaimed > 0);
        let after = s.per_shard_bundle_entries(0);
        for (i, (b, a)) in before.iter().zip(after.iter()).enumerate() {
            assert!(a < b, "shard {i} was never swept ({b} -> {a})");
        }
        assert_eq!(s.bundle_entries(0), after.iter().sum::<usize>());
    }

    /// The signature cross-shard atomicity check: one writer inserts keys
    /// in an order that cycles through the shards on *every* insert, so two
    /// consecutive writes always land on different shards. A linearizable
    /// snapshot must contain a prefix of the write order; a snapshot with a
    /// later write but not an earlier one proves shard skew.
    fn no_shard_skew<S: ShardBackend<u64, u64> + 'static>(shards: usize) {
        const PER_SHARD: u64 = 500;
        let span = PER_SHARD; // shard i covers [i*span, (i+1)*span)
        let n = shards as u64;
        let splits: Vec<u64> = (1..n).map(|i| i * span).collect();
        let s = Arc::new(BundledStore::<u64, u64, S>::new(3, splits));
        // Write order: (base 0 of every shard), (base 1 of every shard), ...
        // Key sh*span + base has write index base*n + sh.
        let writer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for base in 0..PER_SHARD {
                    for sh in 0..n {
                        assert!(s.insert(0, sh * span + base, base));
                    }
                }
            })
        };
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                let mut idx = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    s.range_query(1, &0, &(n * span), &mut out);
                    // Map each observed key back to its write index; a
                    // linearizable snapshot is a gap-free prefix of writes.
                    idx.clear();
                    idx.extend(out.iter().map(|(k, _)| (k % span) * n + k / span));
                    idx.sort_unstable();
                    for (i, v) in idx.iter().enumerate() {
                        assert_eq!(
                            *v, i as u64,
                            "snapshot misses an earlier write: shard skew in cross-shard range query"
                        );
                    }
                }
            })
        };
        writer.join().unwrap();
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
        assert_eq!(s.len(0), (PER_SHARD * n) as usize);
    }

    #[test]
    fn cross_shard_snapshots_have_no_skew() {
        no_shard_skew::<skiplist::BundledSkipList<u64, u64>>(2);
        no_shard_skew::<skiplist::BundledSkipList<u64, u64>>(7);
        no_shard_skew::<lazylist::BundledLazyList<u64, u64>>(3);
        no_shard_skew::<citrus::BundledCitrusTree<u64, u64>>(4);
    }

    #[test]
    fn recycler_prunes_across_shards_under_load() {
        let s = Arc::new(SkipListStore::<u64, u64>::new(3, uniform_splits(4, 400)));
        for k in 0..400u64 {
            s.insert(0, k, k);
        }
        for _ in 0..5 {
            for k in 0..400u64 {
                s.remove(0, &k);
                s.insert(0, k, k);
            }
        }
        let before = s.bundle_entries(0);
        let recycler = s.spawn_recycler(2, Duration::from_millis(1));
        // Concurrent queries while the recycler runs.
        let mut out = Vec::new();
        for _ in 0..200 {
            s.range_query(1, &0, &400, &mut out);
            assert_eq!(out.len(), 400);
        }
        while recycler.passes() < 3 {
            std::thread::yield_now();
        }
        recycler.stop();
        let after = s.bundle_entries(0);
        assert!(
            after < before,
            "recycler must prune stale entries ({before} -> {after})"
        );
        s.range_query(1, &0, &400, &mut out);
        assert_eq!(out.len(), 400);
    }

    #[test]
    fn empty_and_inverted_ranges() {
        let s = SkipListStore::<u64, u64>::new(1, uniform_splits(4, 100));
        let mut out = vec![(1u64, 1u64)];
        assert_eq!(s.range_query(0, &50, &40, &mut out), 0);
        assert!(out.is_empty(), "inverted range clears the output");
        assert_eq!(s.range_query(0, &0, &99, &mut out), 0);
    }

    fn obs_covers_every_layer<S: ShardBackend<u64, u64>>(label: &str) {
        let reg = obs::MetricsRegistry::new();
        let s = BundledStore::<u64, u64, S>::with_obs(
            2,
            ReclaimMode::Reclaim,
            uniform_splits(4, 400),
            &reg,
        );
        // Primitive ops land in their shard's op counter.
        s.insert(0, 10, 1);
        s.insert(0, 110, 11);
        assert!(s.contains(0, &10));
        // A grouped commit spanning three shards drives the pipeline.
        let _ = s.apply_grouped(
            0,
            &[TxnOp::Put(5, 5), TxnOp::Put(150, 15), TxnOp::Put(399, 39)],
        );
        // A stale read aborts and is counted by cause.
        let mut reads = Vec::new();
        let snap = s.snapshot(0);
        assert_eq!(snap.get_recorded(&10, &mut reads), Some(1));
        s.remove(1, &10);
        assert_eq!(
            s.apply_rw_txn(0, &[TxnOp::Set(10, 9)], &reads),
            Err(TxnAborted),
            "{label}"
        );
        drop(snap);
        // A cross-shard range query counts one op per overlapping shard.
        let mut out = Vec::new();
        s.range_query(0, &0, &400, &mut out);

        let snap = s.obs_snapshot(0).expect("instrumented store snapshots");
        for stage in crate::observe::PIPELINE_STAGES {
            let name = format!("store.pipeline.{stage}_ns");
            match snap.get(&name) {
                Some(obs::SnapshotValue::Histogram(h)) => {
                    assert!(h.count >= 1, "{label}: {name} never recorded");
                    assert_eq!(h.bucket_total(), h.count, "{label}: {name}");
                }
                other => panic!("{label}: {name} missing or wrong kind: {other:?}"),
            }
        }
        let counter = |name: &str| match snap.get(name) {
            Some(obs::SnapshotValue::Counter(c)) => *c,
            other => panic!("{label}: {name} missing or wrong kind: {other:?}"),
        };
        assert!(counter("store.txn.commits") >= 1, "{label}");
        assert_eq!(counter("store.txn.aborts.invalidated"), 1, "{label}");
        for shard in 0..s.shard_count() {
            assert!(
                counter(&format!("store.shard{shard}.ops")) >= 1,
                "{label}: shard {shard} ops never counted"
            );
        }
        assert!(
            counter("store.cursor.hinted") + counter("store.cursor.descents") >= 3,
            "{label}: cursor seeks unaccounted"
        );
        let gauge = |name: &str| match snap.get(name) {
            Some(obs::SnapshotValue::Gauge(g)) => *g,
            other => panic!("{label}: {name} missing or wrong kind: {other:?}"),
        };
        assert!(gauge("store.clock.value") >= 1, "{label}");
        assert!(gauge("store.clock.advances") >= 1, "{label}");
        assert_eq!(gauge("store.rq.active_queries"), 0, "{label}: none live");
        assert!(gauge("store.ebr.retired") >= 0, "{label}");
    }

    #[test]
    fn obs_covers_every_layer_on_all_backends() {
        obs_covers_every_layer::<skiplist::BundledSkipList<u64, u64>>("skiplist");
        obs_covers_every_layer::<lazylist::BundledLazyList<u64, u64>>("lazylist");
        obs_covers_every_layer::<citrus::BundledCitrusTree<u64, u64>>("citrus");
    }

    #[test]
    fn uninstrumented_store_snapshots_nothing() {
        let s = SkipListStore::<u64, u64>::new(1, uniform_splits(2, 100));
        s.insert(0, 10, 1);
        assert!(s.obs_registry().is_none());
        assert!(s.obs_snapshot(0).is_none());
        s.obs_sample(0); // no-op, must not panic
        s.obs_note_rw_retry(0);
    }

    #[test]
    fn obs_conflict_causes_are_distinguished() {
        // Validation conflicts (not prepare conflicts) are what a lost
        // lock race during read validation produces; exercise the
        // counters at least structurally: a clean commit counts no
        // conflict of either cause.
        let reg = obs::MetricsRegistry::new();
        let s = SkipListStore::<u64, u64>::with_obs(
            1,
            ReclaimMode::Reclaim,
            uniform_splits(2, 100),
            &reg,
        );
        s.apply_txn(0, &[TxnOp::Put(10, 1), TxnOp::Put(60, 6)]);
        let snap = s.obs_snapshot(0).unwrap();
        assert_eq!(
            snap.get("store.txn.conflicts.prepare"),
            Some(&obs::SnapshotValue::Counter(0))
        );
        assert_eq!(
            snap.get("store.txn.conflicts.validate"),
            Some(&obs::SnapshotValue::Counter(0))
        );
        assert_eq!(
            snap.get("store.txn.commits"),
            Some(&obs::SnapshotValue::Counter(1))
        );
    }
}
