//! The sharded store itself.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bundle::api::{ConcurrentSet, RangeQuerySet};
use bundle::{Recycler, RqContext};
use ebr::ReclaimMode;

use crate::backends::ShardBackend;
use crate::handle::StoreHandle;

/// Evenly spaced shard boundaries for a `u64` keyspace `[0, key_range)`:
/// `shards - 1` split points producing `shards` contiguous range shards.
/// Keys at or above `key_range` all land in the last shard.
#[must_use]
pub fn uniform_splits(shards: usize, key_range: u64) -> Vec<u64> {
    assert!(shards > 0, "a store needs at least one shard");
    (1..shards as u64)
        .map(|i| i * (key_range / shards as u64).max(1))
        .collect()
}

/// A concurrent KV store sharding a totally ordered keyspace across N
/// bundled structures while preserving the paper's headline guarantee
/// *across* shards: every range query is one atomic snapshot of the whole
/// store.
///
/// * Shard `0` holds keys `< splits[0]`, shard `i` holds
///   `splits[i-1] <= k < splits[i]`, the last shard holds the rest.
/// * All shards are built over one shared [`RqContext`], so updates on any
///   shard are totally ordered by the one clock and a snapshot timestamp
///   is meaningful store-wide.
/// * Single-key operations route to one shard and are exactly as fast as
///   the underlying structure; different shards never contend on locks or
///   structure memory (the clock is the only shared word, identical to a
///   single structure of the same total size).
///
/// Thread identifiers: the store supports `max_threads` dense thread ids,
/// passed through to every shard (each shard's EBR collector registers the
/// same id space). Use [`BundledStore::register`] for managed allocation.
pub struct BundledStore<K, V, S> {
    shards: Box<[S]>,
    /// Strictly increasing shard boundaries (`len == shards.len() - 1`).
    splits: Box<[K]>,
    ctx: RqContext,
    max_threads: usize,
    /// Dense-tid session allocator (see [`StoreHandle`]): next-never-used
    /// counter plus a free list of dropped slots.
    next_tid: AtomicUsize,
    free_tids: std::sync::Mutex<Vec<usize>>,
    _values: std::marker::PhantomData<V>,
}

impl<K, V, S> BundledStore<K, V, S>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
    S: ShardBackend<K, V>,
{
    /// A store with `splits.len() + 1` range shards supporting
    /// `max_threads` registered threads, reclaiming memory through EBR.
    ///
    /// `splits` must be strictly increasing.
    pub fn new(max_threads: usize, splits: Vec<K>) -> Self {
        Self::with_mode(max_threads, ReclaimMode::Reclaim, splits)
    }

    /// A store with an explicit reclamation mode for every shard.
    pub fn with_mode(max_threads: usize, mode: ReclaimMode, splits: Vec<K>) -> Self {
        assert!(
            splits.windows(2).all(|w| w[0] < w[1]),
            "shard boundaries must be strictly increasing"
        );
        let ctx = RqContext::new(max_threads);
        let shards = (0..=splits.len())
            .map(|_| S::build(max_threads, mode, &ctx))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        BundledStore {
            shards,
            splits: splits.into_boxed_slice(),
            ctx,
            max_threads,
            next_tid: AtomicUsize::new(0),
            free_tids: std::sync::Mutex::new(Vec::new()),
            _values: std::marker::PhantomData,
        }
    }

    /// Number of range shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of dense thread ids the store (and every shard) supports.
    #[must_use]
    pub fn max_threads(&self) -> usize {
        self.max_threads
    }

    /// The linearization context shared by every shard. Structures built
    /// from clones of this context join the store's snapshot domain.
    #[must_use]
    pub fn context(&self) -> RqContext {
        self.ctx.clone()
    }

    /// Index of the shard owning `key`.
    #[inline]
    #[must_use]
    pub fn shard_of(&self, key: &K) -> usize {
        self.splits.partition_point(|s| s <= key)
    }

    /// Direct access to shard `i` (diagnostics and tests).
    #[must_use]
    pub fn shard(&self, i: usize) -> &S {
        &self.shards[i]
    }

    /// Register a session: allocates the lowest free dense thread id and
    /// wraps the store so operations need no explicit `tid`.
    ///
    /// Panics when all `max_threads` slots are in use.
    pub fn register(self: &Arc<Self>) -> StoreHandle<K, V, S> {
        let tid = self.acquire_tid();
        StoreHandle::new(Arc::clone(self), tid)
    }

    /// Look up several keys. The result vector is keyed by position. Each
    /// lookup is individually linearizable (this is a batch convenience,
    /// not an atomic multi-read; use a range query for snapshot reads).
    #[must_use]
    pub fn multi_get(&self, tid: usize, keys: &[K]) -> Vec<Option<V>> {
        keys.iter()
            .map(|k| self.shards[self.shard_of(k)].get(tid, k))
            .collect()
    }

    /// Insert several pairs, returning how many were newly inserted.
    /// Each insert is individually linearizable (batch convenience).
    pub fn multi_put(&self, tid: usize, pairs: &[(K, V)]) -> usize {
        pairs
            .iter()
            .filter(|(k, v)| self.shards[self.shard_of(k)].insert(tid, *k, v.clone()))
            .count()
    }

    /// One bundle-cleanup pass over every shard (Appendix B, store-wide):
    /// prunes entries no active snapshot — on *any* shard — still needs.
    pub fn cleanup_bundles(&self, tid: usize) -> usize {
        self.shards.iter().map(|s| s.cleanup(tid)).sum()
    }

    /// Total bundle entries across all shards (space diagnostic).
    #[must_use]
    pub fn bundle_entries(&self, tid: usize) -> usize {
        self.shards.iter().map(|s| s.bundle_entries(tid)).sum()
    }

    /// Spawn one background recycler sweeping every shard with the given
    /// delay between passes, on reserved thread slot `tid`.
    pub fn spawn_recycler(self: &Arc<Self>, tid: usize, delay: Duration) -> Recycler
    where
        K: 'static,
        V: 'static,
        S: 'static,
    {
        let store = Arc::clone(self);
        Recycler::spawn(delay, move || {
            store.cleanup_bundles(tid);
        })
    }
}

// Deliberately unbounded: `StoreHandle`'s `Drop` (which has no bounds)
// must be able to return its tid.
impl<K, V, S> BundledStore<K, V, S> {
    pub(crate) fn acquire_tid(&self) -> usize {
        let freed = self
            .free_tids
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop();
        if let Some(tid) = freed {
            return tid;
        }
        let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
        assert!(
            tid < self.max_threads,
            "store supports only {} registered threads",
            self.max_threads
        );
        tid
    }

    pub(crate) fn release_tid(&self, tid: usize) {
        self.free_tids
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(tid);
    }
}

impl<K, V, S> ConcurrentSet<K, V> for BundledStore<K, V, S>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
    S: ShardBackend<K, V>,
{
    fn insert(&self, tid: usize, key: K, value: V) -> bool {
        self.shards[self.shard_of(&key)].insert(tid, key, value)
    }

    fn remove(&self, tid: usize, key: &K) -> bool {
        self.shards[self.shard_of(key)].remove(tid, key)
    }

    fn contains(&self, tid: usize, key: &K) -> bool {
        self.shards[self.shard_of(key)].contains(tid, key)
    }

    fn get(&self, tid: usize, key: &K) -> Option<V> {
        self.shards[self.shard_of(key)].get(tid, key)
    }

    fn len(&self, tid: usize) -> usize {
        self.shards.iter().map(|s| s.len(tid)).sum()
    }
}

impl<K, V, S> RangeQuerySet<K, V> for BundledStore<K, V, S>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
    S: ShardBackend<K, V>,
{
    /// Linearizable **cross-shard** range query.
    ///
    /// Reads the shared clock once (the query's linearization point),
    /// announces that snapshot in the shared tracker — pinning bundle
    /// reclamation on *every* shard — and then collects each overlapping
    /// shard's fragment at that fixed timestamp. Shards partition the
    /// keyspace in key order, so concatenating the fragments yields the
    /// snapshot in ascending key order with no shard skew: an update
    /// linearized before the clock read is visible in every fragment, one
    /// linearized after it in none.
    fn range_query(&self, tid: usize, low: &K, high: &K, out: &mut Vec<(K, V)>) -> usize {
        out.clear();
        if low > high {
            return 0;
        }
        let first = self.shard_of(low);
        let last = self.shard_of(high);
        // Pin every shard we will traverse BEFORE fixing the snapshot: a
        // node removed with a timestamp newer than the snapshot retires
        // only after the clock read below, so these pins keep every node
        // (and bundle entry) the fixed-timestamp traversals can touch
        // alive across the whole multi-shard collection.
        let _guards: Vec<ebr::Guard<'_>> = self.shards[first..=last]
            .iter()
            .map(|s| s.pin(tid))
            .collect();
        // Linearization point: one clock read for the whole store.
        let ts = self.ctx.start_rq(tid);
        if first == last {
            self.shards[first].range_query_at(tid, ts, low, high, out);
        } else {
            let mut scratch = Vec::new();
            for shard in &self.shards[first..=last] {
                // Shards only hold keys inside their boundary range, so the
                // unclamped bounds are correct for every fragment.
                shard.range_query_at(tid, ts, low, high, &mut scratch);
                out.append(&mut scratch);
            }
        }
        self.ctx.finish_rq(tid);
        out.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CitrusStore, LazyListStore, SkipListStore};
    use std::collections::BTreeMap;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn uniform_splits_partition_evenly() {
        assert_eq!(uniform_splits(1, 100), vec![]);
        assert_eq!(uniform_splits(4, 100), vec![25, 50, 75]);
        assert_eq!(uniform_splits(3, 9), vec![3, 6]);
    }

    #[test]
    fn keys_route_to_expected_shards() {
        let s = SkipListStore::<u64, u64>::new(1, uniform_splits(4, 100));
        assert_eq!(s.shard_count(), 4);
        assert_eq!(s.shard_of(&0), 0);
        assert_eq!(s.shard_of(&24), 0);
        assert_eq!(s.shard_of(&25), 1);
        assert_eq!(s.shard_of(&74), 2);
        assert_eq!(s.shard_of(&75), 3);
        assert_eq!(
            s.shard_of(&1_000_000),
            3,
            "overflow keys land in the last shard"
        );
        for k in [0u64, 24, 25, 74, 75, 99, 1_000_000] {
            assert!(s.insert(0, k, k));
        }
        // Each key is only in its own shard.
        assert_eq!(s.shard(0).len(0), 2);
        assert_eq!(s.shard(3).len(0), 3);
        assert_eq!(s.len(0), 7);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_splits_are_rejected() {
        let _ = SkipListStore::<u64, u64>::new(1, vec![10, 10]);
    }

    fn basic_ops<S: ShardBackend<u64, u64>>(splits: Vec<u64>) {
        let s = BundledStore::<u64, u64, S>::new(2, splits);
        let mut model = BTreeMap::new();
        let mut seed = 0x5eed_u64;
        for _ in 0..4000 {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let k = seed % 300;
            match seed % 3 {
                0 => assert_eq!(s.insert(0, k, k), model.insert(k, k).is_none()),
                1 => assert_eq!(s.remove(0, &k), model.remove(&k).is_some()),
                _ => assert_eq!(s.get(0, &k), model.get(&k).copied()),
            }
        }
        assert_eq!(s.len(0), model.len());
        let mut out = Vec::new();
        s.range_query(1, &40, &260, &mut out);
        let expected: Vec<(u64, u64)> = model.range(40..=260).map(|(k, v)| (*k, *v)).collect();
        assert_eq!(out, expected, "cross-shard range must equal the model");
    }

    #[test]
    fn model_equivalence_on_all_backends() {
        basic_ops::<skiplist::BundledSkipList<u64, u64>>(uniform_splits(4, 300));
        basic_ops::<lazylist::BundledLazyList<u64, u64>>(uniform_splits(3, 300));
        basic_ops::<citrus::BundledCitrusTree<u64, u64>>(uniform_splits(5, 300));
        // Degenerate single-shard store must also behave.
        basic_ops::<skiplist::BundledSkipList<u64, u64>>(vec![]);
    }

    #[test]
    fn multi_get_and_multi_put() {
        let s = LazyListStore::<u64, u64>::new(1, uniform_splits(3, 90));
        assert_eq!(s.multi_put(0, &[(1, 10), (40, 400), (80, 800), (1, 99)]), 3);
        assert_eq!(
            s.multi_get(0, &[1, 40, 80, 7]),
            vec![Some(10), Some(400), Some(800), None]
        );
        assert_eq!(s.len(0), 3);
    }

    #[test]
    fn handles_allocate_and_recycle_tids() {
        let s = Arc::new(CitrusStore::<u64, u64>::new(2, uniform_splits(2, 100)));
        let h0 = s.register();
        assert_eq!(h0.tid(), 0);
        {
            let h1 = s.register();
            assert_eq!(h1.tid(), 1);
            h1.insert(60, 6);
        }
        // Dropped handle's slot is reused.
        let h1b = s.register();
        assert_eq!(h1b.tid(), 1);
        h0.insert(10, 1);
        assert_eq!(h1b.get(&10), Some(1));
        assert_eq!(h0.range_query_vec(&0, &100), vec![(10, 1), (60, 6)]);
    }

    #[test]
    #[should_panic(expected = "registered threads")]
    fn register_beyond_capacity_panics() {
        let s = Arc::new(SkipListStore::<u64, u64>::new(1, vec![]));
        let _a = s.register();
        let _b = s.register();
    }

    /// The signature cross-shard atomicity check: one writer inserts keys
    /// in an order that cycles through the shards on *every* insert, so two
    /// consecutive writes always land on different shards. A linearizable
    /// snapshot must contain a prefix of the write order; a snapshot with a
    /// later write but not an earlier one proves shard skew.
    fn no_shard_skew<S: ShardBackend<u64, u64> + 'static>(shards: usize) {
        const PER_SHARD: u64 = 500;
        let span = PER_SHARD; // shard i covers [i*span, (i+1)*span)
        let n = shards as u64;
        let splits: Vec<u64> = (1..n).map(|i| i * span).collect();
        let s = Arc::new(BundledStore::<u64, u64, S>::new(3, splits));
        // Write order: (base 0 of every shard), (base 1 of every shard), ...
        // Key sh*span + base has write index base*n + sh.
        let writer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for base in 0..PER_SHARD {
                    for sh in 0..n {
                        assert!(s.insert(0, sh * span + base, base));
                    }
                }
            })
        };
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                let mut idx = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    s.range_query(1, &0, &(n * span), &mut out);
                    // Map each observed key back to its write index; a
                    // linearizable snapshot is a gap-free prefix of writes.
                    idx.clear();
                    idx.extend(out.iter().map(|(k, _)| (k % span) * n + k / span));
                    idx.sort_unstable();
                    for (i, v) in idx.iter().enumerate() {
                        assert_eq!(
                            *v, i as u64,
                            "snapshot misses an earlier write: shard skew in cross-shard range query"
                        );
                    }
                }
            })
        };
        writer.join().unwrap();
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
        assert_eq!(s.len(0), (PER_SHARD * n) as usize);
    }

    #[test]
    fn cross_shard_snapshots_have_no_skew() {
        no_shard_skew::<skiplist::BundledSkipList<u64, u64>>(2);
        no_shard_skew::<skiplist::BundledSkipList<u64, u64>>(7);
        no_shard_skew::<lazylist::BundledLazyList<u64, u64>>(3);
        no_shard_skew::<citrus::BundledCitrusTree<u64, u64>>(4);
    }

    #[test]
    fn recycler_prunes_across_shards_under_load() {
        let s = Arc::new(SkipListStore::<u64, u64>::new(3, uniform_splits(4, 400)));
        for k in 0..400u64 {
            s.insert(0, k, k);
        }
        for _ in 0..5 {
            for k in 0..400u64 {
                s.remove(0, &k);
                s.insert(0, k, k);
            }
        }
        let before = s.bundle_entries(0);
        let recycler = s.spawn_recycler(2, Duration::from_millis(1));
        // Concurrent queries while the recycler runs.
        let mut out = Vec::new();
        for _ in 0..200 {
            s.range_query(1, &0, &400, &mut out);
            assert_eq!(out.len(), 400);
        }
        while recycler.passes() < 3 {
            std::thread::yield_now();
        }
        recycler.stop();
        let after = s.bundle_entries(0);
        assert!(
            after < before,
            "recycler must prune stale entries ({before} -> {after})"
        );
        s.range_query(1, &0, &400, &mut out);
        assert_eq!(out.len(), 400);
    }

    #[test]
    fn empty_and_inverted_ranges() {
        let s = SkipListStore::<u64, u64>::new(1, uniform_splits(4, 100));
        let mut out = vec![(1u64, 1u64)];
        assert_eq!(s.range_query(0, &50, &40, &mut out), 0);
        assert!(out.is_empty(), "inverted range clears the output");
        assert_eq!(s.range_query(0, &0, &99, &mut out), 0);
    }
}
