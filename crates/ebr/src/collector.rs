//! The epoch collector: global epoch, per-thread slots, pin guards.

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

use crate::retired::Retired;
use crate::stats::Stats;

/// Sentinel stored in a thread slot while the thread is not pinned.
const INACTIVE: u64 = u64::MAX;

/// How many retires a thread performs between attempts to advance the
/// global epoch. DEBRA uses a similar amortization so that the (O(threads))
/// scan of announcement slots is off the common path.
const ADVANCE_EVERY: usize = 64;

/// Whether retired memory is actually freed.
///
/// The paper's §8 experiments run with reclamation disabled ("leaky"); the
/// Table 1 experiment (Appendix B) enables it. Both modes are first-class
/// here so the harness can reproduce both configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReclaimMode {
    /// Never free retired objects (the paper's default configuration).
    Leaky,
    /// Free retired objects two epochs after they were retired.
    Reclaim,
}

struct ThreadSlot {
    /// Epoch announced by the thread while pinned, or [`INACTIVE`].
    state: AtomicU64,
    /// Pin nesting depth; only touched by the owning thread.
    depth: Cell<usize>,
    /// Number of retires since the last epoch-advance attempt.
    since_advance: Cell<usize>,
    /// Thread-local limbo list of retired objects (DEBRA-style).
    limbo: UnsafeCell<VecDeque<Retired>>,
}

// Safety: `state` is atomic. `depth`, `since_advance` and `limbo` are only
// accessed by the thread registered for this slot (enforced by the `tid`
// discipline of `pin`/`retire`) or by the collector's `Drop`/`&mut`
// teardown, which has exclusive access.
unsafe impl Sync for ThreadSlot {}
unsafe impl Send for ThreadSlot {}

impl ThreadSlot {
    fn new() -> Self {
        ThreadSlot {
            state: AtomicU64::new(INACTIVE),
            depth: Cell::new(0),
            since_advance: Cell::new(0),
            limbo: UnsafeCell::new(VecDeque::new()),
        }
    }
}

/// An epoch-based reclamation domain.
///
/// One collector is embedded in every concurrent data structure of this
/// workspace; threads are identified by a dense index `tid` in
/// `0..max_threads` (the same index used by the bundle range-query tracker
/// and by the benchmark harness).
pub struct Collector {
    mode: ReclaimMode,
    epoch: CachePadded<AtomicU64>,
    slots: Box<[CachePadded<ThreadSlot>]>,
    stats: Stats,
}

impl Collector {
    /// Create a collector supporting `max_threads` registered threads.
    pub fn new(max_threads: usize, mode: ReclaimMode) -> Self {
        assert!(max_threads > 0, "collector needs at least one thread slot");
        let slots = (0..max_threads)
            .map(|_| CachePadded::new(ThreadSlot::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Collector {
            mode,
            epoch: CachePadded::new(AtomicU64::new(0)),
            slots,
            stats: Stats::new(),
        }
    }

    /// The reclamation mode this collector was built with.
    pub fn mode(&self) -> ReclaimMode {
        self.mode
    }

    /// Number of thread slots.
    pub fn max_threads(&self) -> usize {
        self.slots.len()
    }

    /// Current global epoch (diagnostic).
    pub fn global_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Reclamation statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Pin the collector for thread `tid`, returning a guard that keeps the
    /// thread's announced epoch published until dropped.
    ///
    /// While a guard is live, any object retired during the announced epoch
    /// or later will not be freed, so raw pointers read from the protected
    /// structure remain valid. Pinning is reentrant: nested pins share the
    /// outermost announcement.
    ///
    /// # Panics
    ///
    /// Panics if `tid >= max_threads`.
    pub fn pin(&self, tid: usize) -> Guard<'_> {
        let slot = &self.slots[tid];
        let depth = slot.depth.get();
        if depth == 0 {
            // Classic EBR announcement loop: publish the epoch we observed,
            // then re-check that it did not move underneath us. SeqCst keeps
            // the announcement ordered with respect to the reader of other
            // threads' announcements in `try_advance`.
            loop {
                let e = self.epoch.load(Ordering::SeqCst);
                slot.state.store(e, Ordering::SeqCst);
                if self.epoch.load(Ordering::SeqCst) == e {
                    break;
                }
            }
        }
        slot.depth.set(depth + 1);
        Guard {
            collector: self,
            tid,
            _not_send: PhantomData,
        }
    }

    /// Returns `true` if thread `tid` currently holds at least one guard.
    pub fn is_pinned(&self, tid: usize) -> bool {
        self.slots[tid].state.load(Ordering::SeqCst) != INACTIVE
    }

    /// Attempt to advance the global epoch. Succeeds only when every pinned
    /// thread has announced the current epoch.
    ///
    /// Returns `true` if the epoch was advanced.
    pub fn try_advance(&self) -> bool {
        let e = self.epoch.load(Ordering::SeqCst);
        for slot in self.slots.iter() {
            let s = slot.state.load(Ordering::SeqCst);
            if s != INACTIVE && s != e {
                return false;
            }
        }
        let ok = self
            .epoch
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        if ok {
            self.stats.on_advance();
        }
        ok
    }

    /// Unconditionally attempt an epoch advance (used by tests and by the
    /// background recycler between cleanup passes).
    pub fn force_advance(&self) -> bool {
        self.try_advance()
    }

    /// Free every object in thread `tid`'s limbo list that was retired at
    /// least two epochs ago.
    ///
    /// Must only be called by the thread registered as `tid` (the guard
    /// methods do this automatically).
    pub fn collect(&self, tid: usize) -> u64 {
        if self.mode == ReclaimMode::Leaky {
            return 0;
        }
        let current = self.epoch.load(Ordering::SeqCst);
        let slot = &self.slots[tid];
        // Safety: limbo lists are only touched by their owning thread.
        let limbo = unsafe { &mut *slot.limbo.get() };
        let mut freed = 0u64;
        while let Some(front) = limbo.front() {
            if front.epoch() + 2 <= current {
                let r = limbo.pop_front().expect("front exists");
                // Safety: a grace period of two epochs has elapsed, so no
                // pinned thread can still reference the object.
                unsafe { r.reclaim() };
                freed += 1;
            } else {
                break;
            }
        }
        if freed > 0 {
            self.stats.on_free(freed);
        }
        freed
    }

    /// Number of objects waiting in thread `tid`'s limbo list.
    pub fn limbo_len(&self, tid: usize) -> usize {
        // Safety: read-only peek; callers use this for diagnostics/tests on
        // their own slot or while other threads are quiescent.
        unsafe { (*self.slots[tid].limbo.get()).len() }
    }

    fn retire_impl(&self, tid: usize, retired: Retired) {
        self.stats.on_retire();
        if self.mode == ReclaimMode::Leaky {
            // Intentionally leak: the paper's primary experiments never free.
            #[allow(clippy::forget_non_drop)]
            std::mem::forget(retired);
            return;
        }
        let slot = &self.slots[tid];
        // Safety: only the owning thread pushes to its limbo list.
        unsafe { (*slot.limbo.get()).push_back(retired) };
        let n = slot.since_advance.get() + 1;
        slot.since_advance.set(n);
        if n >= ADVANCE_EVERY {
            slot.since_advance.set(0);
            self.try_advance();
        }
        self.collect(tid);
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        // Exclusive access: free everything that is still in limbo.
        let mut freed = 0u64;
        for slot in self.slots.iter() {
            let limbo = unsafe { &mut *slot.limbo.get() };
            while let Some(r) = limbo.pop_front() {
                // Safety: no thread can be pinned while the collector is
                // being dropped (it is owned by the structure being dropped).
                unsafe { r.reclaim() };
                freed += 1;
            }
        }
        if freed > 0 {
            self.stats.on_free(freed);
        }
    }
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("mode", &self.mode)
            .field("epoch", &self.global_epoch())
            .field("threads", &self.max_threads())
            .finish()
    }
}

/// RAII token proving that a thread is pinned.
///
/// Obtained from [`Collector::pin`]; dropping it un-announces the thread
/// (when the outermost guard of a nested sequence is dropped).
pub struct Guard<'c> {
    collector: &'c Collector,
    tid: usize,
    /// Guards must stay on the thread that created them.
    _not_send: PhantomData<*mut ()>,
}

impl<'c> Guard<'c> {
    /// The thread index this guard was pinned with.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// The collector this guard belongs to.
    pub fn collector(&self) -> &'c Collector {
        self.collector
    }

    /// Retire a `Box`-allocated object.
    ///
    /// # Safety
    ///
    /// `ptr` must have been produced by `Box::into_raw::<T>`, must already be
    /// unreachable for threads that pin *after* this call, and must not be
    /// freed elsewhere.
    pub unsafe fn retire<T>(&self, ptr: *mut T) {
        let epoch = self.collector.epoch.load(Ordering::SeqCst);
        self.collector
            .retire_impl(self.tid, Retired::from_box(ptr, epoch));
    }

    /// Retire an arbitrary allocation with a custom destructor.
    ///
    /// # Safety
    ///
    /// Same contract as [`Guard::retire`], and `dtor` must be safe to call
    /// exactly once on `ptr`.
    pub unsafe fn retire_with(&self, ptr: *mut u8, dtor: unsafe fn(*mut u8)) {
        let epoch = self.collector.epoch.load(Ordering::SeqCst);
        self.collector
            .retire_impl(self.tid, Retired::with_dtor(ptr, dtor, epoch));
    }

    /// Eagerly run a collection pass for this thread.
    pub fn flush(&self) -> u64 {
        self.collector.collect(self.tid)
    }
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        let slot = &self.collector.slots[self.tid];
        let depth = slot.depth.get();
        debug_assert!(depth > 0, "guard dropped with zero pin depth");
        slot.depth.set(depth - 1);
        if depth == 1 {
            slot.state.store(INACTIVE, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Tracked(#[allow(dead_code)] u64);
    impl Drop for Tracked {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn pin_and_unpin_toggle_announcement() {
        let c = Collector::new(2, ReclaimMode::Reclaim);
        assert!(!c.is_pinned(0));
        {
            let _g = c.pin(0);
            assert!(c.is_pinned(0));
        }
        assert!(!c.is_pinned(0));
    }

    #[test]
    fn nested_pins_share_announcement() {
        let c = Collector::new(1, ReclaimMode::Reclaim);
        let g1 = c.pin(0);
        let g2 = c.pin(0);
        assert!(c.is_pinned(0));
        drop(g2);
        assert!(c.is_pinned(0), "outer guard still live");
        drop(g1);
        assert!(!c.is_pinned(0));
    }

    #[test]
    fn advance_blocked_by_stale_pin() {
        let c = Collector::new(2, ReclaimMode::Reclaim);
        let g = c.pin(0);
        assert!(c.try_advance(), "pinned at current epoch does not block");
        // Thread 0 is still announced at the *old* epoch now.
        assert!(!c.try_advance(), "stale announcement must block advance");
        drop(g);
        assert!(c.try_advance());
    }

    #[test]
    fn retired_objects_freed_after_grace_period() {
        let c = Collector::new(1, ReclaimMode::Reclaim);
        {
            let g = c.pin(0);
            let p = Box::into_raw(Box::new(Tracked(1)));
            unsafe { g.retire(p) };
        }
        assert_eq!(c.stats().retired(), 1);
        // Two advances => grace period over.
        assert!(c.force_advance());
        assert!(c.force_advance());
        let g = c.pin(0);
        g.flush();
        drop(g);
        assert_eq!(c.stats().freed(), 1);
    }

    #[test]
    fn leaky_mode_never_frees() {
        let c = Collector::new(1, ReclaimMode::Leaky);
        {
            let g = c.pin(0);
            let p = Box::into_raw(Box::new(17u64));
            unsafe { g.retire(p) };
        }
        c.force_advance();
        c.force_advance();
        c.force_advance();
        let g = c.pin(0);
        g.flush();
        drop(g);
        assert_eq!(c.stats().retired(), 1);
        assert_eq!(c.stats().freed(), 0);
        assert_eq!(c.limbo_len(0), 0, "leaky mode does not queue");
    }

    #[test]
    fn collector_drop_frees_pending() {
        DROPS.store(0, Ordering::SeqCst);
        {
            let c = Collector::new(1, ReclaimMode::Reclaim);
            let g = c.pin(0);
            for i in 0..10 {
                let p = Box::into_raw(Box::new(Tracked(i)));
                unsafe { g.retire(p) };
            }
            drop(g);
            // No grace period has passed; everything is still pending.
            assert!(c.stats().pending() > 0);
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn concurrent_retire_is_safe() {
        DROPS.store(0, Ordering::SeqCst);
        const THREADS: usize = 4;
        const PER_THREAD: usize = 500;
        let c = Arc::new(Collector::new(THREADS, ReclaimMode::Reclaim));
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let g = c.pin(tid);
                    let p = Box::into_raw(Box::new(Tracked(i as u64)));
                    unsafe { g.retire(p) };
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.stats().retired(), (THREADS * PER_THREAD) as u64);
        drop(c);
        assert_eq!(DROPS.load(Ordering::SeqCst), THREADS * PER_THREAD);
    }

    #[test]
    #[should_panic]
    fn pin_out_of_range_panics() {
        let c = Collector::new(1, ReclaimMode::Reclaim);
        let _ = c.pin(5);
    }
}
