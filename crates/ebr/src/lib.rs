//! Epoch-based memory reclamation (EBR) in the style of DEBRA.
//!
//! The bundled-references paper (§7 and Appendix B) relies on epoch-based
//! reclamation both to free physically-removed data structure nodes and to
//! recycle bundle entries that are no longer needed by any active range
//! query. This crate is that substrate, implemented from scratch:
//!
//! * a [`Collector`] owns a global epoch counter and one cache-padded slot
//!   per registered thread,
//! * a thread *pins* the collector around every data structure operation,
//!   producing a [`Guard`]; while pinned, no object retired during the
//!   thread's observed epoch (or later) will be freed,
//! * removed objects are *retired* into a per-thread limbo list (as in
//!   DEBRA, limbo lists are thread-local to avoid contention on shared
//!   free-lists) and freed once two epoch advances have passed,
//! * a [`ReclaimMode::Leaky`] mode disables freeing entirely, matching the
//!   configuration the paper uses for its primary experiments ("the
//!   experiments in Section 8 were performed without enabling memory
//!   reclamation").
//!
//! The implementation follows the idioms recommended by the session guides:
//! explicit atomics with documented orderings, `CachePadded` per-thread
//! state, and no allocation on the pin/unpin fast path.
//!
//! # Example
//!
//! ```
//! use ebr::{Collector, ReclaimMode};
//!
//! let collector = Collector::new(2, ReclaimMode::Reclaim);
//! let guard = collector.pin(0);
//! let p = Box::into_raw(Box::new(42u64));
//! // ... publish `p`, later unlink it from the structure ...
//! unsafe { guard.retire(p) };
//! drop(guard);
//! // After enough epoch advances the box is dropped by the collector.
//! collector.force_advance();
//! collector.force_advance();
//! collector.force_advance();
//! assert!(collector.stats().freed() <= collector.stats().retired());
//! ```

mod collector;
mod retired;
mod stats;

pub use collector::{Collector, Guard, ReclaimMode};
pub use retired::Retired;
pub use stats::Stats;

/// Maximum number of threads a single [`Collector`] supports by default.
///
/// The paper evaluates up to 192 hardware threads; we keep the same bound so
/// harness code can always register the paper's thread counts even when the
/// host has fewer cores.
pub const DEFAULT_MAX_THREADS: usize = 256;
