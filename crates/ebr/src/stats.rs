//! Reclamation statistics, used by the Table 1 experiment and by tests.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters describing the collector's activity.
///
/// All counters are monotonically increasing and updated with `Relaxed`
/// ordering: they are diagnostics, not synchronization.
#[derive(Debug, Default)]
pub struct Stats {
    retired: AtomicU64,
    freed: AtomicU64,
    epochs_advanced: AtomicU64,
}

impl Stats {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn on_retire(&self) {
        self.retired.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_free(&self, n: u64) {
        self.freed.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn on_advance(&self) {
        self.epochs_advanced.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of objects handed to the collector.
    pub fn retired(&self) -> u64 {
        self.retired.load(Ordering::Relaxed)
    }

    /// Total number of objects whose memory has actually been released.
    pub fn freed(&self) -> u64 {
        self.freed.load(Ordering::Relaxed)
    }

    /// Number of successful global epoch advances.
    pub fn epochs_advanced(&self) -> u64 {
        self.epochs_advanced.load(Ordering::Relaxed)
    }

    /// Objects retired but not yet freed.
    pub fn pending(&self) -> u64 {
        self.retired().saturating_sub(self.freed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = Stats::new();
        assert_eq!(s.retired(), 0);
        assert_eq!(s.freed(), 0);
        assert_eq!(s.pending(), 0);
        s.on_retire();
        s.on_retire();
        s.on_free(1);
        s.on_advance();
        assert_eq!(s.retired(), 2);
        assert_eq!(s.freed(), 1);
        assert_eq!(s.pending(), 1);
        assert_eq!(s.epochs_advanced(), 1);
    }
}
