//! A type-erased retired allocation awaiting reclamation.

/// A pointer that has been unlinked from a data structure and handed to the
/// collector, together with the function that knows how to drop it.
///
/// `Retired` erases the concrete type so that a single limbo list can hold
/// nodes, bundle entries, and any other allocation a data structure retires.
pub struct Retired {
    ptr: *mut u8,
    dtor: unsafe fn(*mut u8),
    epoch: u64,
}

// A `Retired` is only ever touched by the thread that owns the limbo list it
// sits in (or by the collector during its own teardown), so moving it across
// threads is sound as long as the underlying object is `Send`. The unsafe
// `retire` constructors require exactly that.
unsafe impl Send for Retired {}

impl Retired {
    /// Wrap a heap allocation produced by `Box::into_raw`.
    ///
    /// # Safety
    ///
    /// `ptr` must have been produced by `Box::into_raw` for a `T`, must not
    /// be dropped elsewhere, and must not be dereferenced after the grace
    /// period expires.
    pub unsafe fn from_box<T>(ptr: *mut T, epoch: u64) -> Self {
        unsafe fn drop_box<T>(p: *mut u8) {
            drop(Box::from_raw(p.cast::<T>()));
        }
        Retired {
            ptr: ptr.cast(),
            dtor: drop_box::<T>,
            epoch,
        }
    }

    /// Wrap an arbitrary pointer with a caller-provided destructor.
    ///
    /// # Safety
    ///
    /// `dtor` must be safe to call exactly once on `ptr` after the grace
    /// period expires, and `ptr` must not be used afterwards.
    pub unsafe fn with_dtor(ptr: *mut u8, dtor: unsafe fn(*mut u8), epoch: u64) -> Self {
        Retired { ptr, dtor, epoch }
    }

    /// The epoch during which this object was retired.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Reclaim the allocation.
    ///
    /// # Safety
    ///
    /// May only be called once no thread can still hold a reference obtained
    /// while the object was reachable (i.e. after a grace period).
    pub(crate) unsafe fn reclaim(self) {
        (self.dtor)(self.ptr);
        // Nothing else to do for `self`; spelled as forget to document that
        // ownership of the pointee ended with the dtor call above.
        #[allow(clippy::forget_non_drop)]
        std::mem::forget(self);
    }
}

impl std::fmt::Debug for Retired {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Retired")
            .field("ptr", &self.ptr)
            .field("epoch", &self.epoch)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DROPS: AtomicUsize = AtomicUsize::new(0);

    struct Tracked;
    impl Drop for Tracked {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn from_box_runs_destructor_on_reclaim() {
        DROPS.store(0, Ordering::SeqCst);
        let p = Box::into_raw(Box::new(Tracked));
        let r = unsafe { Retired::from_box(p, 7) };
        assert_eq!(r.epoch(), 7);
        assert_eq!(DROPS.load(Ordering::SeqCst), 0);
        unsafe { r.reclaim() };
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn with_dtor_invokes_custom_destructor() {
        static CUSTOM: AtomicUsize = AtomicUsize::new(0);
        unsafe fn bump(_p: *mut u8) {
            CUSTOM.fetch_add(1, Ordering::SeqCst);
        }
        let mut x = 5u32;
        let r = unsafe { Retired::with_dtor((&mut x as *mut u32).cast(), bump, 1) };
        unsafe { r.reclaim() };
        assert_eq!(CUSTOM.load(Ordering::SeqCst), 1);
    }
}
