//! Live introspection over TCP: scrape a running store instead of
//! waiting for exit-time JSON dumps.
//!
//! An [`ExportServer`] is a pure-std, thread-per-connection HTTP/1.0-ish
//! server bound to one address. It owns no obs state of its own — the
//! host process hands it closures over whatever it has wired up
//! ([`ExportSources`]), so any subset of the obs stack is servable and a
//! source that was never wired answers with an explicit `disabled`
//! marker rather than a 404. Endpoints:
//!
//! | path              | body |
//! |-------------------|------|
//! | `/metrics`        | the registry snapshot in Prometheus text exposition format 0.0.4 |
//! | `/snapshot.json`  | the flattened snapshot as one JSON object |
//! | `/windows.json`   | the retained time-series windows (incl. skew reports), JSON array |
//! | `/anomalies.json` | the retained flight-recorder anomaly snapshots, JSON array |
//! | `/health.json`    | the [`HealthReport`](crate::health::HealthReport) |
//! | `/`               | a plain-text index of the above |
//!
//! ## Prometheus mapping
//!
//! Dotted obs names sanitize to underscore families, and the dense
//! `shard<i>` / `stage<i>` segments lift into labels — so
//! `store.shard3.ops` becomes `store_shard_ops{shard="3"}` and every
//! shard lands in **one** family instead of N. Histograms render the
//! crate's power-of-two buckets as *cumulative* `_bucket` series with
//! `le` set to each bucket's inclusive upper bound ([`bucket_bound`]),
//! closed by `le="+Inf"`, plus `_sum` and `_count`. `_count` and the
//! `+Inf` bucket both use [`HistogramSummary::bucket_total`], which by
//! the crate's ordering contract never lags the bucket contents — a
//! mid-flight scrape stays internally consistent.
//!
//! ## Threading
//!
//! One accept loop, one short-lived thread per connection. Scrapes
//! serialize on the sources mutex, so the host can hand over snapshot
//! closures bound to a single reserved store handle (EBR pinning wants
//! distinct handles per concurrent caller — the mutex guarantees the
//! server is at most one). Observability must not outlive the observed:
//! dropping the server (or calling [`ExportServer::stop`]) wakes the
//! accept loop with a self-connection and joins it.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::timeseries::Window;
use crate::trace::AnomalySnapshot;
use crate::{bucket_bound, MetricsSnapshot, SnapshotValue, BUCKETS};

/// Per-connection socket timeout: a stuck scraper must not pin a
/// handler thread (or the sources mutex) forever.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// The closures an [`ExportServer`] serves from. Every field is
/// optional: unwired sources answer `/…` with a `disabled` marker.
/// Build with the `with_*` methods:
///
/// ```ignore
/// let sources = ExportSources::new()
///     .with_snapshot(move || store_handle.obs_snapshot())
///     .with_windows(move || reader.windows())
///     .with_health(move || monitor.report())
///     .with_build_info(vec![("schema".into(), "5".into())]);
/// ```
#[derive(Default)]
pub struct ExportSources {
    /// Full registry snapshot (should refresh sampled gauges first, the
    /// way the store's `obs_snapshot` does).
    pub snapshot: Option<Box<dyn Fn() -> MetricsSnapshot + Send>>,
    /// Retained time-series windows, oldest first.
    pub windows: Option<Box<dyn Fn() -> Vec<Window> + Send>>,
    /// Retained flight-recorder anomaly snapshots.
    pub anomalies: Option<Box<dyn Fn() -> Vec<AnomalySnapshot> + Send>>,
    /// The health monitor's current report, rendered to JSON
    /// (`HealthReport::json`).
    pub health: Option<Box<dyn Fn() -> String + Send>>,
    /// `(key, value)` pairs for the `store_build_info` info-style metric
    /// (schema version, backend kind, …). Values must be label-safe
    /// (no quotes/backslashes/newlines — ours are identifiers).
    pub build_info: Vec<(String, String)>,
}

impl ExportSources {
    /// Empty sources: every endpoint answers, all report `disabled`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the registry-snapshot source.
    #[must_use]
    pub fn with_snapshot(mut self, f: impl Fn() -> MetricsSnapshot + Send + 'static) -> Self {
        self.snapshot = Some(Box::new(f));
        self
    }

    /// Set the time-series windows source.
    #[must_use]
    pub fn with_windows(mut self, f: impl Fn() -> Vec<Window> + Send + 'static) -> Self {
        self.windows = Some(Box::new(f));
        self
    }

    /// Set the anomaly-snapshots source.
    #[must_use]
    pub fn with_anomalies(mut self, f: impl Fn() -> Vec<AnomalySnapshot> + Send + 'static) -> Self {
        self.anomalies = Some(Box::new(f));
        self
    }

    /// Set the health-report source (pre-rendered JSON).
    #[must_use]
    pub fn with_health(mut self, f: impl Fn() -> String + Send + 'static) -> Self {
        self.health = Some(Box::new(f));
        self
    }

    /// Set the `store_build_info` labels.
    #[must_use]
    pub fn with_build_info(mut self, kv: Vec<(String, String)>) -> Self {
        self.build_info = kv;
        self
    }
}

/// A dotted obs name split into a Prometheus family plus extracted
/// labels: `store.shard3.ops` → family `store_shard_ops`, label
/// `shard="3"`.
fn sanitize_name(name: &str) -> (String, Vec<(String, String)>) {
    let mut family = String::with_capacity(name.len());
    let mut labels = Vec::new();
    for segment in name.split('.') {
        // `shard<i>` / `stage<i>` segments become a bare word in the
        // family plus an index label, so per-shard series share one
        // metric family.
        let split = segment
            .char_indices()
            .find(|(_, c)| c.is_ascii_digit())
            .map(|(i, _)| i);
        let lifted = match split {
            Some(i) if i > 0 && segment[i..].bytes().all(|b| b.is_ascii_digit()) => {
                let word = &segment[..i];
                (word == "shard" || word == "stage")
                    .then(|| (word.to_string(), segment[i..].to_string()))
            }
            _ => None,
        };
        let word = match &lifted {
            Some((word, index)) => {
                labels.push((word.clone(), index.clone()));
                word.as_str()
            }
            None => segment,
        };
        if !family.is_empty() {
            family.push('_');
        }
        for c in word.chars() {
            family.push(if c.is_ascii_alphanumeric() { c } else { '_' });
        }
    }
    if family
        .chars()
        .next()
        .is_none_or(|c| !c.is_ascii_alphabetic() && c != '_')
    {
        family.insert(0, '_');
    }
    (family, labels)
}

/// Render one label set as `{k="v",...}` (empty string when no labels).
fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{{body}}}")
}

/// `labels` plus one extra pair (for `le`), rendered.
fn render_labels_plus(labels: &[(String, String)], key: &str, value: &str) -> String {
    let mut all = labels.to_vec();
    all.push((key.to_string(), value.to_string()));
    render_labels(&all)
}

/// A `le` bound in Prometheus form (`+Inf` for the saturating last
/// bucket, else the inclusive integer bound).
fn le_of(i: usize) -> String {
    if i >= BUCKETS - 1 {
        "+Inf".to_string()
    } else {
        bucket_bound(i).to_string()
    }
}

/// Render a [`MetricsSnapshot`] in Prometheus text exposition format
/// 0.0.4, with one `store_build_info{...} 1` info-style metric appended
/// when `build_info` is non-empty. Families are grouped (a `# TYPE`
/// line per family, every series of a family contiguous) and histogram
/// buckets are cumulative. See the module docs for the name mapping.
#[must_use]
pub fn render_prometheus(snap: &MetricsSnapshot, build_info: &[(String, String)]) -> String {
    // (type, lines) per family. Name-sorted snapshot entries do NOT
    // yield contiguous families ("store.shard0.bundle_entries" /
    // "store.shard0.ops" / "store.shard1.bundle_entries" interleave two
    // families), so group through a map keyed by family name.
    let mut families: std::collections::BTreeMap<String, (&'static str, Vec<String>)> =
        std::collections::BTreeMap::new();
    for (name, v) in &snap.entries {
        let (family, labels) = sanitize_name(name);
        match v {
            SnapshotValue::Counter(c) => {
                let line = format!("{family}{} {c}", render_labels(&labels));
                families
                    .entry(family)
                    .or_insert_with(|| ("counter", Vec::new()))
                    .1
                    .push(line);
            }
            SnapshotValue::Gauge(g) => {
                let line = format!("{family}{} {g}", render_labels(&labels));
                families
                    .entry(family)
                    .or_insert_with(|| ("gauge", Vec::new()))
                    .1
                    .push(line);
            }
            SnapshotValue::Histogram(h) => {
                // Cumulative buckets up to the highest non-empty one,
                // then +Inf. `_count` uses bucket_total() so a
                // mid-flight scrape's count never lags its buckets.
                let total = h.bucket_total();
                let mut lines = Vec::new();
                let mut cum = 0u64;
                let top = h.buckets.iter().rposition(|&b| b > 0).unwrap_or(0);
                for (i, b) in h.buckets.iter().enumerate().take(top + 1) {
                    cum += b;
                    if *b == 0 && i != top {
                        continue; // empty interior buckets add no information
                    }
                    lines.push(format!(
                        "{family}_bucket{} {cum}",
                        render_labels_plus(&labels, "le", &le_of(i)),
                    ));
                }
                lines.push(format!(
                    "{family}_bucket{} {total}",
                    render_labels_plus(&labels, "le", "+Inf"),
                ));
                lines.push(format!("{family}_sum{} {}", render_labels(&labels), h.sum));
                lines.push(format!("{family}_count{} {total}", render_labels(&labels)));
                families
                    .entry(family)
                    .or_insert_with(|| ("histogram", Vec::new()))
                    .1
                    .append(&mut lines);
            }
        }
    }
    let mut out = String::new();
    for (family, (kind, lines)) in &families {
        out.push_str(&format!("# TYPE {family} {kind}\n"));
        for line in lines {
            out.push_str(line);
            out.push('\n');
        }
    }
    if !build_info.is_empty() {
        let labels: Vec<(String, String)> = build_info.to_vec();
        out.push_str("# TYPE store_build_info gauge\n");
        out.push_str(&format!("store_build_info{} 1\n", render_labels(&labels)));
    }
    out
}

/// Flatten a snapshot into one JSON object (`/snapshot.json`'s body).
fn snapshot_json(snap: &MetricsSnapshot) -> String {
    let fields = snap
        .flatten("")
        .into_iter()
        .map(|(name, v)| {
            let v = if v.is_finite() { v } else { 0.0 };
            format!("\"{name}\":{v}")
        })
        .collect::<Vec<_>>()
        .join(",");
    format!("{{{fields}}}")
}

/// Render the anomaly snapshots (`/anomalies.json`'s body).
fn anomalies_json(anomalies: &[AnomalySnapshot]) -> String {
    let items = anomalies
        .iter()
        .map(|a| {
            let events = a
                .events
                .iter()
                .map(crate::trace::TraceEvent::json_line)
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "{{\"cause\":\"{}\",\"tid\":{},\"at_ns\":{},\"events\":[{events}]}}",
                a.cause.as_str(),
                a.tid,
                a.at_ns,
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!("[{items}]")
}

struct Inner {
    sources: Mutex<ExportSources>,
    stop: AtomicBool,
    start: Instant,
    scrapes: AtomicU64,
}

/// The introspection server. See the module docs for endpoints and
/// threading; construct with [`ExportServer::spawn`].
pub struct ExportServer {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ExportServer {
    /// Bind `addr` (port 0 picks a free port — read it back with
    /// [`ExportServer::local_addr`]) and start serving `sources`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(
        addr: impl ToSocketAddrs,
        sources: ExportSources,
    ) -> std::io::Result<ExportServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            sources: Mutex::new(sources),
            stop: AtomicBool::new(false),
            start: Instant::now(),
            scrapes: AtomicU64::new(0),
        });
        let worker = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("obs-export".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if worker.stop.load(Ordering::Acquire) {
                        return;
                    }
                    let Ok(stream) = conn else { continue };
                    let h = Arc::clone(&worker);
                    // Short-lived per-connection thread; detached — the
                    // socket timeouts bound its lifetime.
                    let _ = std::thread::Builder::new()
                        .name("obs-export-conn".into())
                        .spawn(move || h.handle(stream));
                }
            })
            .expect("spawn obs-export thread");
        Ok(ExportServer {
            inner,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (the actual port when spawned with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Scrapes served so far (any endpoint).
    #[must_use]
    pub fn scrapes(&self) -> u64 {
        self.inner.scrapes.load(Ordering::Relaxed)
    }

    /// Replace the served sources (a scenario harness reuses one server
    /// across consecutive store instances: install each run's closures
    /// right after the store is built).
    pub fn install(&self, sources: ExportSources) {
        *self.inner.sources.lock().unwrap_or_else(|p| p.into_inner()) = sources;
    }

    /// Stop accepting, wake the accept loop, and join it. In-flight
    /// connection handlers finish on their own (bounded by the socket
    /// timeouts). Idempotent; also runs on drop.
    pub fn stop(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            // Wake the blocking accept with a throwaway connection.
            if let Ok(s) = TcpStream::connect(self.addr) {
                let _ = s.shutdown(Shutdown::Both);
            }
            let _ = h.join();
        }
    }
}

impl Drop for ExportServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl Inner {
    fn handle(&self, mut stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        // Read until the end of the request head (or cutoffs); only the
        // request line matters.
        let mut buf = [0u8; 2048];
        let mut len = 0;
        while len < buf.len() {
            match stream.read(&mut buf[len..]) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    len += n;
                    if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
                        break;
                    }
                }
            }
        }
        let head = String::from_utf8_lossy(&buf[..len]);
        let request_line = head.lines().next().unwrap_or("");
        let mut parts = request_line.split_whitespace();
        let method = parts.next().unwrap_or("");
        let raw_path = parts.next().unwrap_or("");
        // Strip any query string; scrapers may append one.
        let path = raw_path.split('?').next().unwrap_or("");
        if method != "GET" {
            let _ = respond(&mut stream, 405, "text/plain; charset=utf-8", "GET only\n");
            return;
        }
        self.scrapes.fetch_add(1, Ordering::Relaxed);
        let sources = self.sources.lock().unwrap_or_else(|p| p.into_inner());
        let (status, content_type, body) = match path {
            "/metrics" => {
                let mut snap = sources
                    .snapshot
                    .as_ref()
                    .map_or_else(|| MetricsSnapshot { entries: vec![] }, |f| f());
                // Self-describing scrape extras: server uptime and
                // scrape count, injected name-sorted so `get()` keeps
                // working on the extended snapshot.
                let uptime = self.start.elapsed().as_nanos() as u64;
                for (name, v) in [
                    (
                        "obs.export.scrapes",
                        SnapshotValue::Counter(self.scrapes.load(Ordering::Relaxed)),
                    ),
                    ("obs.uptime_ns", SnapshotValue::Gauge(uptime as i64)),
                ] {
                    let at = snap
                        .entries
                        .binary_search_by(|(n, _)| n.as_str().cmp(name))
                        .unwrap_or_else(|i| i);
                    snap.entries.insert(at, (name.to_string(), v));
                }
                (
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    render_prometheus(&snap, &sources.build_info),
                )
            }
            "/snapshot.json" => {
                let body = sources.snapshot.as_ref().map_or_else(
                    || "{\"disabled\":true}".to_string(),
                    |f| snapshot_json(&f()),
                );
                (200, "application/json", body)
            }
            "/windows.json" => {
                let body = sources.windows.as_ref().map_or_else(
                    || "{\"disabled\":true}".to_string(),
                    |f| {
                        let lines = f()
                            .iter()
                            .map(Window::json_line)
                            .collect::<Vec<_>>()
                            .join(",");
                        format!("[{lines}]")
                    },
                );
                (200, "application/json", body)
            }
            "/anomalies.json" => {
                let body = sources.anomalies.as_ref().map_or_else(
                    || "{\"disabled\":true}".to_string(),
                    |f| anomalies_json(&f()),
                );
                (200, "application/json", body)
            }
            "/health.json" => {
                let body = sources
                    .health
                    .as_ref()
                    .map_or_else(|| "{\"disabled\":true}".to_string(), |f| f());
                (200, "application/json", body)
            }
            "/" | "/index" => (
                200,
                "text/plain; charset=utf-8",
                "obs introspection endpoints:\n  /metrics\n  /snapshot.json\n  /windows.json\n  \
                 /anomalies.json\n  /health.json\n"
                    .to_string(),
            ),
            _ => (404, "text/plain; charset=utf-8", "not found\n".to_string()),
        };
        drop(sources);
        let _ = respond(&mut stream, status, content_type, &body);
    }
}

/// Write one HTTP response and close.
fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    /// Satellite: dotted names sanitize, `shard<i>` / `stage<i>` lift
    /// into labels, and other segments pass through underscored.
    #[test]
    fn name_sanitization_and_label_extraction() {
        assert_eq!(
            sanitize_name("store.shard3.ops"),
            (
                "store_shard_ops".to_string(),
                vec![("shard".to_string(), "3".to_string())]
            )
        );
        assert_eq!(
            sanitize_name("store.shard10.bundle_entries"),
            (
                "store_shard_bundle_entries".to_string(),
                vec![("shard".to_string(), "10".to_string())]
            )
        );
        assert_eq!(
            sanitize_name("ingest.queue_depth"),
            ("ingest_queue_depth".to_string(), vec![])
        );
        // Digit suffixes only lift on the known dense words.
        assert_eq!(sanitize_name("a.p99"), ("a_p99".to_string(), vec![]));
        assert_eq!(
            sanitize_name("x.stage2.lat"),
            (
                "x_stage_lat".to_string(),
                vec![("stage".to_string(), "2".to_string())]
            )
        );
        // Hostile characters degrade to underscores; leading digits get
        // a guard underscore.
        assert_eq!(sanitize_name("a-b.c d"), ("a_b_c_d".to_string(), vec![]));
        assert_eq!(sanitize_name("9lives"), ("_9lives".to_string(), vec![]));
    }

    /// Satellite: histogram buckets render cumulative and monotone, the
    /// `+Inf` bucket equals `_count`, and families group contiguously.
    #[test]
    fn prometheus_histograms_are_cumulative_and_families_contiguous() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("store.pipeline.finalize_ns");
        for v in [1u64, 1, 3, 100, 5000] {
            h.record(0, v);
        }
        reg.counter("store.shard0.ops").add(0, 7);
        reg.counter("store.shard1.ops").add(0, 3);
        // This counter family interleaves with shard ops in sorted
        // entry order — the renderer must still group it contiguously.
        reg.counter("store.shard0.bundle_entries").add(0, 2);
        reg.counter("store.shard1.bundle_entries").add(0, 4);
        let text = render_prometheus(&reg.snapshot(), &[]);

        // Cumulative, monotone non-decreasing bucket counts ending in
        // +Inf == _count.
        let buckets: Vec<(String, u64)> = text
            .lines()
            .filter(|l| l.starts_with("store_pipeline_finalize_ns_bucket"))
            .map(|l| {
                let (series, v) = l.rsplit_once(' ').unwrap();
                let le = series
                    .split("le=\"")
                    .nth(1)
                    .unwrap()
                    .trim_end_matches("\"}");
                (le.to_string(), v.parse::<u64>().unwrap())
            })
            .collect();
        assert!(buckets.len() >= 3, "{text}");
        assert!(
            buckets.windows(2).all(|w| w[0].1 <= w[1].1),
            "buckets not cumulative: {buckets:?}"
        );
        let (last_le, last_n) = buckets.last().unwrap();
        assert_eq!(last_le, "+Inf");
        assert_eq!(*last_n, 5);
        // le values (excluding +Inf) are strictly increasing bounds.
        let les: Vec<u64> = buckets
            .iter()
            .filter(|(le, _)| le != "+Inf")
            .map(|(le, _)| le.parse().unwrap())
            .collect();
        assert!(les.windows(2).all(|w| w[0] < w[1]), "{les:?}");
        assert!(
            text.contains("store_pipeline_finalize_ns_sum 5105"),
            "{text}"
        );
        assert!(
            text.contains("store_pipeline_finalize_ns_count 5"),
            "{text}"
        );

        // Shard counters collapse into one labelled family…
        assert!(text.contains("# TYPE store_shard_ops counter"), "{text}");
        assert!(text.contains("store_shard_ops{shard=\"0\"} 7"), "{text}");
        assert!(text.contains("store_shard_ops{shard=\"1\"} 3"), "{text}");
        // …and every family's series sit contiguously under one # TYPE:
        // a family name never reappears after a different family began.
        let mut seen_families = Vec::new();
        for l in text.lines().filter(|l| l.starts_with("# TYPE ")) {
            let fam = l.split_whitespace().nth(2).unwrap();
            assert!(!seen_families.contains(&fam.to_string()), "{fam} repeated");
            seen_families.push(fam.to_string());
        }
        let mut current = String::new();
        for l in text.lines() {
            if let Some(rest) = l.strip_prefix("# TYPE ") {
                current = rest.split_whitespace().next().unwrap().to_string();
            } else if !l.is_empty() {
                let series = l.split([' ', '{']).next().unwrap();
                assert!(
                    series.starts_with(current.as_str()),
                    "series {series} outside its family {current}"
                );
            }
        }
    }

    #[test]
    fn build_info_renders_as_info_metric() {
        let reg = MetricsRegistry::new();
        let text = render_prometheus(
            &reg.snapshot(),
            &[
                ("schema".to_string(), "5".to_string()),
                ("backend".to_string(), "bundle".to_string()),
            ],
        );
        assert!(
            text.contains("store_build_info{schema=\"5\",backend=\"bundle\"} 1"),
            "{text}"
        );
    }

    /// Pure-std scrape of a live server over loopback.
    #[test]
    fn server_answers_every_endpoint_over_loopback() {
        let reg = MetricsRegistry::new();
        reg.counter("store.txn.commits").add(0, 42);
        reg.histogram("store.pipeline.finalize_ns").record(0, 900);
        let src = reg.clone();
        let sources = ExportSources::new()
            .with_snapshot(move || src.snapshot())
            .with_windows(Vec::new)
            .with_build_info(vec![("schema".to_string(), "5".to_string())]);
        let server = ExportServer::spawn("127.0.0.1:0", sources).unwrap();
        let addr = server.local_addr();

        let get = |path: &str| -> (String, String) {
            let mut s = TcpStream::connect(addr).unwrap();
            write!(
                s,
                "GET {path} HTTP/1.0\r\nHost: x\r\nConnection: close\r\n\r\n"
            )
            .unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            let (head, body) = out.split_once("\r\n\r\n").unwrap();
            (head.to_string(), body.to_string())
        };

        let (head, body) = get("/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        assert!(body.contains("store_txn_commits 42"), "{body}");
        assert!(body.contains("store_pipeline_finalize_ns_bucket"), "{body}");
        assert!(body.contains("obs_uptime_ns"), "{body}");
        assert!(body.contains("obs_export_scrapes"), "{body}");
        assert!(body.contains("store_build_info{schema=\"5\"} 1"), "{body}");

        let (_, body) = get("/snapshot.json");
        assert!(body.contains("\"store.txn.commits\":42"), "{body}");
        let (_, body) = get("/windows.json?k=5");
        assert_eq!(body, "[]", "query strings strip");
        let (_, body) = get("/anomalies.json");
        assert!(body.contains("disabled"), "unwired source: {body}");
        let (_, body) = get("/health.json");
        assert!(body.contains("disabled"), "unwired source: {body}");
        let (head, _) = get("/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");
        let (head, body) = get("/");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(body.contains("/metrics"), "{body}");
        assert!(server.scrapes() >= 7);

        // install() swaps sources live.
        server.install(ExportSources::new());
        let (_, body) = get("/snapshot.json");
        assert!(body.contains("disabled"), "{body}");
        drop(server);
        // Stopped server no longer accepts.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }
}
