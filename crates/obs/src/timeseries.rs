//! Windowed time-series sampling over [`MetricsSnapshot`]s.
//!
//! Aggregate counters answer "how much over the whole run"; the open
//! online-resharding work needs **"how did load shift over time"** —
//! specifically `store.shard<i>.ops` *deltas per window*, the key-skew
//! feed a splitter consumes. A [`TimeseriesSampler`] is a background
//! thread that snapshots a registry at a fixed cadence, subtracts the
//! previous snapshot ([`MetricsSnapshot::delta`]), and turns each delta
//! into one [`Window`]: commit/conflict rates, the live ingest queue
//! depth, per-shard op counts, and a derived [`SkewReport`]. The last K
//! windows are kept in a ring; each window renders as one JSON line
//! ([`Window::json_line`]) or flattens into `(name, value)` metrics for
//! embedding in a run record.
//!
//! Stopping the sampler emits one final *partial* window, so — as long
//! as the ring has not evicted anything ([`TimeseriesSampler::dropped`]
//! is 0) — summing any counter's per-window deltas reproduces exactly
//! `final − at-spawn` of that counter. The reconciliation tests and the
//! `store_txn` smoke gate rely on this.
//!
//! [`MetricsSnapshot`]: crate::MetricsSnapshot
//! [`MetricsSnapshot::delta`]: crate::MetricsSnapshot::delta

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::{Gauge, MetricsSnapshot, SnapshotValue};

/// The per-window callback [`TimeseriesSampler::spawn_with`] accepts
/// (runs on the sampler thread, in window order).
pub type WindowObserver = Box<dyn Fn(&Window) + Send>;

/// Default ring capacity (windows retained).
pub const DEFAULT_WINDOW_CAPACITY: usize = 512;

/// Per-window shard-load skew, derived from the `store.shard<i>.ops`
/// counter deltas — the signal the planned resharding policy consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewReport {
    /// Largest single shard's share of the window's ops, in `0.0..=1.0`
    /// (`0.0` when the window saw no shard ops). A perfectly uniform
    /// load reads `1/shards`; `1.0` means one shard took everything.
    pub max_share: f64,
    /// Mean per-shard share (`1/shards` whenever any ops landed — the
    /// uniform baseline `max_share` is compared against; `0.0` on an
    /// empty window).
    pub mean_share: f64,
    /// Shard with the most ops this window; `None` on an empty window.
    pub hottest_shard: Option<usize>,
    /// Total shard ops in the window (the share denominator).
    pub total_ops: u64,
}

impl SkewReport {
    /// Derive a report from one window's per-shard op deltas.
    #[must_use]
    pub fn from_shard_ops(shard_ops: &[u64]) -> SkewReport {
        let total: u64 = shard_ops.iter().sum();
        if total == 0 || shard_ops.is_empty() {
            return SkewReport {
                max_share: 0.0,
                mean_share: 0.0,
                hottest_shard: None,
                total_ops: 0,
            };
        }
        let (hottest, max) = shard_ops
            .iter()
            .enumerate()
            .max_by_key(|(_, ops)| **ops)
            .expect("non-empty");
        SkewReport {
            max_share: *max as f64 / total as f64,
            mean_share: 1.0 / shard_ops.len() as f64,
            hottest_shard: Some(hottest),
            total_ops: total,
        }
    }
}

/// One sampling window: the delta between two consecutive snapshots,
/// reduced to the rates and shares the harness and the skew feed need.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    /// Window ordinal, 0-based from sampler spawn.
    pub index: u64,
    /// Window start, monotonic nanoseconds on the sampler's clock
    /// (0 = sampler spawn).
    pub start_ns: u64,
    /// Window length in nanoseconds (the final window is usually
    /// shorter than the cadence).
    pub dur_ns: u64,
    /// `store.txn.commits` delta.
    pub commits: u64,
    /// `store.txn.conflicts.{prepare,validate}` delta, summed.
    pub conflicts: u64,
    /// Commit throughput over the window, per second (`0.0` on a
    /// zero-length window).
    pub commits_per_s: f64,
    /// Conflicts per commit over the window (`0.0` when no commits).
    pub conflict_rate: f64,
    /// `ingest.depth` gauge at window end (pass-through level, not a
    /// delta; `0` when the run has no ingest front-end).
    pub queue_depth: i64,
    /// p99 of the `store.pipeline.finalize_ns` histogram *over this
    /// window* (bucket upper bound, ns; `0` when the window recorded no
    /// finalize samples) — the latency signal the health monitor's
    /// `LatencyBurn` check consumes.
    pub finalize_p99_ns: u64,
    /// Per-shard `store.shard<i>.ops` deltas, dense by shard index.
    pub shard_ops: Vec<u64>,
    /// Skew derived from [`Window::shard_ops`].
    pub skew: SkewReport,
}

/// Counter total in `snap`, 0 when missing or of another kind.
fn counter_of(snap: &MetricsSnapshot, name: &str) -> u64 {
    match snap.get(name) {
        Some(SnapshotValue::Counter(c)) => *c,
        _ => 0,
    }
}

impl Window {
    /// Reduce the delta between `earlier` and `current` (consecutive
    /// snapshots of one registry) to a window. `current` also supplies
    /// the pass-through gauge levels.
    #[must_use]
    pub fn from_snapshots(
        index: u64,
        start_ns: u64,
        dur_ns: u64,
        earlier: &MetricsSnapshot,
        current: &MetricsSnapshot,
    ) -> Window {
        let delta = current.delta(earlier);
        let commits = counter_of(&delta, "store.txn.commits");
        let conflicts = counter_of(&delta, "store.txn.conflicts.prepare")
            + counter_of(&delta, "store.txn.conflicts.validate");
        // `store.shard<i>.ops`, dense by `i` (entries are name-sorted,
        // but "shard10" sorts before "shard2" — place by parsed index).
        let mut shard_ops = Vec::new();
        for (name, v) in &delta.entries {
            if let (Some(rest), SnapshotValue::Counter(c)) = (name.strip_prefix("store.shard"), v) {
                if let Some(i) = rest
                    .strip_suffix(".ops")
                    .and_then(|n| n.parse::<usize>().ok())
                {
                    if shard_ops.len() <= i {
                        shard_ops.resize(i + 1, 0);
                    }
                    shard_ops[i] = *c;
                }
            }
        }
        let queue_depth = match current.get("ingest.depth") {
            Some(SnapshotValue::Gauge(g)) => *g,
            _ => 0,
        };
        let finalize_p99_ns = match delta.get("store.pipeline.finalize_ns") {
            Some(SnapshotValue::Histogram(h)) => h.quantile(0.99),
            _ => 0,
        };
        Window {
            index,
            start_ns,
            dur_ns,
            commits,
            conflicts,
            commits_per_s: if dur_ns == 0 {
                0.0
            } else {
                commits as f64 * 1e9 / dur_ns as f64
            },
            conflict_rate: if commits == 0 {
                0.0
            } else {
                conflicts as f64 / commits as f64
            },
            queue_depth,
            finalize_p99_ns,
            skew: SkewReport::from_shard_ops(&shard_ops),
            shard_ops,
        }
    }

    /// Render as one JSON-lines object (hand-rolled like the rest of the
    /// crate; all fields numeric, `skew.hottest_shard` is `-1` on an
    /// empty window).
    #[must_use]
    pub fn json_line(&self) -> String {
        let hottest = self.skew.hottest_shard.map_or(-1, |s| s as i64);
        let shard_ops = self
            .shard_ops
            .iter()
            .map(|o| o.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"window\":{},\"start_ns\":{},\"dur_ns\":{},\"commits\":{},\"conflicts\":{},\
             \"commits_per_s\":{:.3},\"conflict_rate\":{:.6},\"queue_depth\":{},\
             \"finalize_p99_ns\":{},\
             \"skew.max_share\":{:.6},\"skew.mean_share\":{:.6},\"skew.hottest_shard\":{hottest},\
             \"skew.total_ops\":{},\"shard_ops\":[{shard_ops}]}}",
            self.index,
            self.start_ns,
            self.dur_ns,
            self.commits,
            self.conflicts,
            self.commits_per_s,
            self.conflict_rate,
            self.queue_depth,
            self.finalize_p99_ns,
            self.skew.max_share,
            self.skew.mean_share,
            self.skew.total_ops,
        )
    }

    /// Flatten into `(name, value)` metrics (the shape run records
    /// embed): scalar fields under their JSON names plus one
    /// `shard<i>.ops` per shard.
    #[must_use]
    pub fn flatten(&self) -> Vec<(String, f64)> {
        let mut out = vec![
            ("window".to_string(), self.index as f64),
            ("start_ns".to_string(), self.start_ns as f64),
            ("dur_ns".to_string(), self.dur_ns as f64),
            ("commits".to_string(), self.commits as f64),
            ("conflicts".to_string(), self.conflicts as f64),
            ("commits_per_s".to_string(), self.commits_per_s),
            ("conflict_rate".to_string(), self.conflict_rate),
            ("queue_depth".to_string(), self.queue_depth as f64),
            ("finalize_p99_ns".to_string(), self.finalize_p99_ns as f64),
            ("skew.max_share".to_string(), self.skew.max_share),
            ("skew.mean_share".to_string(), self.skew.mean_share),
            (
                "skew.hottest_shard".to_string(),
                self.skew.hottest_shard.map_or(-1.0, |s| s as f64),
            ),
            ("skew.total_ops".to_string(), self.skew.total_ops as f64),
        ];
        for (i, ops) in self.shard_ops.iter().enumerate() {
            out.push((format!("shard{i}.ops"), *ops as f64));
        }
        out
    }
}

struct Shared {
    stop: AtomicBool,
    capacity: usize,
    windows: Mutex<VecDeque<Window>>,
    dropped: AtomicU64,
}

impl Shared {
    fn push(&self, w: Window) {
        let mut g = self.windows.lock().unwrap_or_else(|p| p.into_inner());
        if g.len() == self.capacity {
            g.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        g.push_back(w);
    }
}

/// A clonable read-only handle onto a sampler's window ring. Unlike the
/// [`TimeseriesSampler`] itself (whose `stop()` consumes it), a reader
/// can be handed to long-lived consumers — the export server's
/// `/windows.json` closure — and keeps answering after the sampler
/// stops (it sees the final ring contents, including the flushed
/// partial window).
#[derive(Clone)]
pub struct WindowsReader {
    shared: Arc<Shared>,
}

impl WindowsReader {
    /// The retained windows, oldest first.
    #[must_use]
    pub fn windows(&self) -> Vec<Window> {
        self.shared
            .windows
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Windows evicted from the ring so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }
}

/// A background sampling thread over one snapshot source. See the
/// module docs for the windowing and reconciliation contract.
pub struct TimeseriesSampler {
    shared: Arc<Shared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TimeseriesSampler {
    /// Spawn a sampler that calls `snapshot` every `interval` and keeps
    /// the last `capacity` windows. The base snapshot is taken *on the
    /// calling thread before spawn returns*, so the windows account for
    /// everything recorded after this call. `snapshot` must refresh any
    /// sampled gauges itself (the store's `obs_snapshot` does) and must
    /// be safe to call from the sampler thread — hand it its own
    /// registered store handle, not a live worker's thread id.
    pub fn spawn(
        interval: Duration,
        capacity: usize,
        snapshot: impl Fn() -> MetricsSnapshot + Send + 'static,
    ) -> TimeseriesSampler {
        Self::spawn_with(interval, capacity, snapshot, None, None)
    }

    /// [`TimeseriesSampler::spawn`] plus the obs-v3 hooks: `observer`
    /// runs on the sampler thread with each completed window *in order*
    /// (including the final partial one) — this is where a
    /// [`HealthMonitor`](crate::health::HealthMonitor) plugs in — and
    /// `dropped_gauge` (e.g. `obs.timeseries.dropped_windows`) is kept
    /// at the ring's eviction count after every window, so
    /// self-observability losses are scrapable rather than silent.
    pub fn spawn_with(
        interval: Duration,
        capacity: usize,
        snapshot: impl Fn() -> MetricsSnapshot + Send + 'static,
        observer: Option<WindowObserver>,
        dropped_gauge: Option<Gauge>,
    ) -> TimeseriesSampler {
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            capacity: capacity.max(1),
            windows: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        });
        let base = snapshot();
        let worker = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("obs-timeseries".into())
            .spawn(move || {
                let start = Instant::now();
                let mut prev = base;
                let mut prev_ns = 0u64;
                let mut index = 0u64;
                loop {
                    // Sleep in short slices so stop() never waits a
                    // whole cadence; the final window is the partial
                    // slice up to the stop.
                    let window_end = start.elapsed() + interval;
                    let stopping = loop {
                        if worker.stop.load(Ordering::Acquire) {
                            break true;
                        }
                        let now = start.elapsed();
                        if now >= window_end {
                            break false;
                        }
                        std::thread::sleep((window_end - now).min(Duration::from_millis(2)));
                    };
                    let now_ns = start.elapsed().as_nanos() as u64;
                    let cur = snapshot();
                    let w = Window::from_snapshots(
                        index,
                        prev_ns,
                        now_ns.saturating_sub(prev_ns),
                        &prev,
                        &cur,
                    );
                    if let Some(obs) = &observer {
                        obs(&w);
                    }
                    worker.push(w);
                    if let Some(g) = &dropped_gauge {
                        g.set(worker.dropped.load(Ordering::Relaxed) as i64);
                    }
                    index += 1;
                    prev = cur;
                    prev_ns = now_ns;
                    if stopping {
                        return;
                    }
                }
            })
            .expect("spawn obs-timeseries thread");
        TimeseriesSampler {
            shared,
            handle: Some(handle),
        }
    }

    /// A clonable read-only handle onto this sampler's window ring that
    /// stays valid after [`TimeseriesSampler::stop`].
    #[must_use]
    pub fn reader(&self) -> WindowsReader {
        WindowsReader {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The retained windows, oldest first.
    #[must_use]
    pub fn windows(&self) -> Vec<Window> {
        self.shared
            .windows
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Windows evicted from the ring so far (0 ⇒ the reconciliation
    /// contract in the module docs holds over [`Self::windows`]).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Stop sampling: emits the final partial window, joins the thread,
    /// and returns every retained window.
    #[must_use]
    pub fn stop(mut self) -> Vec<Window> {
        self.join();
        self.windows()
    }

    fn join(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TimeseriesSampler {
    fn drop(&mut self) {
        self.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn skew_report_shares() {
        let r = SkewReport::from_shard_ops(&[10, 30, 40, 20]);
        assert!((r.max_share - 0.4).abs() < 1e-12);
        assert!((r.mean_share - 0.25).abs() < 1e-12);
        assert_eq!(r.hottest_shard, Some(2));
        assert_eq!(r.total_ops, 100);
        let empty = SkewReport::from_shard_ops(&[0, 0]);
        assert_eq!(empty.max_share, 0.0);
        assert_eq!(empty.hottest_shard, None);
        assert_eq!(SkewReport::from_shard_ops(&[]).total_ops, 0);
    }

    #[test]
    fn window_reduces_a_delta() {
        let reg = MetricsRegistry::new();
        let commits = reg.counter("store.txn.commits");
        let prep = reg.counter("store.txn.conflicts.prepare");
        let val = reg.counter("store.txn.conflicts.validate");
        let s0 = reg.counter("store.shard0.ops");
        let s1 = reg.counter("store.shard1.ops");
        // shard10 exercises the numeric (not lexicographic) placement.
        let s10 = reg.counter("store.shard10.ops");
        let depth = reg.gauge("ingest.depth");
        let earlier = reg.snapshot();
        commits.add(0, 100);
        prep.add(0, 4);
        val.add(0, 6);
        s0.add(0, 30);
        s1.add(0, 60);
        s10.add(0, 10);
        depth.set(7);
        let w = Window::from_snapshots(3, 500, 2_000_000_000, &earlier, &reg.snapshot());
        assert_eq!(w.index, 3);
        assert_eq!(w.commits, 100);
        assert_eq!(w.conflicts, 10);
        assert!((w.commits_per_s - 50.0).abs() < 1e-9);
        assert!((w.conflict_rate - 0.1).abs() < 1e-12);
        assert_eq!(w.queue_depth, 7);
        assert_eq!(w.shard_ops.len(), 11, "dense up to shard10");
        assert_eq!(w.shard_ops[0], 30);
        assert_eq!(w.shard_ops[1], 60);
        assert_eq!(w.shard_ops[10], 10);
        assert_eq!(w.skew.hottest_shard, Some(1));
        assert!((w.skew.max_share - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_window_emits_no_garbage() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("store.txn.commits");
        let snap = reg.snapshot();
        let w = Window::from_snapshots(0, 0, 0, &snap, &snap);
        assert_eq!(w.commits_per_s, 0.0, "zero-length window divides nothing");
        assert_eq!(w.conflict_rate, 0.0);
        let line = w.json_line();
        assert!(!line.contains("NaN") && !line.contains("inf"), "{line}");
        assert!(line.contains("\"skew.hottest_shard\":-1"), "{line}");
        for (name, v) in w.flatten() {
            assert!(v.is_finite(), "{name} not finite");
        }
    }

    #[test]
    fn json_line_and_flatten_carry_the_gated_fields() {
        let w = Window {
            index: 2,
            start_ns: 10,
            dur_ns: 1_000_000_000,
            commits: 5,
            conflicts: 1,
            commits_per_s: 5.0,
            conflict_rate: 0.2,
            queue_depth: 3,
            finalize_p99_ns: 4096,
            shard_ops: vec![4, 1],
            skew: SkewReport::from_shard_ops(&[4, 1]),
        };
        let line = w.json_line();
        for field in [
            "\"window\":2",
            "\"commits_per_s\":5.000",
            "\"skew.max_share\":0.800000",
            "\"queue_depth\":3",
            "\"finalize_p99_ns\":4096",
            "\"shard_ops\":[4,1]",
        ] {
            assert!(line.contains(field), "{field} missing from {line}");
        }
        let flat = w.flatten();
        let get = |n: &str| flat.iter().find(|(k, _)| k == n).map(|(_, v)| *v);
        assert_eq!(get("skew.max_share"), Some(0.8));
        assert_eq!(get("commits_per_s"), Some(5.0));
        assert_eq!(get("shard0.ops"), Some(4.0));
        assert_eq!(get("shard1.ops"), Some(1.0));
    }

    /// Satellite: per-window deltas must sum to exactly the final
    /// counter values — windows never double-count or drop events, and
    /// stop() flushes the in-flight partial window.
    #[test]
    fn window_deltas_sum_to_final_counters() {
        let reg = MetricsRegistry::new();
        let commits = reg.counter("store.txn.commits");
        let shard0 = reg.counter("store.shard0.ops");
        let shard1 = reg.counter("store.shard1.ops");
        let src = reg.clone();
        let sampler =
            TimeseriesSampler::spawn(Duration::from_millis(5), 64, move || src.snapshot());
        for i in 0..200u64 {
            commits.incr(0);
            shard0.add(0, 2);
            if i % 4 == 0 {
                shard1.incr(0);
            }
            if i % 50 == 0 {
                std::thread::sleep(Duration::from_millis(6));
            }
        }
        let windows = sampler.stop();
        assert!(windows.len() >= 3, "got {} windows", windows.len());
        assert_eq!(windows.iter().map(|w| w.commits).sum::<u64>(), 200);
        let sum0: u64 = windows
            .iter()
            .map(|w| w.shard_ops.first().copied().unwrap_or(0))
            .sum();
        let sum1: u64 = windows
            .iter()
            .map(|w| w.shard_ops.get(1).copied().unwrap_or(0))
            .sum();
        assert_eq!(sum0, shard0.value());
        assert_eq!(sum1, shard1.value());
        // Indexes are consecutive from 0 (nothing dropped).
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(w.index, i as u64);
        }
    }

    #[test]
    fn spawn_with_observer_sees_windows_in_order_and_reader_outlives_stop() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("store.txn.commits");
        let fin = reg.histogram("store.pipeline.finalize_ns");
        let src = reg.clone();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let dropped_gauge = reg.gauge("obs.timeseries.dropped_windows");
        let sampler = TimeseriesSampler::spawn_with(
            Duration::from_millis(5),
            64,
            move || src.snapshot(),
            Some(Box::new(move |w: &Window| {
                sink.lock().unwrap().push(w.index);
            })),
            Some(dropped_gauge.clone()),
        );
        let reader = sampler.reader();
        for _ in 0..100 {
            c.incr(0);
            fin.record(0, 3_000);
        }
        std::thread::sleep(Duration::from_millis(20));
        let windows = sampler.stop();
        // The observer saw every retained window, in order, including
        // the final partial one.
        let seen = seen.lock().unwrap().clone();
        assert_eq!(
            seen,
            windows.iter().map(|w| w.index).collect::<Vec<_>>(),
            "observer order matches the ring"
        );
        // The reader outlives stop() and sees the same ring.
        assert_eq!(reader.windows(), windows);
        assert_eq!(reader.dropped(), 0);
        assert_eq!(dropped_gauge.value(), 0);
        // The windows carry the finalize p99: every sample was 3000 ns,
        // so whichever window(s) caught them report a p99 bucket bound
        // covering 3000 (and windows without samples report 0).
        assert!(
            windows.iter().any(|w| w.finalize_p99_ns >= 3_000),
            "finalize p99 missing from windows"
        );
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("store.txn.commits");
        let src = reg.clone();
        let sampler = TimeseriesSampler::spawn(Duration::from_millis(1), 3, move || src.snapshot());
        c.add(0, 1);
        std::thread::sleep(Duration::from_millis(30));
        let dropped = sampler.dropped();
        let windows = sampler.stop();
        assert!(windows.len() <= 3, "capacity respected");
        assert!(dropped > 0, "old windows evicted");
        assert!(
            windows.windows(2).all(|w| w[1].index == w[0].index + 1),
            "retained windows stay consecutive"
        );
    }
}
