//! # obs — unified low-overhead metrics for the bundled-refs stack
//!
//! Every layer of the store (commit pipeline, ingest front-end, cursors,
//! EBR, the range-query tracker) produces performance signals, but until
//! this crate they lived in disconnected ad-hoc structs with no
//! latencies, no per-shard breakdown, and no single export surface. This
//! crate is that surface: a [`MetricsRegistry`] hands out three
//! instrument kinds and renders one consistent [`MetricsSnapshot`]:
//!
//! * [`Counter`] — monotonic event count, **thread-striped** (each
//!   recording thread lands on its own cache line, so hot-path
//!   increments never contend);
//! * [`Gauge`] — a point-in-time level (queue depth, retire backlog,
//!   active range queries), usually *sampled* right before a snapshot;
//! * [`Histogram`] — a latency/size distribution over **power-of-two
//!   buckets** (bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`), also
//!   thread-striped, with count and sum tracked alongside the buckets.
//!
//! ## Disabled mode
//!
//! Observability must cost nothing when it is off. Two mechanisms:
//!
//! 1. **Absence** (the store's mechanism): components hold an
//!    `Option<...>` of pre-registered instrument handles and skip every
//!    instrumentation site on `None` — one never-taken branch per site,
//!    no atomics, no clock reads. This is the default production path.
//! 2. **An inert registry** ([`MetricsRegistry::disabled`]): hands out
//!    instruments whose record methods return after one predictable
//!    branch and whose snapshot is empty, for call sites that want an
//!    unconditional handle.
//!
//! The `store_ingest` scenario's `--check-obs-overhead` panel gates that
//! mechanism 1 keeps the disabled-mode commit pipeline within noise of
//! the fully instrumented one (and therefore of the pre-obs baseline,
//! which the disabled path matches by construction).
//!
//! ## Consistency contract
//!
//! Recording is wait-free (a few relaxed atomic adds; the final count
//! increment uses `Release`). A snapshot taken **after** all recording
//! threads have finished accounts for every event exactly: no lost
//! counts, and each histogram's bucket total equals its event count. A
//! snapshot taken **while** recording is in flight is internally
//! consistent per histogram: the bucket total never lags the event count
//! (buckets are bumped before the `Release` count increment the
//! snapshot's `Acquire` load observes).

#![deny(missing_docs)]

pub mod export;
pub mod health;
pub mod timeseries;
pub mod trace;

pub use export::{ExportServer, ExportSources};
pub use health::{HealthCheck, HealthLevel, HealthMonitor, HealthReport, SloPolicy};
pub use timeseries::{SkewReport, TimeseriesSampler, Window, WindowsReader};
pub use trace::{AnomalyCause, AnomalySnapshot, TraceEvent, TraceKind, TraceRecorder};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of power-of-two buckets in a [`Histogram`] (covers the full
/// `u64` range: bucket 0 holds zeros, bucket `i ≥ 1` holds
/// `[2^(i-1), 2^i)`, the last bucket saturates).
pub const BUCKETS: usize = 64;

/// Thread stripes per instrument (power of two): recording thread `tid`
/// lands on stripe `tid & (STRIPES - 1)`, its own cache line.
const STRIPES: usize = 16;

/// One cache-line-aligned counter cell (avoids false sharing between
/// stripes; 128 bytes covers adjacent-line prefetchers).
#[repr(align(128))]
#[derive(Default)]
struct CounterCell(AtomicU64);

/// A monotonic, thread-striped event counter.
///
/// Cloning shares the underlying cells; [`Counter::add`] is wait-free
/// and contention-free across threads with distinct `tid & 15`.
#[derive(Clone)]
pub struct Counter {
    core: Arc<CounterCore>,
}

struct CounterCore {
    enabled: bool,
    cells: [CounterCell; STRIPES],
}

impl Counter {
    fn new(enabled: bool) -> Self {
        Counter {
            core: Arc::new(CounterCore {
                enabled,
                cells: Default::default(),
            }),
        }
    }

    /// Add `n` events recorded by thread `tid`.
    #[inline]
    pub fn add(&self, tid: usize, n: u64) {
        if self.core.enabled {
            self.core.cells[tid & (STRIPES - 1)]
                .0
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record one event from thread `tid`.
    #[inline]
    pub fn incr(&self, tid: usize) {
        self.add(tid, 1);
    }

    /// Current total across every stripe.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.core
            .cells
            .iter()
            .map(|c| c.0.load(Ordering::Acquire))
            .sum()
    }
}

/// A point-in-time level (single atomic; gauges are set rarely — most
/// are sampled right before a snapshot — so striping would buy nothing).
#[derive(Clone)]
pub struct Gauge {
    core: Arc<GaugeCore>,
}

struct GaugeCore {
    enabled: bool,
    value: AtomicI64,
}

impl Gauge {
    fn new(enabled: bool) -> Self {
        Gauge {
            core: Arc::new(GaugeCore {
                enabled,
                value: AtomicI64::new(0),
            }),
        }
    }

    /// Set the level.
    #[inline]
    pub fn set(&self, v: i64) {
        if self.core.enabled {
            self.core.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adjust the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if self.core.enabled {
            self.core.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current level.
    #[must_use]
    pub fn value(&self) -> i64 {
        self.core.value.load(Ordering::Relaxed)
    }
}

/// One cache-line-aligned histogram stripe: its own buckets, sum, and
/// count, so recording threads on distinct stripes never share a line.
#[repr(align(128))]
struct HistStripe {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for HistStripe {
    fn default() -> Self {
        HistStripe {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// A thread-striped power-of-two-bucket distribution (latencies in
/// nanoseconds, queue depths, group sizes — any `u64` sample).
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

struct HistogramCore {
    enabled: bool,
    stripes: Box<[HistStripe]>,
}

/// Bucket index of a sample: 0 for 0, else `floor(log2 v) + 1`, capped
/// at the last bucket.
#[inline]
fn bucket_index(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (what quantiles report, and what
/// the Prometheus exposition in [`export`] uses as `le` bounds).
#[inline]
#[must_use]
pub fn bucket_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= BUCKETS - 1 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    fn new(enabled: bool) -> Self {
        let stripes = if enabled { STRIPES } else { 0 };
        Histogram {
            core: Arc::new(HistogramCore {
                enabled,
                stripes: (0..stripes).map(|_| HistStripe::default()).collect(),
            }),
        }
    }

    /// Record one sample from thread `tid`.
    ///
    /// Ordering contract: the bucket and sum are bumped *before* the
    /// `Release` count increment, so a snapshot that `Acquire`-loads the
    /// count observes at least that many bucket entries (bucket totals
    /// never lag the count).
    #[inline]
    pub fn record(&self, tid: usize, value: u64) {
        if !self.core.enabled {
            return;
        }
        let s = &self.core.stripes[tid & (STRIPES - 1)];
        s.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(value, Ordering::Relaxed);
        s.count.fetch_add(1, Ordering::Release);
    }

    /// Merge every stripe into one summary (see the ordering contract on
    /// [`Histogram::record`]).
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        let mut out = HistogramSummary {
            count: 0,
            sum: 0,
            buckets: [0; BUCKETS],
        };
        for s in self.core.stripes.iter() {
            // Count first (Acquire pairs with the recorder's Release):
            // every event in `count` already has its bucket visible.
            out.count += s.count.load(Ordering::Acquire);
            out.sum += s.sum.load(Ordering::Relaxed);
            for (i, b) in s.buckets.iter().enumerate() {
                out.buckets[i] += b.load(Ordering::Relaxed);
            }
        }
        out
    }
}

/// A merged, immutable view of one [`Histogram`] at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Events recorded (lower bound while recording is in flight).
    pub count: u64,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Per-bucket event counts; bucket `i ≥ 1` holds `[2^(i-1), 2^i)`.
    pub buckets: [u64; BUCKETS],
}

impl HistogramSummary {
    /// Total events across buckets (`>= count` while recording is in
    /// flight, `== count` at rest).
    #[must_use]
    pub fn bucket_total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean sample.
    ///
    /// **Empty-histogram contract** (`count == 0`, e.g. a per-window
    /// delta with no samples): returns exactly `0.0` — never `NaN` —
    /// so flattened snapshots and JSON exports stay finite.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// This summary minus an `earlier` one of the same histogram
    /// (per-bucket, count, and sum subtraction; saturating, so a
    /// mismatched pair degrades to zeros instead of wrapping). The
    /// result is itself a valid summary — the per-window shape
    /// [`MetricsSnapshot::delta`] produces.
    #[must_use]
    pub fn delta(&self, earlier: &HistogramSummary) -> HistogramSummary {
        let mut buckets = [0u64; BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        HistogramSummary {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets,
        }
    }

    /// Upper bound of the bucket containing quantile `q` (in `0.0..=1.0`).
    /// Power-of-two buckets bound the answer within 2×.
    ///
    /// **Empty-histogram contract** (`bucket_total() == 0`): returns
    /// exactly `0`, for any `q` — empty per-window deltas flatten to
    /// all-zero quantiles, never garbage.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.bucket_total();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return bucket_bound(i);
            }
        }
        bucket_bound(BUCKETS - 1)
    }

    /// Upper bound of the highest non-empty bucket (`0` when empty).
    #[must_use]
    pub fn max_bound(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&b| b > 0)
            .map_or(0, bucket_bound)
    }
}

/// One instrument handle kept in the registry's name table.
#[derive(Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The value of one snapshot entry.
// Snapshots are cold-path data read a handful of times per run; the
// histogram variant's inline bucket array is not worth a Box'd indirection
// for every consumer pattern-match.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotValue {
    /// A [`Counter`] total.
    Counter(u64),
    /// A [`Gauge`] level.
    Gauge(i64),
    /// A [`Histogram`] summary.
    Histogram(HistogramSummary),
}

/// A consistent point-in-time view of every instrument in one
/// [`MetricsRegistry`], sorted by name.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` per instrument, ascending by name.
    pub entries: Vec<(String, SnapshotValue)>,
}

impl MetricsSnapshot {
    /// Look up one entry by exact name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&SnapshotValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// This snapshot minus an `earlier` one of the same registry — the
    /// per-window shape the [`timeseries`] sampler (and any before/after
    /// panel) works in. Counters and histograms subtract (saturating);
    /// **gauges pass through** at their current level (a level has no
    /// meaningful difference over a window). Entries only present here
    /// pass through whole (instruments registered mid-run start from
    /// zero); entries only present in `earlier` are dropped.
    #[must_use]
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self
                .entries
                .iter()
                .map(|(name, v)| {
                    let d = match (v, earlier.get(name)) {
                        (SnapshotValue::Counter(c), Some(SnapshotValue::Counter(e))) => {
                            SnapshotValue::Counter(c.saturating_sub(*e))
                        }
                        (SnapshotValue::Histogram(h), Some(SnapshotValue::Histogram(e))) => {
                            SnapshotValue::Histogram(h.delta(e))
                        }
                        // Gauges, new instruments, kind mismatches.
                        _ => v.clone(),
                    };
                    (name.clone(), d)
                })
                .collect(),
        }
    }

    /// Flatten into `(name, value)` float metrics (the shape
    /// `workloads::report::RunRecord` serializes), each name prefixed
    /// with `prefix`. Counters and gauges emit one metric; a histogram
    /// emits `.count`, `.sum`, `.mean`, `.p50`, `.p90`, `.p99`, `.max`.
    #[must_use]
    pub fn flatten(&self, prefix: &str) -> Vec<(String, f64)> {
        let mut out = Vec::with_capacity(self.entries.len() * 2);
        for (name, v) in &self.entries {
            match v {
                SnapshotValue::Counter(c) => out.push((format!("{prefix}{name}"), *c as f64)),
                SnapshotValue::Gauge(g) => out.push((format!("{prefix}{name}"), *g as f64)),
                SnapshotValue::Histogram(h) => {
                    out.push((format!("{prefix}{name}.count"), h.count as f64));
                    out.push((format!("{prefix}{name}.sum"), h.sum as f64));
                    out.push((format!("{prefix}{name}.mean"), h.mean()));
                    out.push((format!("{prefix}{name}.p50"), h.quantile(0.50) as f64));
                    out.push((format!("{prefix}{name}.p90"), h.quantile(0.90) as f64));
                    out.push((format!("{prefix}{name}.p99"), h.quantile(0.99) as f64));
                    out.push((format!("{prefix}{name}.max"), h.max_bound() as f64));
                }
            }
        }
        out
    }

    /// Render a human-readable table (one instrument per line;
    /// histograms show count / mean / p50 / p99 / max).
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let width = self.entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, v) in &self.entries {
            match v {
                SnapshotValue::Counter(c) => {
                    out.push_str(&format!("{name:width$}  counter {c}\n"));
                }
                SnapshotValue::Gauge(g) => {
                    out.push_str(&format!("{name:width$}  gauge   {g}\n"));
                }
                SnapshotValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{name:width$}  hist    count={} mean={:.1} p50<={} p99<={} max<={}\n",
                        h.count,
                        h.mean(),
                        h.quantile(0.50),
                        h.quantile(0.99),
                        h.max_bound()
                    ));
                }
            }
        }
        out
    }
}

/// Hands out named instruments and snapshots them all at once.
///
/// Cloning shares the registry (instruments registered through any clone
/// appear in every clone's snapshot). Registration takes a lock and is
/// meant for construction time; the returned handles are lock-free.
#[derive(Clone)]
pub struct MetricsRegistry {
    enabled: bool,
    instruments: Arc<Mutex<BTreeMap<String, Instrument>>>,
}

impl MetricsRegistry {
    /// A live registry: instruments record, snapshots report.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: true,
            instruments: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// An inert registry: instruments are no-ops (one predictable branch
    /// per record), snapshots are empty.
    #[must_use]
    pub fn disabled() -> Self {
        MetricsRegistry {
            enabled: false,
            instruments: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// Whether instruments from this registry actually record.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Get or register the counter `name`.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different instrument kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.instruments.lock().unwrap_or_else(|p| p.into_inner());
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Counter::new(self.enabled)))
        {
            Instrument::Counter(c) => c.clone(),
            _ => panic!("instrument {name:?} already registered with a different kind"),
        }
    }

    /// Get or register the gauge `name`.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different instrument kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.instruments.lock().unwrap_or_else(|p| p.into_inner());
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Gauge::new(self.enabled)))
        {
            Instrument::Gauge(g) => g.clone(),
            _ => panic!("instrument {name:?} already registered with a different kind"),
        }
    }

    /// Get or register the histogram `name`.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different instrument kind.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.instruments.lock().unwrap_or_else(|p| p.into_inner());
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(Histogram::new(self.enabled)))
        {
            Instrument::Histogram(h) => h.clone(),
            _ => panic!("instrument {name:?} already registered with a different kind"),
        }
    }

    /// Snapshot every registered instrument, sorted by name. Disabled
    /// registries return an empty snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        if !self.enabled {
            return MetricsSnapshot {
                entries: Vec::new(),
            };
        }
        let map = self.instruments.lock().unwrap_or_else(|p| p.into_inner());
        MetricsSnapshot {
            entries: map
                .iter()
                .map(|(name, inst)| {
                    let v = match inst {
                        Instrument::Counter(c) => SnapshotValue::Counter(c.value()),
                        Instrument::Gauge(g) => SnapshotValue::Gauge(g.value()),
                        Instrument::Histogram(h) => SnapshotValue::Histogram(h.summary()),
                    };
                    (name.clone(), v)
                })
                .collect(),
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(BUCKETS - 1), u64::MAX);
        // Every value's bucket bound is >= the value.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40, u64::MAX] {
            assert!(bucket_bound(bucket_index(v)) >= v, "value {v}");
        }
    }

    #[test]
    fn quantiles_and_mean_from_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h");
        for v in [1u64, 1, 2, 4, 8, 100] {
            h.record(0, v);
        }
        let s = h.summary();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 116);
        assert_eq!(s.bucket_total(), 6);
        assert!((s.mean() - 116.0 / 6.0).abs() < 1e-9);
        assert_eq!(s.quantile(0.0), 1, "min lands in bucket [1,1]");
        assert!(s.quantile(0.5) >= 2);
        assert!(s.max_bound() >= 100);
        assert!(s.quantile(1.0) == s.max_bound());
    }

    #[test]
    fn registry_get_or_register_shares_state() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("c");
        let c2 = reg.counter("c");
        c1.incr(0);
        c2.incr(5);
        assert_eq!(reg.counter("c").value(), 2);
        let g = reg.gauge("g");
        g.set(-7);
        g.add(2);
        assert_eq!(reg.gauge("g").value(), -5);
        let snap = reg.snapshot();
        assert_eq!(snap.get("c"), Some(&SnapshotValue::Counter(2)));
        assert_eq!(snap.get("g"), Some(&SnapshotValue::Gauge(-5)));
        assert!(snap.get("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn disabled_registry_is_inert() {
        let reg = MetricsRegistry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("c");
        let g = reg.gauge("g");
        let h = reg.histogram("h");
        c.add(0, 10);
        g.set(5);
        h.record(0, 99);
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0);
        assert_eq!(h.summary().count, 0);
        assert!(reg.snapshot().entries.is_empty());
    }

    /// Satellite: N threads hammer one registry; the final snapshot must
    /// account for every recorded event — no lost counts, and every
    /// histogram's bucket totals and sum must equal the exact totals.
    #[test]
    fn concurrent_hammer_loses_nothing() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 20_000;
        let reg = MetricsRegistry::new();
        let c = reg.counter("events");
        let h = reg.histogram("values");
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let c = c.clone();
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                let mut expect_sum = 0u64;
                for i in 0..PER_THREAD {
                    // Deterministic per-thread sample spread across many
                    // buckets, including zeros.
                    let v = (i.wrapping_mul(2654435761) ^ tid as u64) % 10_000;
                    c.incr(tid);
                    h.record(tid, v);
                    expect_sum += v;
                }
                expect_sum
            }));
        }
        let expected_sum: u64 = handles.into_iter().map(|j| j.join().unwrap()).sum();
        let total = THREADS as u64 * PER_THREAD;
        let snap = reg.snapshot();
        assert_eq!(snap.get("events"), Some(&SnapshotValue::Counter(total)));
        match snap.get("values") {
            Some(SnapshotValue::Histogram(s)) => {
                assert_eq!(s.count, total, "no lost count increments");
                assert_eq!(s.bucket_total(), total, "no lost bucket increments");
                assert_eq!(s.sum, expected_sum, "no lost sum");
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    /// Satellite: snapshots taken *while* recording is in flight must be
    /// internally consistent — a histogram's bucket total never lags its
    /// event count (the Release/Acquire pairing on the count).
    #[test]
    fn snapshot_while_recording_is_consistent() {
        const WRITERS: usize = 4;
        let reg = MetricsRegistry::new();
        let h = reg.histogram("live");
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for tid in 0..WRITERS {
            let h = h.clone();
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    h.record(tid, i % 4096);
                    i += 1;
                }
                i
            }));
        }
        for _ in 0..2_000 {
            let s = match reg.snapshot().get("live") {
                Some(SnapshotValue::Histogram(s)) => s.clone(),
                other => panic!("expected histogram, got {other:?}"),
            };
            assert!(
                s.bucket_total() >= s.count,
                "bucket total {} lags event count {}",
                s.bucket_total(),
                s.count
            );
        }
        stop.store(true, Ordering::Relaxed);
        let written: u64 = handles.into_iter().map(|j| j.join().unwrap()).sum();
        let s = h.summary();
        assert_eq!(s.count, written, "final snapshot accounts every event");
        assert_eq!(s.bucket_total(), written);
    }

    /// Satellite: `count == 0` summaries (fresh histograms and empty
    /// per-window deltas) must report exact zeros from every accessor —
    /// no NaN, no garbage bounds — so JSON exports stay finite.
    #[test]
    fn empty_histogram_semantics_are_defined() {
        let empty = HistogramSummary {
            count: 0,
            sum: 0,
            buckets: [0; BUCKETS],
        };
        assert_eq!(empty.mean(), 0.0);
        assert!(empty.mean().is_finite());
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(empty.quantile(q), 0, "q={q}");
        }
        assert_eq!(empty.max_bound(), 0);
        assert_eq!(empty.bucket_total(), 0);
        // A delta of one histogram with itself is empty with the same
        // guarantees.
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h");
        h.record(0, 500);
        let s = h.summary();
        let d = s.delta(&s);
        assert_eq!(d.count, 0);
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.quantile(0.99), 0);
    }

    /// Satellite: snapshot deltas subtract counters and histograms and
    /// pass gauges through.
    #[test]
    fn snapshot_delta_subtracts_counts_and_passes_gauges() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c");
        let g = reg.gauge("g");
        let h = reg.histogram("h");
        c.add(0, 5);
        g.set(10);
        h.record(0, 8);
        let earlier = reg.snapshot();
        c.add(0, 3);
        g.set(-2);
        h.record(0, 8);
        h.record(0, 100);
        let late = reg.counter("late");
        late.add(0, 7);
        let d = reg.snapshot().delta(&earlier);
        assert_eq!(d.get("c"), Some(&SnapshotValue::Counter(3)));
        assert_eq!(d.get("g"), Some(&SnapshotValue::Gauge(-2)), "pass-through");
        match d.get("h") {
            Some(SnapshotValue::Histogram(s)) => {
                assert_eq!(s.count, 2);
                assert_eq!(s.sum, 108);
                assert_eq!(s.bucket_total(), 2);
                assert!(s.max_bound() >= 100);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        // Registered after the base snapshot: passes through whole.
        assert_eq!(d.get("late"), Some(&SnapshotValue::Counter(7)));
        // Deltas flatten finitely even when a histogram delta is empty.
        let empty_delta = reg.snapshot().delta(&reg.snapshot());
        for (name, v) in empty_delta.flatten("") {
            assert!(v.is_finite(), "{name} not finite");
        }
    }

    #[test]
    fn flatten_and_table_cover_every_kind() {
        let reg = MetricsRegistry::new();
        reg.counter("a.ops").add(0, 3);
        reg.gauge("b.depth").set(9);
        let h = reg.histogram("c.lat_ns");
        h.record(0, 1000);
        let snap = reg.snapshot();
        let flat = snap.flatten("obs.");
        let names: Vec<&str> = flat.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"obs.a.ops"));
        assert!(names.contains(&"obs.b.depth"));
        for suffix in ["count", "sum", "mean", "p50", "p90", "p99", "max"] {
            let want = format!("obs.c.lat_ns.{suffix}");
            assert!(names.contains(&want.as_str()), "missing {want}");
        }
        let table = snap.render_table();
        assert!(table.contains("a.ops"));
        assert!(table.contains("counter 3"));
        assert!(table.contains("gauge   9"));
        assert!(table.contains("hist"));
    }
}
