//! Flight recorder: per-thread, lock-free, fixed-capacity ring buffers
//! of compact [`TraceEvent`]s, always overwriting the oldest entry.
//!
//! Aggregate metrics (the rest of this crate) answer "how much / how
//! slow overall"; the recorder answers **"what happened around *this*
//! abort"**: every instrumented site appends a 32-byte event to its
//! thread's ring, and [`TraceRecorder::dump`] merges the rings into one
//! time-ordered stream after the fact. An anomaly hook
//! ([`TraceRecorder::note_anomaly`]) snapshots the tail of the merged
//! stream the moment something suspicious happens (a stale-read abort, a
//! conflict-retry burst, an ingest queue rejection), so the interesting
//! interleaving survives even if the rings wrap long before shutdown.
//!
//! ## Recording cost and the disabled mode
//!
//! [`TraceRecorder::record`] is wait-free: one monotonic clock read, one
//! relaxed `fetch_add` to reserve a slot, four plain atomic stores. No
//! allocation, no locks, no branches that depend on ring occupancy.
//! Components hold an `Option<Arc<TraceRecorder>>` and skip the call
//! entirely on `None` — the same never-taken-branch contract as the
//! metric handles, so an uninstrumented store pays nothing.
//!
//! ## Torn-event freedom
//!
//! Each slot is guarded by a per-slot sequence word (a seqlock): a
//! writer publishes `2·turn + 1` before touching the payload words and
//! `2·turn + 2` after, so a reader that observes an even sequence both
//! before and after its payload loads — with the fences below — has read
//! one intact event. Readers *skip* in-flight or contended slots instead
//! of spinning; a dump is best-effort by design but never fabricates a
//! mixed event. Each thread id owns one ring (`tid % threads`), so the
//! common case is single-writer and the merged dump preserves every
//! thread's own program order. Several threads *may* share a ring (e.g.
//! anonymous producers reporting under a shard id): slot reservation via
//! `fetch_add` keeps them on distinct slots, and a torn read would
//! additionally require one writer to lap the whole ring while another
//! is mid-event — unreachable in practice at the default capacity.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Default per-thread ring capacity (events), a power of two. At ~32
/// bytes per slot this is ~128 KiB per thread — several milliseconds of
/// history on a saturated commit path.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Events captured in an anomaly snapshot (the merged-stream tail).
pub const ANOMALY_TAIL: usize = 128;

/// Snapshots retained per recorder; later anomalies only bump
/// [`TraceRecorder::anomaly_total`] (keeps a pathological abort storm
/// from turning the hook into an allocation loop).
const MAX_ANOMALIES: usize = 32;

/// `shard` value for events that are not tied to any shard.
pub const NO_SHARD: u32 = u32::MAX;

/// What an event records. See each variant for how the event's `shard`
/// and `payload` fields are used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceKind {
    /// A commit-pipeline stage is starting. `shard` carries the *stage
    /// index* (0..5, see the store's stage table); `payload` the attempt
    /// number within the current transaction.
    StageBegin = 0,
    /// A commit-pipeline stage finished. `shard` carries the stage
    /// index; `payload` the stage's wall latency in nanoseconds.
    StageEnd = 1,
    /// A pipeline-internal lock race forced a transaction retry.
    /// `shard` is the shard that lost the race; `payload` packs
    /// `(attempt << 1) | cause` with cause 0 = prepare, 1 = validate.
    Conflict = 2,
    /// A validated read went stale; the transaction aborts to the
    /// caller. `shard` is the shard whose validation failed; `payload`
    /// the attempt number.
    AbortInvalidated = 3,
    /// The `txn` crate re-ran a read-write closure after an abort.
    /// `shard` is [`NO_SHARD`]; `payload` is unused (0).
    RwRetry = 4,
    /// The ingest front-end published one group. `shard` is the group's
    /// shard; `payload` the ops in the group.
    GroupPublish = 5,
    /// Linger-window fill measured at group publish. `shard` is the
    /// group's shard; `payload` the occupancy in percent of
    /// `max_group_ops`.
    LingerFill = 6,
    /// A committer drained its queue. `shard` is the committer's shard;
    /// `payload` the submissions scooped in this drain.
    DrainScoop = 7,
    /// A bounded ingest queue rejected a submission. `shard` is the full
    /// queue's shard; `payload` the rejected op count.
    QueueFull = 8,
    /// A health check changed level (see `obs::health`). `shard` carries
    /// the check index ([`HealthCheck`](crate::health::HealthCheck) as
    /// `u32`); `payload` the new [`HealthLevel`](crate::health::HealthLevel)
    /// as `u64` (0 = ok, 1 = warn, 2 = critical).
    HealthTransition = 9,
}

impl TraceKind {
    /// Stable lowercase name (the `kind` field of the JSON dump).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::StageBegin => "stage_begin",
            TraceKind::StageEnd => "stage_end",
            TraceKind::Conflict => "conflict",
            TraceKind::AbortInvalidated => "abort_invalidated",
            TraceKind::RwRetry => "rw_retry",
            TraceKind::GroupPublish => "group_publish",
            TraceKind::LingerFill => "linger_fill",
            TraceKind::DrainScoop => "drain_scoop",
            TraceKind::QueueFull => "queue_full",
            TraceKind::HealthTransition => "health_transition",
        }
    }

    fn from_u8(v: u8) -> Option<TraceKind> {
        Some(match v {
            0 => TraceKind::StageBegin,
            1 => TraceKind::StageEnd,
            2 => TraceKind::Conflict,
            3 => TraceKind::AbortInvalidated,
            4 => TraceKind::RwRetry,
            5 => TraceKind::GroupPublish,
            6 => TraceKind::LingerFill,
            7 => TraceKind::DrainScoop,
            8 => TraceKind::QueueFull,
            9 => TraceKind::HealthTransition,
            _ => return None,
        })
    }
}

/// One decoded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic nanoseconds since the recorder was built (one clock for
    /// every thread, so merged dumps are globally ordered).
    pub ts_ns: u64,
    /// Recording thread id (dense store tid; ingest producers without a
    /// tid report under their shard id).
    pub tid: u32,
    /// What happened.
    pub kind: TraceKind,
    /// Shard the event concerns, or a kind-specific discriminator — see
    /// [`TraceKind`] ([`NO_SHARD`] when not applicable).
    pub shard: u32,
    /// Kind-specific payload — see [`TraceKind`].
    pub payload: u64,
}

impl TraceEvent {
    /// Render as one JSON-lines object (hand-rolled; every field is
    /// numeric or a fixed identifier, so no escaping is needed).
    #[must_use]
    pub fn json_line(&self) -> String {
        // NO_SHARD renders as -1 so consumers need no sentinel constant.
        let shard = if self.shard == NO_SHARD {
            -1
        } else {
            i64::from(self.shard)
        };
        format!(
            "{{\"ts_ns\":{},\"tid\":{},\"kind\":\"{}\",\"shard\":{shard},\"payload\":{}}}",
            self.ts_ns,
            self.tid,
            self.kind.as_str(),
            self.payload
        )
    }
}

/// Why an anomaly snapshot was captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyCause {
    /// The store recorded `store.txn.aborts.invalidated` (a validated
    /// read went stale).
    InvalidatedAbort,
    /// One transaction's conflict-retry count crossed the store's burst
    /// threshold.
    ConflictBurst,
    /// A bounded ingest queue rejected a submission.
    QueueFull,
    /// A health check escalated to `critical` (an SLO breach sustained
    /// past the policy's hysteresis — see `obs::health`).
    SloViolation,
}

impl AnomalyCause {
    /// Stable lowercase name (the `cause` field of the JSON dump).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AnomalyCause::InvalidatedAbort => "invalidated_abort",
            AnomalyCause::ConflictBurst => "conflict_burst",
            AnomalyCause::QueueFull => "queue_full",
            AnomalyCause::SloViolation => "slo_violation",
        }
    }
}

/// The last-[`ANOMALY_TAIL`] merged events at the moment an anomaly was
/// noted, plus the trigger.
#[derive(Debug, Clone)]
pub struct AnomalySnapshot {
    /// The trigger.
    pub cause: AnomalyCause,
    /// Thread that noted the anomaly.
    pub tid: u32,
    /// Monotonic nanoseconds (recorder clock) the anomaly was noted at.
    pub at_ns: u64,
    /// Tail of the merged event stream at capture time, time-ordered.
    pub events: Vec<TraceEvent>,
}

/// One ring slot: a seqlock word plus the three payload words of an
/// event. 32 bytes, no alignment padding — adjacent slots of one ring
/// share lines, but a ring has (in the common case) exactly one writer.
struct Slot {
    /// 0 = never written; odd = write in flight; even `2·turn + 2` =
    /// event of lap `turn` is stable.
    seq: AtomicU64,
    ts_ns: AtomicU64,
    /// `tid << 40 | kind << 32 | shard`.
    meta: AtomicU64,
    payload: AtomicU64,
}

struct Ring {
    /// Next global slot index (monotonic; slot = `head & mask`,
    /// lap = `head / capacity`).
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            head: AtomicU64::new(0),
            slots: (0..capacity)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    ts_ns: AtomicU64::new(0),
                    meta: AtomicU64::new(0),
                    payload: AtomicU64::new(0),
                })
                .collect(),
        }
    }
}

#[inline]
fn pack_meta(tid: usize, kind: TraceKind, shard: u32) -> u64 {
    ((tid as u64) & 0xFF_FFFF) << 40 | (kind as u64) << 32 | u64::from(shard)
}

#[inline]
fn unpack_meta(meta: u64) -> (u32, Option<TraceKind>, u32) {
    (
        (meta >> 40) as u32,
        TraceKind::from_u8(((meta >> 32) & 0xFF) as u8),
        (meta & 0xFFFF_FFFF) as u32,
    )
}

/// The flight recorder: one ring per thread id, one shared monotonic
/// clock, and a bounded set of anomaly snapshots. See the module docs
/// for the recording contract.
pub struct TraceRecorder {
    start: Instant,
    capacity: u64,
    mask: u64,
    rings: Box<[Ring]>,
    anomalies: Mutex<Vec<AnomalySnapshot>>,
    anomaly_total: AtomicU64,
}

impl TraceRecorder {
    /// A recorder with one `capacity`-slot ring per thread (`capacity`
    /// is rounded up to a power of two; both arguments are clamped to at
    /// least 1). Thread `tid` records into ring `tid % threads`.
    #[must_use]
    pub fn new(threads: usize, capacity: usize) -> TraceRecorder {
        let capacity = capacity.max(1).next_power_of_two();
        TraceRecorder {
            start: Instant::now(),
            capacity: capacity as u64,
            mask: capacity as u64 - 1,
            rings: (0..threads.max(1)).map(|_| Ring::new(capacity)).collect(),
            anomalies: Mutex::new(Vec::new()),
            anomaly_total: AtomicU64::new(0),
        }
    }

    /// Rings (= thread slots) in this recorder.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.rings.len()
    }

    /// Slots per ring.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Nanoseconds elapsed on the recorder's clock (the `ts_ns` domain).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Append one event to thread `tid`'s ring, overwriting the oldest
    /// entry when full. Wait-free; see the module docs.
    #[inline]
    pub fn record(&self, tid: usize, kind: TraceKind, shard: u32, payload: u64) {
        let ts = self.now_ns();
        let ring = &self.rings[tid % self.rings.len()];
        let idx = ring.head.fetch_add(1, Ordering::Relaxed);
        let slot = &ring.slots[(idx & self.mask) as usize];
        let turn = idx / self.capacity;
        // Seqlock write: odd marks the slot in flight; the Release fence
        // orders the odd mark before the payload stores, and the final
        // Release store publishes the payload with the even mark.
        slot.seq.store(2 * turn + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.ts_ns.store(ts, Ordering::Relaxed);
        slot.meta
            .store(pack_meta(tid, kind, shard), Ordering::Relaxed);
        slot.payload.store(payload, Ordering::Relaxed);
        slot.seq.store(2 * turn + 2, Ordering::Release);
    }

    /// Seqlock-read one slot; `None` when empty, in flight, or overwritten
    /// mid-read. Returns the event and its global ring index (lap-aware,
    /// for per-thread order tiebreaks).
    fn read_slot(&self, ring: &Ring, pos: u64) -> Option<(u64, TraceEvent)> {
        let slot = &ring.slots[pos as usize];
        for _ in 0..4 {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 {
                return None; // never written
            }
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue; // write in flight; retry briefly, then skip
            }
            let ts_ns = slot.ts_ns.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let payload = slot.payload.load(Ordering::Relaxed);
            // Pairs with the writer's Release fence: if any load above saw
            // a newer write, the re-read below sees its odd mark.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue;
            }
            let (tid, kind, shard) = unpack_meta(meta);
            let turn = s1 / 2 - 1;
            return kind.map(|kind| {
                (
                    turn * self.capacity + pos,
                    TraceEvent {
                        ts_ns,
                        tid,
                        kind,
                        shard,
                        payload,
                    },
                )
            });
        }
        None
    }

    /// Merge every ring into one time-ordered stream (ties broken by
    /// ring and slot order, so one thread's events never reorder).
    /// Best-effort while writers are active: in-flight slots are
    /// skipped, never fabricated.
    #[must_use]
    pub fn dump(&self) -> Vec<TraceEvent> {
        let mut tagged: Vec<(u64, usize, u64, TraceEvent)> = Vec::new();
        for (ri, ring) in self.rings.iter().enumerate() {
            for pos in 0..self.capacity {
                if let Some((idx, ev)) = self.read_slot(ring, pos) {
                    tagged.push((ev.ts_ns, ri, idx, ev));
                }
            }
        }
        tagged.sort_unstable_by_key(|(ts, ri, idx, _)| (*ts, *ri, *idx));
        tagged.into_iter().map(|(_, _, _, ev)| ev).collect()
    }

    /// The last `n` events of the merged stream (what an anomaly
    /// snapshot captures).
    #[must_use]
    pub fn last_n(&self, n: usize) -> Vec<TraceEvent> {
        let mut all = self.dump();
        if all.len() > n {
            all.drain(..all.len() - n);
        }
        all
    }

    /// Capture an anomaly: snapshot the last [`ANOMALY_TAIL`] merged
    /// events under `cause`. After [`MAX_ANOMALIES`](self) snapshots
    /// only the total is counted (an abort storm stays cheap).
    pub fn note_anomaly(&self, cause: AnomalyCause, tid: usize) {
        self.anomaly_total.fetch_add(1, Ordering::Relaxed);
        let mut g = self.anomalies.lock().unwrap_or_else(|p| p.into_inner());
        if g.len() >= MAX_ANOMALIES {
            return;
        }
        let at_ns = self.now_ns();
        let events = self.last_n(ANOMALY_TAIL);
        g.push(AnomalySnapshot {
            cause,
            tid: tid as u32,
            at_ns,
            events,
        });
    }

    /// The retained anomaly snapshots, in capture order.
    #[must_use]
    pub fn anomalies(&self) -> Vec<AnomalySnapshot> {
        self.anomalies
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Anomalies noted over the recorder's lifetime (including those past
    /// the retention cap).
    #[must_use]
    pub fn anomaly_total(&self) -> u64 {
        self.anomaly_total.load(Ordering::Relaxed)
    }

    /// Write the merged dump plus every retained anomaly snapshot as
    /// JSON lines: `{"type":"event",...}` per event, then one
    /// `{"type":"anomaly",...}` header per snapshot followed by its tail
    /// as `{"type":"anomaly_event","anomaly":<i>,...}` lines.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_dump<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        for ev in self.dump() {
            writeln!(w, "{{\"type\":\"event\",{}", &ev.json_line()[1..])?;
        }
        for (i, a) in self.anomalies().iter().enumerate() {
            writeln!(
                w,
                "{{\"type\":\"anomaly\",\"cause\":\"{}\",\"tid\":{},\"at_ns\":{},\"tail_len\":{}}}",
                a.cause.as_str(),
                a.tid,
                a.at_ns,
                a.events.len()
            )?;
            for ev in &a.events {
                writeln!(
                    w,
                    "{{\"type\":\"anomaly_event\",\"anomaly\":{i},{}",
                    &ev.json_line()[1..]
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn events_round_trip_through_a_ring() {
        let rec = TraceRecorder::new(2, 8);
        rec.record(0, TraceKind::StageBegin, 0, 7);
        rec.record(1, TraceKind::Conflict, 3, (2 << 1) | 1);
        rec.record(0, TraceKind::StageEnd, 0, 1234);
        let dump = rec.dump();
        assert_eq!(dump.len(), 3);
        // Time-ordered, and every field survives the packing.
        assert!(dump.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        let conflict = dump.iter().find(|e| e.kind == TraceKind::Conflict).unwrap();
        assert_eq!(conflict.tid, 1);
        assert_eq!(conflict.shard, 3);
        assert_eq!(conflict.payload, 5);
    }

    #[test]
    fn rings_overwrite_oldest() {
        let rec = TraceRecorder::new(1, 4);
        for i in 0..10u64 {
            rec.record(0, TraceKind::RwRetry, NO_SHARD, i);
        }
        let dump = rec.dump();
        assert_eq!(dump.len(), 4, "capacity bounds the ring");
        let payloads: Vec<u64> = dump.iter().map(|e| e.payload).collect();
        assert_eq!(payloads, vec![6, 7, 8, 9], "oldest overwritten first");
    }

    #[test]
    fn last_n_and_json_lines() {
        let rec = TraceRecorder::new(1, 16);
        for i in 0..6u64 {
            rec.record(0, TraceKind::GroupPublish, 2, i * 10);
        }
        let tail = rec.last_n(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[1].payload, 50);
        let line = tail[1].json_line();
        assert!(line.contains("\"kind\":\"group_publish\""), "{line}");
        assert!(line.contains("\"shard\":2"), "{line}");
        assert!(line.contains("\"payload\":50"), "{line}");
        // NO_SHARD renders as -1, not 4294967295.
        let rw = TraceEvent {
            ts_ns: 1,
            tid: 0,
            kind: TraceKind::RwRetry,
            shard: NO_SHARD,
            payload: 0,
        };
        assert!(
            rw.json_line().contains("\"shard\":-1"),
            "{}",
            rw.json_line()
        );
    }

    #[test]
    fn anomaly_snapshots_capture_the_tail_and_cap_out() {
        let rec = TraceRecorder::new(1, 64);
        for i in 0..10u64 {
            rec.record(0, TraceKind::StageEnd, 1, i);
        }
        rec.note_anomaly(AnomalyCause::InvalidatedAbort, 0);
        let snaps = rec.anomalies();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].cause, AnomalyCause::InvalidatedAbort);
        assert_eq!(snaps[0].events.len(), 10, "whole (short) history captured");
        assert!(snaps[0].at_ns >= snaps[0].events.last().unwrap().ts_ns);
        for _ in 0..100 {
            rec.note_anomaly(AnomalyCause::QueueFull, 0);
        }
        assert_eq!(rec.anomalies().len(), MAX_ANOMALIES, "retention capped");
        assert_eq!(rec.anomaly_total(), 101, "but every anomaly is counted");
    }

    #[test]
    fn write_dump_emits_events_and_anomalies() {
        let rec = TraceRecorder::new(1, 8);
        rec.record(0, TraceKind::QueueFull, 5, 32);
        rec.note_anomaly(AnomalyCause::QueueFull, 5);
        let mut out = Vec::new();
        rec.write_dump(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"type\":\"event\""), "{text}");
        assert!(text.contains("\"type\":\"anomaly\""), "{text}");
        assert!(text.contains("\"cause\":\"queue_full\""), "{text}");
        assert!(text.contains("\"type\":\"anomaly_event\""), "{text}");
    }

    /// Satellite: 8 threads wrap their rings many times over while a
    /// reader dumps concurrently; no dump may contain a torn event
    /// (fields from two different writes) and the final merged dump must
    /// preserve each thread's own program order.
    #[test]
    fn concurrent_ring_wrap_hammer() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 40_000; // 156× the ring capacity
        let rec = Arc::new(TraceRecorder::new(THREADS, 256));
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let rec = Arc::clone(&rec);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Self-checking event: shard and payload both derive
                    // from (tid, i), so a torn slot is detectable.
                    rec.record(tid, TraceKind::StageEnd, tid as u32, (tid as u64) << 32 | i);
                }
            }));
        }
        // Concurrent dumps while the rings churn: every event read must
        // be internally consistent even mid-overwrite.
        for _ in 0..50 {
            for ev in rec.dump() {
                assert_eq!(ev.shard, ev.tid, "torn event: shard/tid mismatch");
                assert_eq!(
                    ev.payload >> 32,
                    u64::from(ev.tid),
                    "torn event: payload from another thread"
                );
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        let dump = rec.dump();
        assert_eq!(dump.len(), THREADS * 256, "every ring full");
        let mut last_per_tid = [None::<u64>; THREADS];
        for ev in &dump {
            assert_eq!(ev.shard, ev.tid);
            assert_eq!(ev.payload >> 32, u64::from(ev.tid));
            let seq = ev.payload & 0xFFFF_FFFF;
            let last = &mut last_per_tid[ev.tid as usize];
            if let Some(prev) = *last {
                assert!(
                    seq > prev,
                    "thread {} order broken in merged dump: {seq} after {prev}",
                    ev.tid
                );
            }
            *last = Some(seq);
        }
        for (tid, last) in last_per_tid.iter().enumerate() {
            assert_eq!(
                *last,
                Some(PER_THREAD - 1),
                "thread {tid}'s newest event missing"
            );
        }
    }
}
