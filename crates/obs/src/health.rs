//! Health/SLO monitoring over time-series [`Window`]s.
//!
//! The [`timeseries`](crate::timeseries) sampler turns raw counters into
//! per-window rates and shares; this module is the **judgment layer** on
//! top: a [`HealthMonitor`] consumes consecutive windows against a
//! declarative [`SloPolicy`] and produces a [`HealthReport`] of typed
//! findings. Five checks run per window:
//!
//! * [`HealthCheck::HotShard`] — one shard's share of the window's ops
//!   (`skew.max_share`) sustained above the policy bound. This is the
//!   **resharding trigger** the ROADMAP's skew→resharding handoff
//!   contract names: a splitter consumes the finding's shard index.
//! * [`HealthCheck::ConflictStorm`] — conflicts per commit above bound.
//! * [`HealthCheck::QueueSaturation`] — the ingest queue depth at or
//!   above the policy bound (compare against the front-end's configured
//!   `max_queue_depth`, exported as the `ingest.max_queue_depth` gauge).
//! * [`HealthCheck::LatencyBurn`] — the commit pipeline's finalize-stage
//!   p99 above the latency target.
//! * [`HealthCheck::CommitStall`] — commit throughput collapsed below
//!   the policy floor.
//!
//! ## Hysteresis
//!
//! A single noisy window must not page anyone. Each check runs a small
//! state machine: the **first** breached window moves it `ok → warn`;
//! only [`SloPolicy::sustain`] *consecutive* breached windows escalate
//! `warn → critical` (the point a [`Finding`] is recorded and — when a
//! flight recorder is attached — an anomaly snapshot captures the
//! surrounding event history); [`SloPolicy::recover`] consecutive clean
//! windows return it to `ok` in **one** transition. Transitions are
//! counted in the registry (`obs.health.transitions.*`), the current
//! level of each check is a gauge (`obs.health.<check>.level`), and
//! every transition is traced as a
//! [`TraceKind::HealthTransition`](crate::TraceKind::HealthTransition)
//! flight-recorder event.

use std::sync::{Arc, Mutex};

use crate::timeseries::Window;
use crate::trace::{AnomalyCause, TraceKind, TraceRecorder};
use crate::{Counter, Gauge, MetricsRegistry};

/// The typed conditions a [`HealthMonitor`] watches, in fixed order
/// (the index doubles as the trace `shard` discriminator and the
/// transition-counter thread id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthCheck {
    /// Sustained single-shard key skew (`skew.max_share`) — the
    /// resharding trigger signal.
    HotShard = 0,
    /// Sustained conflict-per-commit rate.
    ConflictStorm = 1,
    /// Sustained ingest submission-queue depth.
    QueueSaturation = 2,
    /// Sustained finalize-stage p99 latency.
    LatencyBurn = 3,
    /// Sustained commit-throughput collapse.
    CommitStall = 4,
}

/// Every check, in index order ([`HealthCheck`] as `usize` indexes it).
pub const HEALTH_CHECKS: [HealthCheck; 5] = [
    HealthCheck::HotShard,
    HealthCheck::ConflictStorm,
    HealthCheck::QueueSaturation,
    HealthCheck::LatencyBurn,
    HealthCheck::CommitStall,
];

impl HealthCheck {
    /// Stable lowercase name (JSON `check` field, metric name segment).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            HealthCheck::HotShard => "hot_shard",
            HealthCheck::ConflictStorm => "conflict_storm",
            HealthCheck::QueueSaturation => "queue_saturation",
            HealthCheck::LatencyBurn => "latency_burn",
            HealthCheck::CommitStall => "commit_stall",
        }
    }
}

/// A check's current severity. Ordered: `Ok < Warn < Critical`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthLevel {
    /// Within policy.
    Ok = 0,
    /// Breached, but not yet for [`SloPolicy::sustain`] windows.
    Warn = 1,
    /// Breached for at least [`SloPolicy::sustain`] consecutive windows.
    Critical = 2,
}

impl HealthLevel {
    /// Stable lowercase name (JSON `level` field).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            HealthLevel::Ok => "ok",
            HealthLevel::Warn => "warn",
            HealthLevel::Critical => "critical",
        }
    }
}

/// Declarative SLO thresholds plus the hysteresis windows. Every
/// threshold has a disabled state so a policy can watch one signal
/// without faking bounds for the rest; [`SloPolicy::parse`] overlays
/// `key=value` pairs on these defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct SloPolicy {
    /// [`HealthCheck::HotShard`]: breach when `skew.max_share` exceeds
    /// this (default 0.8; set above 1.0 to disable — a share never
    /// exceeds 1.0).
    pub max_skew_share: f64,
    /// Skew/conflict noise guard: windows with fewer total shard ops
    /// than this are treated as clean (default 100 — a near-empty
    /// window's shares are meaningless).
    pub min_window_ops: u64,
    /// [`HealthCheck::ConflictStorm`]: breach when conflicts per commit
    /// exceed this (default 0.5; negative never triggers since the rate
    /// is ≥ 0 — but there is no reason to disable it).
    pub max_conflict_rate: f64,
    /// [`HealthCheck::QueueSaturation`]: breach when the `ingest.depth`
    /// gauge is at or above this (default 0 = disabled; set it to the
    /// front-end's `max_queue_depth` — or a fraction of it — to alert
    /// before producers block).
    pub max_queue_depth: i64,
    /// [`HealthCheck::LatencyBurn`]: breach when the window's
    /// finalize-stage p99 exceeds this many nanoseconds (default 0 =
    /// disabled).
    pub max_finalize_p99_ns: u64,
    /// [`HealthCheck::CommitStall`]: breach when the window's commit
    /// throughput falls below this (default 0.0 = disabled; the check
    /// uses a strict `<`, so a zero floor never triggers).
    pub min_commits_per_s: f64,
    /// Consecutive breached windows before `warn` escalates to
    /// `critical` (default 3; clamped to ≥ 1).
    pub sustain: u32,
    /// Consecutive clean windows before a breached check returns to
    /// `ok` (default 2; clamped to ≥ 1).
    pub recover: u32,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            max_skew_share: 0.8,
            min_window_ops: 100,
            max_conflict_rate: 0.5,
            max_queue_depth: 0,
            max_finalize_p99_ns: 0,
            min_commits_per_s: 0.0,
            sustain: 3,
            recover: 2,
        }
    }
}

impl SloPolicy {
    /// Parse a comma-separated `key=value` spec over the defaults, e.g.
    /// `max_skew_share=0.9,sustain=5,max_queue_depth=512`. Keys are the
    /// field names; an empty spec yields the defaults.
    ///
    /// # Errors
    ///
    /// An unknown key, a missing `=`, or an unparsable value returns a
    /// human-readable message naming the offending pair.
    pub fn parse(spec: &str) -> Result<SloPolicy, String> {
        let mut p = SloPolicy::default();
        for pair in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("SLO spec {pair:?}: expected key=value"))?;
            let bad = |what: &str| format!("SLO spec {pair:?}: {what}");
            match key.trim() {
                "max_skew_share" => {
                    p.max_skew_share = value.parse().map_err(|_| bad("not a float"))?;
                }
                "min_window_ops" => {
                    p.min_window_ops = value.parse().map_err(|_| bad("not an integer"))?;
                }
                "max_conflict_rate" => {
                    p.max_conflict_rate = value.parse().map_err(|_| bad("not a float"))?;
                }
                "max_queue_depth" => {
                    p.max_queue_depth = value.parse().map_err(|_| bad("not an integer"))?;
                }
                "max_finalize_p99_ns" => {
                    p.max_finalize_p99_ns = value.parse().map_err(|_| bad("not an integer"))?;
                }
                "min_commits_per_s" => {
                    p.min_commits_per_s = value.parse().map_err(|_| bad("not a float"))?;
                }
                "sustain" => p.sustain = value.parse().map_err(|_| bad("not an integer"))?,
                "recover" => p.recover = value.parse().map_err(|_| bad("not an integer"))?,
                other => return Err(format!("SLO spec: unknown key {other:?}")),
            }
        }
        p.sustain = p.sustain.max(1);
        p.recover = p.recover.max(1);
        Ok(p)
    }

    /// Whether `check` has a live threshold under this policy (disabled
    /// checks never leave `ok`).
    #[must_use]
    pub fn enabled(&self, check: HealthCheck) -> bool {
        match check {
            HealthCheck::HotShard => self.max_skew_share <= 1.0,
            HealthCheck::ConflictStorm => true,
            HealthCheck::QueueSaturation => self.max_queue_depth > 0,
            HealthCheck::LatencyBurn => self.max_finalize_p99_ns > 0,
            HealthCheck::CommitStall => self.min_commits_per_s > 0.0,
        }
    }

    /// One check's verdict on one window: `(breached, observed value,
    /// threshold, shard)` — `shard` is the implicated shard index for
    /// [`HealthCheck::HotShard`], `-1` otherwise.
    fn judge(&self, check: HealthCheck, w: &Window) -> (bool, f64, f64, i64) {
        match check {
            HealthCheck::HotShard => {
                let guarded = w.skew.total_ops >= self.min_window_ops;
                (
                    guarded && w.skew.max_share > self.max_skew_share,
                    w.skew.max_share,
                    self.max_skew_share,
                    w.skew.hottest_shard.map_or(-1, |s| s as i64),
                )
            }
            HealthCheck::ConflictStorm => {
                // conflict_rate is 0.0 on a commit-free window, so empty
                // windows are clean by construction.
                let guarded = w.skew.total_ops >= self.min_window_ops;
                (
                    guarded && w.conflict_rate > self.max_conflict_rate,
                    w.conflict_rate,
                    self.max_conflict_rate,
                    -1,
                )
            }
            HealthCheck::QueueSaturation => (
                self.max_queue_depth > 0 && w.queue_depth >= self.max_queue_depth,
                w.queue_depth as f64,
                self.max_queue_depth as f64,
                -1,
            ),
            HealthCheck::LatencyBurn => (
                self.max_finalize_p99_ns > 0 && w.finalize_p99_ns > self.max_finalize_p99_ns,
                w.finalize_p99_ns as f64,
                self.max_finalize_p99_ns as f64,
                -1,
            ),
            HealthCheck::CommitStall => (
                w.commits_per_s < self.min_commits_per_s,
                w.commits_per_s,
                self.min_commits_per_s,
                -1,
            ),
        }
    }
}

/// One level change of one check, as returned by
/// [`HealthMonitor::observe`].
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// The check that changed level.
    pub check: HealthCheck,
    /// The level it changed **to**.
    pub level: HealthLevel,
    /// Index of the window that caused the change.
    pub window: u64,
    /// The observed value that window (share, rate, depth, ns, /s —
    /// per the check).
    pub value: f64,
    /// The policy threshold the value was compared against.
    pub threshold: f64,
    /// Implicated shard ([`HealthCheck::HotShard`] names the hottest
    /// shard — the one a resharding policy would split); `-1` otherwise.
    pub shard: i64,
}

/// A retained `critical` escalation — what [`HealthReport::findings`]
/// carries and the scenario bins embed in the schema-v5 JSON records.
/// Same shape as the [`Transition`] that produced it.
pub type Finding = Transition;

/// Escalations retained per monitor; later ones only count in the
/// transition counters (an alert storm must not become an allocation
/// loop — the flight recorder caps its anomaly snapshots the same way).
const MAX_FINDINGS: usize = 64;

/// One check's state in a [`HealthReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct CheckReport {
    /// Which check.
    pub check: HealthCheck,
    /// Current level.
    pub level: HealthLevel,
    /// Whether the policy gives this check a live threshold.
    pub enabled: bool,
    /// Consecutive breached windows ending at the latest one.
    pub breach_streak: u32,
    /// Consecutive clean windows ending at the latest one.
    pub ok_streak: u32,
    /// The latest window's observed value for this check.
    pub value: f64,
    /// The policy threshold.
    pub threshold: f64,
}

/// Point-in-time output of a [`HealthMonitor`]: every check's state plus
/// the retained `critical` findings, renderable as the `/health.json`
/// body ([`HealthReport::json`]).
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Windows consumed so far.
    pub windows_observed: u64,
    /// Per-check state, in [`HEALTH_CHECKS`] order.
    pub checks: Vec<CheckReport>,
    /// Retained `critical` escalations, oldest first (capped; the
    /// `obs.health.transitions.critical` counter is the full total).
    pub findings: Vec<Finding>,
}

/// Zero non-finite floats so hand-rolled JSON stays valid.
fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// Render one finding/transition as a JSON object (shared by the report
/// body and the run-record writer).
#[must_use]
pub fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"check\":\"{}\",\"level\":\"{}\",\"window\":{},\"value\":{},\"threshold\":{},\
         \"shard\":{}}}",
        f.check.as_str(),
        f.level.as_str(),
        f.window,
        finite(f.value),
        finite(f.threshold),
        f.shard,
    )
}

impl HealthReport {
    /// The worst level across every check (`ok` when all clear).
    #[must_use]
    pub fn worst_level(&self) -> HealthLevel {
        self.checks
            .iter()
            .map(|c| c.level)
            .max()
            .unwrap_or(HealthLevel::Ok)
    }

    /// Render as one JSON object (hand-rolled like the rest of the
    /// crate; all names are fixed identifiers, all values numeric or
    /// fixed strings).
    #[must_use]
    pub fn json(&self) -> String {
        let checks = self
            .checks
            .iter()
            .map(|c| {
                format!(
                    "{{\"check\":\"{}\",\"level\":\"{}\",\"enabled\":{},\"breach_streak\":{},\
                     \"ok_streak\":{},\"value\":{},\"threshold\":{}}}",
                    c.check.as_str(),
                    c.level.as_str(),
                    c.enabled,
                    c.breach_streak,
                    c.ok_streak,
                    finite(c.value),
                    finite(c.threshold),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let findings = self
            .findings
            .iter()
            .map(finding_json)
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"level\":\"{}\",\"windows_observed\":{},\"checks\":[{checks}],\
             \"findings\":[{findings}]}}",
            self.worst_level().as_str(),
            self.windows_observed,
        )
    }
}

/// One check's hysteresis state.
struct CheckState {
    level: HealthLevel,
    breach_streak: u32,
    ok_streak: u32,
    value: f64,
    threshold: f64,
}

struct MonitorState {
    windows_observed: u64,
    checks: [CheckState; 5],
    findings: Vec<Finding>,
}

/// Consumes consecutive [`Window`]s against an [`SloPolicy`] and keeps
/// per-check hysteresis state. Feed it from the time-series sampler's
/// window observer ([`TimeseriesSampler::spawn_with`]) or call
/// [`HealthMonitor::observe`] directly; read [`HealthMonitor::report`]
/// any time from any thread (internal mutex — observation is cold-path,
/// once per sampling window).
///
/// [`TimeseriesSampler::spawn_with`]: crate::TimeseriesSampler::spawn_with
pub struct HealthMonitor {
    policy: SloPolicy,
    state: Mutex<MonitorState>,
    transitions_warn: Counter,
    transitions_critical: Counter,
    transitions_ok: Counter,
    level_gauges: [Gauge; 5],
    trace: Option<Arc<TraceRecorder>>,
}

impl HealthMonitor {
    /// A monitor over `policy`, counting transitions in `registry`
    /// (`obs.health.transitions.{warn,critical,ok}` counters, one
    /// `obs.health.<check>.level` gauge per check) and — when `trace` is
    /// attached — recording every transition as a
    /// [`TraceKind::HealthTransition`] event plus one
    /// [`AnomalyCause::SloViolation`] anomaly snapshot per `critical`
    /// escalation, so the alert's surrounding history lands in the
    /// flight recorder's anomaly buffer.
    #[must_use]
    pub fn new(
        policy: SloPolicy,
        registry: &MetricsRegistry,
        trace: Option<Arc<TraceRecorder>>,
    ) -> Self {
        let mut policy = policy;
        policy.sustain = policy.sustain.max(1);
        policy.recover = policy.recover.max(1);
        HealthMonitor {
            state: Mutex::new(MonitorState {
                windows_observed: 0,
                checks: HEALTH_CHECKS.map(|c| CheckState {
                    level: HealthLevel::Ok,
                    breach_streak: 0,
                    ok_streak: 0,
                    value: 0.0,
                    threshold: match c {
                        HealthCheck::HotShard => policy.max_skew_share,
                        HealthCheck::ConflictStorm => policy.max_conflict_rate,
                        HealthCheck::QueueSaturation => policy.max_queue_depth as f64,
                        HealthCheck::LatencyBurn => policy.max_finalize_p99_ns as f64,
                        HealthCheck::CommitStall => policy.min_commits_per_s,
                    },
                }),
                findings: Vec::new(),
            }),
            transitions_warn: registry.counter("obs.health.transitions.warn"),
            transitions_critical: registry.counter("obs.health.transitions.critical"),
            transitions_ok: registry.counter("obs.health.transitions.ok"),
            level_gauges: HEALTH_CHECKS
                .map(|c| registry.gauge(&format!("obs.health.{}.level", c.as_str()))),
            trace,
            policy,
        }
    }

    /// The policy this monitor enforces.
    #[must_use]
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Consume one window and return the transitions it caused (usually
    /// none). See the module docs for the hysteresis contract; a check
    /// the policy disables never transitions.
    pub fn observe(&self, w: &Window) -> Vec<Transition> {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.windows_observed += 1;
        let mut out = Vec::new();
        for (i, check) in HEALTH_CHECKS.into_iter().enumerate() {
            let (breached, value, threshold, shard) = self.policy.judge(check, w);
            let enabled = self.policy.enabled(check);
            let cs = &mut st.checks[i];
            cs.value = value;
            cs.threshold = threshold;
            if !enabled {
                continue;
            }
            let mut to = None;
            if breached {
                cs.breach_streak += 1;
                cs.ok_streak = 0;
                if cs.level == HealthLevel::Ok {
                    cs.level = HealthLevel::Warn;
                    to = Some(HealthLevel::Warn);
                }
                if cs.breach_streak >= self.policy.sustain && cs.level == HealthLevel::Warn {
                    cs.level = HealthLevel::Critical;
                    to = Some(HealthLevel::Critical);
                }
            } else {
                cs.ok_streak += 1;
                cs.breach_streak = 0;
                if cs.level != HealthLevel::Ok && cs.ok_streak >= self.policy.recover {
                    cs.level = HealthLevel::Ok;
                    to = Some(HealthLevel::Ok);
                }
            }
            let Some(level) = to else { continue };
            self.level_gauges[i].set(level as i64);
            let t = Transition {
                check,
                level,
                window: w.index,
                value,
                threshold,
                shard,
            };
            // The check index is the recording "thread": transitions are
            // cold-path and each check's counter stripe is its own.
            match level {
                HealthLevel::Warn => self.transitions_warn.incr(i),
                HealthLevel::Critical => self.transitions_critical.incr(i),
                HealthLevel::Ok => self.transitions_ok.incr(i),
            }
            if let Some(tr) = &self.trace {
                tr.record(i, TraceKind::HealthTransition, i as u32, level as u64);
                if level == HealthLevel::Critical {
                    tr.note_anomaly(AnomalyCause::SloViolation, i);
                }
            }
            if level == HealthLevel::Critical && st.findings.len() < MAX_FINDINGS {
                st.findings.push(t.clone());
            }
            out.push(t);
        }
        out
    }

    /// Snapshot the monitor's state as a [`HealthReport`].
    #[must_use]
    pub fn report(&self) -> HealthReport {
        let st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        HealthReport {
            windows_observed: st.windows_observed,
            checks: HEALTH_CHECKS
                .into_iter()
                .enumerate()
                .map(|(i, check)| {
                    let cs = &st.checks[i];
                    CheckReport {
                        check,
                        level: cs.level,
                        enabled: self.policy.enabled(check),
                        breach_streak: cs.breach_streak,
                        ok_streak: cs.ok_streak,
                        value: cs.value,
                        threshold: cs.threshold,
                    }
                })
                .collect(),
            findings: st.findings.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::SkewReport;

    /// A window with the given per-shard ops and otherwise-benign rates.
    fn skew_window(index: u64, shard_ops: &[u64]) -> Window {
        Window {
            index,
            start_ns: index * 1_000_000,
            dur_ns: 1_000_000,
            commits: shard_ops.iter().sum::<u64>().max(1),
            conflicts: 0,
            commits_per_s: 1000.0,
            conflict_rate: 0.0,
            queue_depth: 0,
            finalize_p99_ns: 1_000,
            skew: SkewReport::from_shard_ops(shard_ops),
            shard_ops: shard_ops.to_vec(),
        }
    }

    fn monitor(policy: SloPolicy) -> (HealthMonitor, MetricsRegistry) {
        let reg = MetricsRegistry::new();
        (HealthMonitor::new(policy, &reg, None), reg)
    }

    #[test]
    fn policy_parse_overlays_defaults_and_rejects_junk() {
        let d = SloPolicy::default();
        assert_eq!(SloPolicy::parse("").unwrap(), d);
        let p = SloPolicy::parse("max_skew_share=0.9, sustain=5,max_queue_depth=512").unwrap();
        assert_eq!(p.max_skew_share, 0.9);
        assert_eq!(p.sustain, 5);
        assert_eq!(p.max_queue_depth, 512);
        assert_eq!(p.recover, d.recover, "untouched keys keep defaults");
        assert!(SloPolicy::parse("bogus=1").is_err());
        assert!(SloPolicy::parse("sustain").is_err(), "missing =");
        assert!(SloPolicy::parse("sustain=x").is_err());
        // Hysteresis windows are clamped to at least one window.
        assert_eq!(SloPolicy::parse("sustain=0,recover=0").unwrap().sustain, 1);
        assert_eq!(SloPolicy::parse("sustain=0,recover=0").unwrap().recover, 1);
    }

    #[test]
    fn default_policy_enables_skew_and_conflicts_only_where_meaningful() {
        let p = SloPolicy::default();
        assert!(p.enabled(HealthCheck::HotShard));
        assert!(p.enabled(HealthCheck::ConflictStorm));
        assert!(!p.enabled(HealthCheck::QueueSaturation), "0 disables");
        assert!(!p.enabled(HealthCheck::LatencyBurn), "0 disables");
        assert!(!p.enabled(HealthCheck::CommitStall), "0.0 disables");
        assert!(
            !SloPolicy::parse("max_skew_share=1.5")
                .unwrap()
                .enabled(HealthCheck::HotShard),
            "a share never exceeds 1.0, so >1.0 disables the check"
        );
    }

    /// Satellite: a one-window skew spike must NOT fire `HotShard`.
    #[test]
    fn one_window_spike_does_not_fire() {
        let (m, reg) = monitor(SloPolicy::parse("sustain=3").unwrap());
        // Spike: everything on shard 0 for one window...
        let t = m.observe(&skew_window(0, &[1000, 0, 0, 0]));
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].level, HealthLevel::Warn, "first breach only warns");
        // ...then balanced again.
        for i in 1..10 {
            let t = m.observe(&skew_window(i, &[250, 250, 250, 250]));
            // Recovery back to ok after `recover` clean windows; never
            // critical.
            assert!(t.iter().all(|t| t.level != HealthLevel::Critical));
        }
        let r = m.report();
        assert_eq!(r.worst_level(), HealthLevel::Ok);
        assert!(r.findings.is_empty(), "no critical escalation retained");
        let snap = reg.snapshot();
        assert_eq!(
            snap.get("obs.health.transitions.critical"),
            Some(&crate::SnapshotValue::Counter(0))
        );
    }

    /// Satellite: N sustained breached windows must fire, and the
    /// finding names the hot shard.
    #[test]
    fn sustained_skew_fires_hot_shard() {
        let (m, reg) = monitor(SloPolicy::parse("sustain=3").unwrap());
        let mut fired_at = None;
        for i in 0..5 {
            for t in m.observe(&skew_window(i, &[0, 0, 900, 100])) {
                if t.level == HealthLevel::Critical {
                    assert_eq!(t.check, HealthCheck::HotShard);
                    fired_at = Some(i);
                }
            }
        }
        assert_eq!(fired_at, Some(2), "critical on the 3rd breached window");
        let r = m.report();
        assert_eq!(r.worst_level(), HealthLevel::Critical);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].check, HealthCheck::HotShard);
        assert_eq!(r.findings[0].shard, 2, "the finding names the hot shard");
        assert!(r.findings[0].value > 0.8);
        let json = r.json();
        assert!(json.contains("\"level\":\"critical\""), "{json}");
        assert!(json.contains("\"check\":\"hot_shard\""), "{json}");
        assert!(json.contains("\"shard\":2"), "{json}");
        let snap = reg.snapshot();
        assert_eq!(
            snap.get("obs.health.transitions.critical"),
            Some(&crate::SnapshotValue::Counter(1))
        );
        assert_eq!(
            snap.get("obs.health.hot_shard.level"),
            Some(&crate::SnapshotValue::Gauge(2))
        );
    }

    /// Satellite: recovery emits exactly one ok-transition.
    #[test]
    fn recovery_emits_exactly_one_ok_transition() {
        let (m, reg) = monitor(SloPolicy::parse("sustain=2,recover=2").unwrap());
        for i in 0..3 {
            let _ = m.observe(&skew_window(i, &[1000, 0]));
        }
        assert_eq!(m.report().worst_level(), HealthLevel::Critical);
        let mut ok_transitions = 0;
        for i in 3..10 {
            for t in m.observe(&skew_window(i, &[500, 500])) {
                assert_eq!(t.level, HealthLevel::Ok);
                assert_eq!(t.window, 4, "ok after `recover`=2 clean windows");
                ok_transitions += 1;
            }
        }
        assert_eq!(ok_transitions, 1, "exactly one ok-transition");
        assert_eq!(m.report().worst_level(), HealthLevel::Ok);
        let snap = reg.snapshot();
        assert_eq!(
            snap.get("obs.health.transitions.ok"),
            Some(&crate::SnapshotValue::Counter(1))
        );
        assert_eq!(
            snap.get("obs.health.hot_shard.level"),
            Some(&crate::SnapshotValue::Gauge(0))
        );
    }

    #[test]
    fn noise_guard_exempts_tiny_windows() {
        let (m, _reg) = monitor(SloPolicy::parse("sustain=1,min_window_ops=100").unwrap());
        // 10 ops all on one shard: under the guard, clean.
        for i in 0..5 {
            assert!(m.observe(&skew_window(i, &[10, 0])).is_empty());
        }
        assert_eq!(m.report().worst_level(), HealthLevel::Ok);
    }

    #[test]
    fn queue_latency_and_stall_checks_trigger_when_enabled() {
        let (m, _reg) = monitor(
            SloPolicy::parse(
                "sustain=1,max_queue_depth=64,max_finalize_p99_ns=1000000,min_commits_per_s=10",
            )
            .unwrap(),
        );
        let mut w = skew_window(0, &[300, 300]);
        w.queue_depth = 64;
        w.finalize_p99_ns = 2_000_000;
        w.commits_per_s = 1.0;
        let transitions = m.observe(&w);
        let critical: Vec<_> = transitions
            .iter()
            .filter(|t| t.level == HealthLevel::Critical)
            .map(|t| t.check)
            .collect();
        assert!(
            critical.contains(&HealthCheck::QueueSaturation),
            "{critical:?}"
        );
        assert!(critical.contains(&HealthCheck::LatencyBurn), "{critical:?}");
        assert!(critical.contains(&HealthCheck::CommitStall), "{critical:?}");
        let r = m.report();
        assert_eq!(r.findings.len(), 3);
        assert!(r.json().contains("\"check\":\"queue_saturation\""));
    }

    #[test]
    fn critical_escalation_snapshots_an_anomaly() {
        let reg = MetricsRegistry::new();
        let trace = Arc::new(TraceRecorder::new(8, 64));
        let m = HealthMonitor::new(
            SloPolicy::parse("sustain=2").unwrap(),
            &reg,
            Some(Arc::clone(&trace)),
        );
        for i in 0..2 {
            let _ = m.observe(&skew_window(i, &[1000, 0]));
        }
        assert_eq!(trace.anomaly_total(), 1, "critical noted one anomaly");
        let anomalies = trace.anomalies();
        assert_eq!(anomalies[0].cause, AnomalyCause::SloViolation);
        // Both the warn and the critical transition landed in the rings.
        let transitions: Vec<_> = trace
            .dump()
            .into_iter()
            .filter(|e| e.kind == TraceKind::HealthTransition)
            .collect();
        assert_eq!(transitions.len(), 2);
        assert_eq!(transitions[0].payload, HealthLevel::Warn as u64);
        assert_eq!(transitions[1].payload, HealthLevel::Critical as u64);
        assert_eq!(transitions[1].shard, HealthCheck::HotShard as u32);
    }

    #[test]
    fn report_json_is_well_formed_when_empty() {
        let (m, _reg) = monitor(SloPolicy::default());
        let json = m.report().json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"windows_observed\":0"), "{json}");
        assert!(json.contains("\"level\":\"ok\""), "{json}");
        assert!(json.contains("\"findings\":[]"), "{json}");
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
    }
}
