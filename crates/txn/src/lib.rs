//! # txn — atomic cross-shard write transactions for the bundled store
//!
//! The sharded [`store::BundledStore`] already gives *reads* the paper's
//! headline guarantee across shards: one shared clock, one timestamp per
//! range query, no shard skew. This crate is the write-side counterpart: a
//! [`WriteTxn`] stages a multi-key write set and commits it as **one
//! atomic cut** — every key of the batch becomes visible at a single
//! timestamp, on every shard, to every range query and snapshot read.
//!
//! ## How it works
//!
//! `WriteTxn` is a purely local staging buffer (`BTreeMap` of the write
//! set, giving sorted, duplicate-free keys and read-your-writes lookups).
//! Nothing touches the store until [`WriteTxn::commit`], which hands the
//! sorted ops to [`store::BundledStore::apply_txn`]:
//!
//! 1. per-shard **write intents** are acquired in shard order (2PL,
//!    deadlock-free by ordering),
//! 2. each shard stages its writes through the backend two-phase surface —
//!    structural changes apply eagerly under node locks, but every
//!    affected bundle entry is installed *pending* (the paper's Algorithm
//!    2 state),
//! 3. the shared clock is advanced **once**, and
//! 4. every pending entry on every shard is finalized with that single
//!    timestamp.
//!
//! A snapshot fixed before step 3 resolves past the pending entries and
//! sees none of the batch; one fixed after waits for finalization and sees
//! all of it. Lock conflicts with concurrent primitive operations roll the
//! whole transaction back (pending entries are neutralized, structural
//! changes undone) and retry — aborted writes are invisible at *every*
//! timestamp.
//!
//! ## Reads
//!
//! Primitive `get`/`contains` on the store read the newest pointers and
//! may observe a transaction's eagerly-applied writes before its commit
//! timestamp is published (read-uncommitted, exactly as fast as before).
//! For reads that serialize with transactions use [`WriteTxn::get`]
//! (read-your-writes inside a transaction) or [`StoreTxnExt::snapshot_get`]
//! / [`TxnStore::get`], which resolve through a single-key snapshot read —
//! linearizable with every commit.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use store::uniform_splits;
//! use txn::{SkipListTxnStore, StoreTxnExt};
//!
//! let ts = Arc::new(SkipListTxnStore::<u64, u64>::new(2, uniform_splits(4, 1000)));
//! let session = ts.register();
//!
//! // Stage a cross-shard batch and commit it atomically.
//! let mut txn = session.txn();
//! txn.put(10, 1).put(400, 2).remove(&900);
//! assert_eq!(txn.get(&10), Some(1), "read-your-writes");
//! let receipt = txn.commit();
//! assert_eq!(receipt.applied_count(), 2);
//!
//! // Serializable point read.
//! assert_eq!(session.snapshot_get(&400), Some(2));
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use bundle::api::RangeQuerySet;
use ebr::ReclaimMode;
use store::{BundledStore, ShardBackend, StoreHandle, TxnOp, TxnStats};

/// One staged write of a [`WriteTxn`].
#[derive(Debug, Clone, PartialEq, Eq)]
enum Staged<V> {
    Put(V),
    Set(V),
    Remove,
}

/// Outcome of a committed transaction: for every staged key, whether the
/// write took effect (`true` = the put inserted a new key / the remove
/// removed an existing one; `false` = set-semantics no-op).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnReceipt<K> {
    /// Per-key outcomes in ascending key order.
    pub applied: Vec<(K, bool)>,
    /// The store-wide transaction statistics after this commit.
    pub stats: TxnStats,
}

impl<K> TxnReceipt<K> {
    /// Number of writes that took effect.
    #[must_use]
    pub fn applied_count(&self) -> usize {
        self.applied.iter().filter(|(_, ok)| *ok).count()
    }
}

/// A multi-key, multi-shard write transaction over a
/// [`store::BundledStore`].
///
/// Writes are staged locally (sorted and deduplicated — the last write per
/// key wins) and nothing touches the store until [`WriteTxn::commit`]
/// applies the whole batch under **one** commit timestamp. Dropping the
/// transaction (or calling [`WriteTxn::rollback`]) discards the staged
/// writes with zero store-side cleanup.
pub struct WriteTxn<'a, K, V, S> {
    store: &'a BundledStore<K, V, S>,
    tid: usize,
    writes: BTreeMap<K, Staged<V>>,
}

impl<K: std::fmt::Debug, V: std::fmt::Debug, S> std::fmt::Debug for WriteTxn<'_, K, V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteTxn")
            .field("tid", &self.tid)
            .field("writes", &self.writes)
            .finish()
    }
}

impl<'a, K, V, S> WriteTxn<'a, K, V, S>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
    S: ShardBackend<K, V>,
{
    /// Begin a transaction using an explicitly-managed dense thread id.
    ///
    /// The caller is responsible for the usual tid discipline (one thread
    /// per id at a time); prefer [`StoreTxnExt::txn`] on a registered
    /// [`StoreHandle`], which owns its id.
    pub fn with_tid(store: &'a BundledStore<K, V, S>, tid: usize) -> Self {
        WriteTxn {
            store,
            tid,
            writes: BTreeMap::new(),
        }
    }

    /// Stage `key -> value` (set-insert at commit: a no-op if the key is
    /// already present). Overwrites any earlier staged write of `key`.
    pub fn put(&mut self, key: K, value: V) -> &mut Self {
        self.writes.insert(key, Staged::Put(value));
        self
    }

    /// Stage an upsert of `key -> value`: at commit the current value (if
    /// any) is replaced, under the transaction's single timestamp — no
    /// snapshot ever sees the key absent or half-updated. Overwrites any
    /// earlier staged write of `key`.
    pub fn set(&mut self, key: K, value: V) -> &mut Self {
        self.writes.insert(key, Staged::Set(value));
        self
    }

    /// Stage a removal of `key`. Overwrites any earlier staged write.
    pub fn remove(&mut self, key: &K) -> &mut Self {
        self.writes.insert(*key, Staged::Remove);
        self
    }

    /// Read-your-writes lookup: staged writes first, then a linearizable
    /// single-key snapshot read of the store (atomic with respect to every
    /// committed transaction).
    #[must_use]
    pub fn get(&self, key: &K) -> Option<V> {
        match self.writes.get(key) {
            Some(Staged::Put(v)) | Some(Staged::Set(v)) => Some(v.clone()),
            Some(Staged::Remove) => None,
            None => snapshot_get(self.store, self.tid, key),
        }
    }

    /// Number of staged writes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.writes.len()
    }

    /// `true` when nothing is staged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }

    /// Discard the staged writes. Equivalent to dropping the transaction —
    /// uncommitted writes never touch the store, so there is nothing to
    /// undo.
    pub fn rollback(self) {}

    /// Atomically commit the staged writes: all of them become visible at
    /// one timestamp, on every shard, or — on internal conflict — the
    /// commit retries until it succeeds.
    pub fn commit(self) -> TxnReceipt<K> {
        let keys: Vec<K> = self.writes.keys().copied().collect();
        let ops: Vec<TxnOp<K, V>> = self
            .writes
            .into_iter()
            .map(|(k, w)| match w {
                Staged::Put(v) => TxnOp::Put(k, v),
                Staged::Set(v) => TxnOp::Set(k, v),
                Staged::Remove => TxnOp::Remove(k),
            })
            .collect();
        let results = self.store.apply_txn(self.tid, &ops);
        TxnReceipt {
            applied: keys.into_iter().zip(results).collect(),
            stats: self.store.txn_stats(),
        }
    }
}

/// Linearizable single-key read: a degenerate range query `[key, key]`
/// resolved through the bundles at one shared-clock timestamp, so it
/// serializes with every committed transaction (unlike the primitive
/// `get`, which reads newest pointers and may observe uncommitted eager
/// writes).
fn snapshot_get<K, V, S>(store: &BundledStore<K, V, S>, tid: usize, key: &K) -> Option<V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
    S: ShardBackend<K, V>,
{
    let mut out = Vec::with_capacity(1);
    store.range_query(tid, key, key, &mut out);
    out.pop().map(|(_, v)| v)
}

/// Transaction entry points for a registered [`StoreHandle`] session —
/// the `StoreHandle::txn()` API.
pub trait StoreTxnExt<'a, K, V, S> {
    /// Begin a write transaction bound to this session's thread id.
    fn txn(&'a self) -> WriteTxn<'a, K, V, S>;

    /// Linearizable single-key read that serializes with transactions.
    fn snapshot_get(&self, key: &K) -> Option<V>;
}

impl<'a, K, V, S> StoreTxnExt<'a, K, V, S> for StoreHandle<K, V, S>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
    S: ShardBackend<K, V>,
{
    fn txn(&'a self) -> WriteTxn<'a, K, V, S> {
        WriteTxn::with_tid(self.store(), self.tid())
    }

    fn snapshot_get(&self, key: &K) -> Option<V> {
        snapshot_get(self.store(), self.tid(), key)
    }
}

/// A [`BundledStore`] wrapper whose read path is transaction-serializable
/// by default: `get` resolves through snapshot reads, writes go through
/// [`WriteTxn`] batches (or the inherited single-key operations, which
/// remain individually linearizable).
///
/// Cheap to share (`Arc` inside is exposed via [`TxnStore::inner`] for
/// interop with code that wants the raw store).
pub struct TxnStore<K, V, S> {
    inner: Arc<BundledStore<K, V, S>>,
}

/// Transactional store over bundled skip-list shards.
pub type SkipListTxnStore<K, V> = TxnStore<K, V, skiplist::BundledSkipList<K, V>>;
/// Transactional store over bundled lazy-list shards.
pub type LazyListTxnStore<K, V> = TxnStore<K, V, lazylist::BundledLazyList<K, V>>;
/// Transactional store over bundled Citrus-tree shards.
pub type CitrusTxnStore<K, V> = TxnStore<K, V, citrus::BundledCitrusTree<K, V>>;

impl<K, V, S> TxnStore<K, V, S>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
    S: ShardBackend<K, V>,
{
    /// A transactional store with `splits.len() + 1` range shards and
    /// `max_threads` session slots (see [`BundledStore::new`]).
    pub fn new(max_threads: usize, splits: Vec<K>) -> Self {
        TxnStore {
            inner: Arc::new(BundledStore::new(max_threads, splits)),
        }
    }

    /// A transactional store with an explicit reclamation mode.
    pub fn with_mode(max_threads: usize, mode: ReclaimMode, splits: Vec<K>) -> Self {
        TxnStore {
            inner: Arc::new(BundledStore::with_mode(max_threads, mode, splits)),
        }
    }

    /// Wrap an existing store (shares it; transactions and primitive
    /// operations interoperate).
    pub fn from_store(inner: Arc<BundledStore<K, V, S>>) -> Self {
        TxnStore { inner }
    }

    /// The wrapped store.
    #[must_use]
    pub fn inner(&self) -> &Arc<BundledStore<K, V, S>> {
        &self.inner
    }

    /// Register a session (blocking when all slots are in use).
    pub fn register(&self) -> StoreHandle<K, V, S> {
        self.inner.register()
    }

    /// Non-blocking registration; `None` when the pool is exhausted.
    pub fn try_register(&self) -> Option<StoreHandle<K, V, S>> {
        self.inner.try_register()
    }

    /// Begin a write transaction on an explicitly-managed thread id.
    pub fn txn_with_tid(&self, tid: usize) -> WriteTxn<'_, K, V, S> {
        WriteTxn::with_tid(&self.inner, tid)
    }

    /// Linearizable single-key read that serializes with transactions.
    #[must_use]
    pub fn get(&self, tid: usize, key: &K) -> Option<V> {
        snapshot_get(&self.inner, tid, key)
    }

    /// Commit/conflict counters of the underlying store.
    #[must_use]
    pub fn stats(&self) -> TxnStats {
        self.inner.txn_stats()
    }
}

impl<K, V, S> Clone for TxnStore<K, V, S> {
    fn clone(&self) -> Self {
        TxnStore {
            inner: Arc::clone(&self.inner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bundle::api::ConcurrentSet;
    use store::{uniform_splits, CitrusStore, LazyListStore, SkipListStore};

    #[test]
    fn write_txn_stages_commits_and_reports() {
        let store = Arc::new(SkipListStore::<u64, u64>::new(2, uniform_splits(4, 400)));
        let h = store.register();
        h.insert(10, 10);

        let mut txn = h.txn();
        assert!(txn.is_empty());
        txn.put(5, 50).put(250, 251).remove(&10).remove(&77);
        // Last write per key wins.
        txn.put(5, 51);
        assert_eq!(txn.len(), 4);
        // Read-your-writes.
        assert_eq!(txn.get(&5), Some(51));
        assert_eq!(txn.get(&10), None, "staged remove shadows the store");
        assert_eq!(txn.get(&999), None);
        let receipt = txn.commit();
        assert_eq!(
            receipt.applied,
            vec![(5, true), (10, true), (77, false), (250, true)]
        );
        assert_eq!(receipt.applied_count(), 3);
        assert_eq!(receipt.stats.commits, 1);

        assert_eq!(h.get(&5), Some(51));
        assert_eq!(h.snapshot_get(&5), Some(51));
        assert!(!h.contains(&10));
        assert_eq!(h.range_query_vec(&0, &400), vec![(5, 51), (250, 251)]);
    }

    #[test]
    fn set_upserts_atomically() {
        let store = Arc::new(CitrusStore::<u64, u64>::new(2, uniform_splits(4, 400)));
        let h = store.register();
        h.insert(10, 1);
        h.insert(300, 3);
        let mut txn = h.txn();
        txn.set(10, 100).set(300, 301).set(200, 2);
        assert_eq!(txn.get(&10), Some(100), "read-your-writes sees the upsert");
        let receipt = txn.commit();
        // Set reports whether the key existed before.
        assert_eq!(receipt.applied, vec![(10, true), (200, false), (300, true)]);
        assert_eq!(
            h.range_query_vec(&0, &400),
            vec![(10, 100), (200, 2), (300, 301)]
        );
    }

    #[test]
    fn rollback_and_drop_leave_the_store_untouched() {
        let store = Arc::new(LazyListStore::<u64, u64>::new(1, uniform_splits(3, 90)));
        let h = store.register();
        h.insert(1, 1);
        {
            let mut txn = h.txn();
            txn.put(2, 2).remove(&1);
            txn.rollback();
        }
        {
            let mut txn = h.txn();
            txn.put(3, 3);
            // dropped without commit
        }
        assert_eq!(h.range_query_vec(&0, &90), vec![(1, 1)]);
        assert_eq!(store.txn_stats().commits, 0);
    }

    #[test]
    fn empty_commit_is_free() {
        let store = Arc::new(CitrusStore::<u64, u64>::new(1, uniform_splits(2, 100)));
        let h = store.register();
        let receipt = h.txn().commit();
        assert!(receipt.applied.is_empty());
        assert_eq!(receipt.stats.commits, 0, "empty batch never hits the store");
    }

    #[test]
    fn txn_store_wrapper_round_trip() {
        let ts = SkipListTxnStore::<u64, u64>::new(2, uniform_splits(4, 1_000));
        let session = ts.register();
        let mut txn = session.txn();
        txn.put(10, 1).put(400, 2).put(900, 3);
        assert_eq!(txn.commit().applied_count(), 3);
        assert_eq!(ts.get(session.tid(), &400), Some(2));
        assert_eq!(ts.stats().commits, 1);
        let cloned = ts.clone();
        assert_eq!(cloned.inner().len(session.tid()), 3);
        drop(session);
        // A raw-tid transaction through the wrapper.
        let h2 = cloned.try_register().expect("slot free again");
        let mut txn = cloned.txn_with_tid(h2.tid());
        txn.remove(&400);
        assert_eq!(txn.commit().applied_count(), 1);
        assert_eq!(cloned.get(h2.tid(), &400), None);
    }

    #[test]
    fn concurrent_sessions_commit_atomically() {
        // Several sessions commit multi-shard batches while others take
        // snapshot reads; every batch is tagged so a torn commit would be
        // visible as a partial tag group.
        const WRITERS: usize = 3;
        const BATCHES: u64 = 120;
        let ts = Arc::new(LazyListTxnStore::<u64, u64>::new(
            WRITERS + 1,
            uniform_splits(4, 4_000),
        ));
        let mut joins = Vec::new();
        for w in 0..WRITERS as u64 {
            let ts = Arc::clone(&ts);
            joins.push(std::thread::spawn(move || {
                let h = ts.register();
                for b in 0..BATCHES {
                    let mut txn = h.txn();
                    for shard in 0..4u64 {
                        txn.put(shard * 1_000 + w * BATCHES + b, w);
                    }
                    assert_eq!(txn.commit().applied_count(), 4);
                }
            }));
        }
        let reader = {
            let ts = Arc::clone(&ts);
            std::thread::spawn(move || {
                let h = ts.register();
                let mut out = Vec::new();
                for _ in 0..200 {
                    h.range_query(&0, &4_000, &mut out);
                    assert!(
                        out.len().is_multiple_of(4),
                        "torn cross-shard commit observed: {} keys",
                        out.len()
                    );
                }
            })
        };
        for j in joins {
            j.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(ts.stats().commits, WRITERS as u64 * BATCHES);
        let h = ts.register();
        assert_eq!(h.len(), (WRITERS as u64 * BATCHES * 4) as usize);
    }
}
