//! # txn — serializable transactions for the sharded bundled store
//!
//! The sharded [`store::BundledStore`] gives *reads* the paper's headline
//! guarantee across shards (one shared clock, one timestamp per range
//! query, no shard skew) and — since the write-transaction layer — gives
//! multi-key write batches a single atomic commit timestamp. This crate
//! is the application surface on top of both: [`ReadWriteTxn`], a full
//! serializable read-write transaction, and [`WriteTxn`], its write-only
//! specialization (the original API, preserved as a thin wrapper).
//!
//! ## Read-write transactions
//!
//! A [`ReadWriteTxn`] answers every read at **one leased snapshot
//! timestamp**: the first read opens a [`store::StoreSnapshot`] — pin all
//! shards, read the shared clock once, announce it in the tracker
//! ([`bundle::RqContext::lease_read`]) — and every `get`/`range` resolves
//! through the bundles at that timestamp, overlaid with the transaction's
//! own staged writes (read-your-writes). Each validated read records the
//! node identities it observed into the transaction's **read set**.
//!
//! [`ReadWriteTxn::commit`] hands writes + read set to
//! [`store::BundledStore::apply_rw_txn`], an explicit **prepare →
//! validate → advance-clock → finalize** pipeline:
//!
//! 1. per-shard **write intents** over every involved shard, ascending
//!    (2PL, deadlock-free by ordering);
//! 2. **prepare**: writes stage eagerly under node locks, bundle entries
//!    pending (Algorithm 2 state), pre/post images recorded;
//! 3. **validate**: every recorded read range is re-walked in the live
//!    structure, locked (the write path's no-op outcome pinning applied
//!    to reads), and compared against the recorded node identities —
//!    reconciled with the transaction's own staged writes. A stale read
//!    aborts to the caller as [`store::TxnAborted`]; lock races roll back
//!    and retry internally;
//! 4. the shared clock advances **once** — the serialization point. The
//!    validated reads still hold there because their locks are still
//!    held, so the transaction behaves exactly as if it executed
//!    atomically at that timestamp: full serializability;
//! 5. every pending entry finalizes with that single timestamp.
//!
//! On [`store::TxnAborted`] the application re-runs the transaction body
//! against a fresh snapshot ([`StoreTxnExt::run_rw`] packages the retry
//! loop).
//!
//! ## Write-only transactions
//!
//! [`WriteTxn`] is [`ReadWriteTxn`] with an empty read set: the validate
//! phase is vacuous, commit can never abort, and the behavior (and API)
//! of the original write-only layer is preserved — `commit` returns a
//! plain [`TxnReceipt`]. Its `get` is read-your-writes falling through to
//! a *versioned* store read at the leased snapshot timestamp (all gets of
//! one transaction observe one atomic cut), without joining the read set.
//!
//! ## Reads outside transactions
//!
//! Primitive `get`/`contains` on the store read newest pointers and may
//! observe a transaction's eagerly-applied writes before its commit
//! timestamp (read-uncommitted, zero overhead). [`StoreTxnExt::snapshot_get`]
//! / [`TxnStore::get`] are linearizable single-key snapshot reads.
//!
//! ## Durability
//!
//! A transaction's commit is durable exactly when the store carries a
//! commit log (`crates/wal` attached via
//! [`store::BundledStore::attach_commit_log`]): the commit pipeline logs
//! the write set — under the transaction's single commit timestamp, the
//! same `ts` reported in [`TxnReceipt`] — *before* finalizing any bundle
//! entry, so the durable prefix of the log is always a prefix of the
//! visible history. Under `SyncPolicy::Always`, `commit` returning means
//! the transaction is on disk; under the batching policies, durability
//! lags by at most the policy's group budget until the next sync barrier
//! (`Ingest::flush`, shutdown, or segment rotation). Without a log
//! (the default) commits are volatile and the pipeline pays one
//! never-taken branch.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use store::uniform_splits;
//! use txn::{SkipListTxnStore, StoreTxnExt};
//!
//! let ts = Arc::new(SkipListTxnStore::<u64, u64>::new(2, uniform_splits(4, 1000)));
//! let session = ts.register();
//!
//! // Write-only: stage a cross-shard batch, commit atomically.
//! let mut txn = session.txn();
//! txn.put(10, 1).put(400, 2).remove(&900);
//! assert_eq!(txn.get(&10), Some(1), "read-your-writes");
//! let receipt = txn.commit();
//! assert_eq!(receipt.applied_count(), 2);
//!
//! // Read-write: a serializable read-modify-write with automatic retry.
//! let (_, receipt) = session.run_rw(|txn| {
//!     let v = txn.get(&400).unwrap_or(0);
//!     txn.set(400, v + 1);
//! });
//! assert_eq!(receipt.applied_count(), 1);
//! assert_eq!(session.snapshot_get(&400), Some(3));
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use bundle::api::RangeQuerySet;
use ebr::ReclaimMode;
use store::{
    BundledStore, ShardBackend, ShardRead, StoreHandle, StoreSnapshot, TxnAborted, TxnOp, TxnStats,
};

/// One staged write of a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Staged<V> {
    Put(V),
    Set(V),
    Remove,
}

/// Outcome of a committed transaction: for every staged key, whether the
/// write took effect (`true` = the put inserted a new key / the remove
/// removed an existing one; `false` = set-semantics no-op).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnReceipt<K> {
    /// Per-key outcomes in ascending key order.
    pub applied: Vec<(K, bool)>,
    /// The store-wide transaction statistics after this commit.
    pub stats: TxnStats,
    /// The commit timestamp: the single shared-clock value every write of
    /// the transaction published at (for a read-only transaction, the
    /// clock value its validation window closed over). `None` only for
    /// the free empty commit that never touched the store. Comparable
    /// across the whole snapshot domain — including the `ingest`
    /// front-end's group tickets, whose outcomes carry the same clock
    /// values — so receipts from every commit path order consistently.
    pub commit_ts: Option<u64>,
}

impl<K> TxnReceipt<K> {
    /// Number of writes that took effect.
    #[must_use]
    pub fn applied_count(&self) -> usize {
        self.applied.iter().filter(|(_, ok)| *ok).count()
    }
}

/// A serializable multi-key, multi-shard **read-write transaction** over
/// a [`store::BundledStore`] (see the crate docs for the protocol).
///
/// Reads are answered at one leased snapshot timestamp and recorded for
/// commit-time validation ([`ReadWriteTxn::get`] / [`ReadWriteTxn::range`];
/// the `peek` variants skip recording). Writes are staged locally
/// (`BTreeMap` ⇒ sorted, deduplicated, read-your-writes) and touch the
/// store only at [`ReadWriteTxn::commit`], which either commits everything
/// under one timestamp — with every validated read still current there —
/// or aborts completely ([`store::TxnAborted`], re-run against a fresh
/// snapshot). Dropping the transaction (or [`ReadWriteTxn::rollback`])
/// discards it with zero store-side cleanup.
pub struct ReadWriteTxn<'a, K, V, S> {
    store: &'a BundledStore<K, V, S>,
    tid: usize,
    /// Lazily opened at the first read; holds the read lease and the
    /// per-shard EBR pins until commit/rollback.
    snapshot: Option<StoreSnapshot<'a, K, V, S>>,
    reads: Vec<ShardRead<K>>,
    writes: BTreeMap<K, Staged<V>>,
}

impl<K: std::fmt::Debug, V: std::fmt::Debug, S> std::fmt::Debug for ReadWriteTxn<'_, K, V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadWriteTxn")
            .field("tid", &self.tid)
            .field("read_ts", &self.snapshot.as_ref().map(|s| s.ts()))
            .field("reads", &self.reads.len())
            .field("writes", &self.writes)
            .finish()
    }
}

impl<'a, K, V, S> ReadWriteTxn<'a, K, V, S>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
    S: ShardBackend<K, V>,
{
    /// Begin a transaction using an explicitly-managed dense thread id.
    ///
    /// The caller is responsible for the usual tid discipline (one thread
    /// per id at a time, no concurrent range query or second snapshot on
    /// the id while the transaction has read anything); prefer
    /// [`StoreTxnExt::rw_txn`] on a registered [`StoreHandle`].
    pub fn with_tid(store: &'a BundledStore<K, V, S>, tid: usize) -> Self {
        ReadWriteTxn {
            store,
            tid,
            snapshot: None,
            reads: Vec::new(),
            writes: BTreeMap::new(),
        }
    }

    /// The leased read timestamp, if any read has happened yet. All reads
    /// of the transaction are answered at this one timestamp.
    #[must_use]
    pub fn read_ts(&self) -> Option<u64> {
        self.snapshot.as_ref().map(|s| s.ts())
    }

    /// Number of recorded (commit-validated) read fragments.
    #[must_use]
    pub fn read_set_len(&self) -> usize {
        self.reads.len()
    }

    fn ensure_snapshot(&mut self) {
        if self.snapshot.is_none() {
            self.snapshot = Some(self.store.snapshot(self.tid));
        }
    }

    /// Validated read: staged writes first (read-your-writes), then a
    /// snapshot read at the leased timestamp, **recorded** into the read
    /// set — commit fails unless the key is still unchanged at the commit
    /// timestamp.
    pub fn get(&mut self, key: &K) -> Option<V> {
        match self.writes.get(key) {
            Some(Staged::Put(v)) | Some(Staged::Set(v)) => Some(v.clone()),
            Some(Staged::Remove) => None,
            None => {
                self.ensure_snapshot();
                let snap = self.snapshot.as_ref().expect("just ensured");
                snap.get_recorded(key, &mut self.reads)
            }
        }
    }

    /// Unvalidated read: same snapshot semantics as [`ReadWriteTxn::get`]
    /// but the observation does not join the read set — commit will not
    /// re-check it. Use for reads whose staleness the application
    /// tolerates (e.g. a scan that only seeds a later validated read).
    pub fn peek(&mut self, key: &K) -> Option<V> {
        match self.writes.get(key) {
            Some(Staged::Put(v)) | Some(Staged::Set(v)) => Some(v.clone()),
            Some(Staged::Remove) => None,
            None => {
                self.ensure_snapshot();
                self.snapshot.as_ref().expect("just ensured").get(key)
            }
        }
    }

    /// Validated range read: collect `low..=high` at the leased snapshot
    /// timestamp, overlay the transaction's staged writes, and record the
    /// observation (per overlapping shard, empty fragments included — so
    /// phantoms inserted into the range abort the commit).
    pub fn range(&mut self, low: &K, high: &K, out: &mut Vec<(K, V)>) -> usize {
        self.ensure_snapshot();
        let snap = self.snapshot.as_ref().expect("just ensured");
        snap.range_recorded(low, high, out, &mut self.reads);
        self.overlay(low, high, out);
        out.len()
    }

    /// Unvalidated range read ([`ReadWriteTxn::peek`]'s range analogue).
    pub fn range_peek(&mut self, low: &K, high: &K, out: &mut Vec<(K, V)>) -> usize {
        self.ensure_snapshot();
        let snap = self.snapshot.as_ref().expect("just ensured");
        snap.range(low, high, out);
        self.overlay(low, high, out);
        out.len()
    }

    /// Merge the staged writes of `low..=high` over a sorted snapshot
    /// fragment (read-your-writes for range reads).
    fn overlay(&self, low: &K, high: &K, out: &mut Vec<(K, V)>) {
        for (k, w) in self.writes.range(*low..=*high) {
            match w {
                Staged::Put(v) | Staged::Set(v) => match out.binary_search_by(|e| e.0.cmp(k)) {
                    Ok(i) => out[i].1 = v.clone(),
                    Err(i) => out.insert(i, (*k, v.clone())),
                },
                Staged::Remove => {
                    if let Ok(i) = out.binary_search_by(|e| e.0.cmp(k)) {
                        out.remove(i);
                    }
                }
            }
        }
    }

    /// Stage `key -> value` (set-insert at commit: a no-op if the key is
    /// already present). Overwrites any earlier staged write of `key`.
    pub fn put(&mut self, key: K, value: V) -> &mut Self {
        self.writes.insert(key, Staged::Put(value));
        self
    }

    /// Stage an upsert of `key -> value`: at commit the current value (if
    /// any) is replaced, under the transaction's single timestamp — no
    /// snapshot ever sees the key absent or half-updated. Overwrites any
    /// earlier staged write of `key`.
    pub fn set(&mut self, key: K, value: V) -> &mut Self {
        self.writes.insert(key, Staged::Set(value));
        self
    }

    /// Stage a removal of `key`. Overwrites any earlier staged write.
    pub fn remove(&mut self, key: &K) -> &mut Self {
        self.writes.insert(*key, Staged::Remove);
        self
    }

    /// Number of staged writes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.writes.len()
    }

    /// `true` when nothing is staged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }

    /// Discard the transaction: staged writes vanish, the read lease and
    /// shard pins release. Equivalent to dropping it.
    pub fn rollback(self) {}

    /// Commit: all staged writes become visible at one timestamp, on
    /// every shard, with every validated read checked (and locked) to
    /// still hold at that timestamp — or nothing happens at all and
    /// [`store::TxnAborted`] asks the caller to re-run against a fresh
    /// snapshot. Internal lock conflicts retry transparently.
    ///
    /// A transaction with reads but no writes is a *read-only*
    /// serializable transaction: commit validates the read set without
    /// advancing the shared clock.
    pub fn commit(self) -> Result<TxnReceipt<K>, TxnAborted> {
        let ReadWriteTxn {
            store,
            tid,
            snapshot,
            reads,
            writes,
        } = self;
        if writes.is_empty() && reads.is_empty() {
            return Ok(TxnReceipt {
                applied: Vec::new(),
                stats: store.txn_stats(),
                commit_ts: None,
            });
        }
        let keys: Vec<K> = writes.keys().copied().collect();
        let ops: Vec<TxnOp<K, V>> = writes
            .into_iter()
            .map(|(k, w)| match w {
                Staged::Put(v) => TxnOp::Put(k, v),
                Staged::Set(v) => TxnOp::Set(k, v),
                Staged::Remove => TxnOp::Remove(k),
            })
            .collect();
        let outcome = store.apply_rw_txn_ts(tid, &ops, &reads);
        // The snapshot (read lease + per-shard EBR pins) must survive
        // until validation finished comparing node identities; only now
        // may it release.
        drop(snapshot);
        let (results, ts) = outcome?;
        Ok(TxnReceipt {
            applied: keys.into_iter().zip(results).collect(),
            stats: store.txn_stats(),
            commit_ts: Some(ts),
        })
    }
}

/// A multi-key, multi-shard **write-only** transaction: the original
/// write-transaction API, now a thin wrapper over [`ReadWriteTxn`] with
/// an empty read set — commit can never fail validation, so it returns a
/// plain [`TxnReceipt`] exactly as before.
///
/// [`WriteTxn::get`] is read-your-writes falling through to a *versioned*
/// snapshot read at the transaction's leased timestamp (all gets observe
/// one atomic cut) without joining the read set; use [`ReadWriteTxn`]
/// when reads must be serializable with the writes.
pub struct WriteTxn<'a, K, V, S> {
    inner: ReadWriteTxn<'a, K, V, S>,
}

impl<K: std::fmt::Debug, V: std::fmt::Debug, S> std::fmt::Debug for WriteTxn<'_, K, V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteTxn")
            .field("inner", &self.inner)
            .finish()
    }
}

impl<'a, K, V, S> WriteTxn<'a, K, V, S>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
    S: ShardBackend<K, V>,
{
    /// Begin a write-only transaction on an explicitly-managed dense
    /// thread id (prefer [`StoreTxnExt::txn`] on a registered handle).
    pub fn with_tid(store: &'a BundledStore<K, V, S>, tid: usize) -> Self {
        WriteTxn {
            inner: ReadWriteTxn::with_tid(store, tid),
        }
    }

    /// Stage `key -> value` (set-insert at commit). Overwrites any
    /// earlier staged write of `key`.
    pub fn put(&mut self, key: K, value: V) -> &mut Self {
        self.inner.put(key, value);
        self
    }

    /// Stage an upsert of `key -> value` (atomic replace at commit).
    pub fn set(&mut self, key: K, value: V) -> &mut Self {
        self.inner.set(key, value);
        self
    }

    /// Stage a removal of `key`.
    pub fn remove(&mut self, key: &K) -> &mut Self {
        self.inner.remove(key);
        self
    }

    /// Read-your-writes lookup: staged writes first, then a versioned
    /// snapshot read at the transaction's leased timestamp (atomic with
    /// respect to every committed transaction; not validated at commit).
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.inner.peek(key)
    }

    /// Number of staged writes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` when nothing is staged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Discard the staged writes (equivalent to dropping).
    pub fn rollback(self) {}

    /// Atomically commit the staged writes: all of them become visible at
    /// one timestamp, on every shard, or — on internal conflict — the
    /// commit retries until it succeeds.
    pub fn commit(self) -> TxnReceipt<K> {
        self.inner
            .commit()
            .expect("write-only transactions record no reads and cannot fail validation")
    }

    /// Turn the staged writes into a key-sorted, deduplicated
    /// [`TxnOp`] batch *without committing*: the hand-off to the
    /// `ingest` front-end's `submit_batch`, which publishes the whole
    /// batch atomically inside a group commit (one clock advance shared
    /// with every other submission in the group). The builder's staging
    /// semantics — last write per key wins, read-your-writes `get` —
    /// apply unchanged; only the commit path differs.
    #[must_use]
    pub fn into_ops(self) -> Vec<TxnOp<K, V>> {
        self.inner
            .writes
            .into_iter()
            .map(|(k, w)| match w {
                Staged::Put(v) => TxnOp::Put(k, v),
                Staged::Set(v) => TxnOp::Set(k, v),
                Staged::Remove => TxnOp::Remove(k),
            })
            .collect()
    }
}

/// Linearizable single-key read: a degenerate range query `[key, key]`
/// resolved through the bundles at one shared-clock timestamp, so it
/// serializes with every committed transaction (unlike the primitive
/// `get`, which reads newest pointers and may observe uncommitted eager
/// writes).
fn snapshot_get<K, V, S>(store: &BundledStore<K, V, S>, tid: usize, key: &K) -> Option<V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
    S: ShardBackend<K, V>,
{
    let mut out = Vec::with_capacity(1);
    store.range_query(tid, key, key, &mut out);
    out.pop().map(|(_, v)| v)
}

/// Transaction entry points for a registered [`StoreHandle`] session.
pub trait StoreTxnExt<'a, K, V, S> {
    /// Begin a write-only transaction bound to this session's thread id.
    fn txn(&'a self) -> WriteTxn<'a, K, V, S>;

    /// Begin a serializable read-write transaction bound to this
    /// session's thread id.
    fn rw_txn(&'a self) -> ReadWriteTxn<'a, K, V, S>;

    /// Run `body` inside a read-write transaction, committing at the end;
    /// on [`store::TxnAborted`] (a validated read went stale) the body
    /// re-runs against a fresh snapshot until the commit succeeds.
    /// Returns the last body result and the commit receipt.
    fn run_rw<R>(
        &'a self,
        body: impl FnMut(&mut ReadWriteTxn<'a, K, V, S>) -> R,
    ) -> (R, TxnReceipt<K>);

    /// Linearizable single-key read that serializes with transactions.
    fn snapshot_get(&self, key: &K) -> Option<V>;
}

impl<'a, K, V, S> StoreTxnExt<'a, K, V, S> for StoreHandle<K, V, S>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
    S: ShardBackend<K, V>,
{
    fn txn(&'a self) -> WriteTxn<'a, K, V, S> {
        WriteTxn::with_tid(self.store(), self.tid())
    }

    fn rw_txn(&'a self) -> ReadWriteTxn<'a, K, V, S> {
        ReadWriteTxn::with_tid(self.store(), self.tid())
    }

    fn run_rw<R>(
        &'a self,
        mut body: impl FnMut(&mut ReadWriteTxn<'a, K, V, S>) -> R,
    ) -> (R, TxnReceipt<K>) {
        loop {
            let mut txn = self.rw_txn();
            let r = body(&mut txn);
            match txn.commit() {
                Ok(receipt) => return (r, receipt),
                Err(TxnAborted) => {
                    // Each re-run of the closure after a stale-read abort
                    // is an application-visible retry; the store's
                    // observability layer counts them apart from
                    // pipeline-internal conflict retries.
                    self.store().obs_note_rw_retry(self.tid());
                    continue;
                }
            }
        }
    }

    fn snapshot_get(&self, key: &K) -> Option<V> {
        snapshot_get(self.store(), self.tid(), key)
    }
}

/// A [`BundledStore`] wrapper whose read path is transaction-serializable
/// by default: `get` resolves through snapshot reads, writes go through
/// [`WriteTxn`] / [`ReadWriteTxn`] batches (or the inherited single-key
/// operations, which remain individually linearizable).
///
/// Cheap to share (`Arc` inside is exposed via [`TxnStore::inner`] for
/// interop with code that wants the raw store).
pub struct TxnStore<K, V, S> {
    inner: Arc<BundledStore<K, V, S>>,
}

/// Transactional store over bundled skip-list shards.
pub type SkipListTxnStore<K, V> = TxnStore<K, V, skiplist::BundledSkipList<K, V>>;
/// Transactional store over bundled lazy-list shards.
pub type LazyListTxnStore<K, V> = TxnStore<K, V, lazylist::BundledLazyList<K, V>>;
/// Transactional store over bundled Citrus-tree shards.
pub type CitrusTxnStore<K, V> = TxnStore<K, V, citrus::BundledCitrusTree<K, V>>;

impl<K, V, S> TxnStore<K, V, S>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
    S: ShardBackend<K, V>,
{
    /// A transactional store with `splits.len() + 1` range shards and
    /// `max_threads` session slots (see [`BundledStore::new`]).
    pub fn new(max_threads: usize, splits: Vec<K>) -> Self {
        TxnStore {
            inner: Arc::new(BundledStore::new(max_threads, splits)),
        }
    }

    /// A transactional store with an explicit reclamation mode.
    pub fn with_mode(max_threads: usize, mode: ReclaimMode, splits: Vec<K>) -> Self {
        TxnStore {
            inner: Arc::new(BundledStore::with_mode(max_threads, mode, splits)),
        }
    }

    /// Wrap an existing store (shares it; transactions and primitive
    /// operations interoperate).
    pub fn from_store(inner: Arc<BundledStore<K, V, S>>) -> Self {
        TxnStore { inner }
    }

    /// The wrapped store.
    #[must_use]
    pub fn inner(&self) -> &Arc<BundledStore<K, V, S>> {
        &self.inner
    }

    /// Register a session (blocking when all slots are in use).
    pub fn register(&self) -> StoreHandle<K, V, S> {
        self.inner.register()
    }

    /// Non-blocking registration; `None` when the pool is exhausted.
    pub fn try_register(&self) -> Option<StoreHandle<K, V, S>> {
        self.inner.try_register()
    }

    /// Begin a write-only transaction on an explicitly-managed thread id.
    pub fn txn_with_tid(&self, tid: usize) -> WriteTxn<'_, K, V, S> {
        WriteTxn::with_tid(&self.inner, tid)
    }

    /// Begin a read-write transaction on an explicitly-managed thread id.
    pub fn rw_txn_with_tid(&self, tid: usize) -> ReadWriteTxn<'_, K, V, S> {
        ReadWriteTxn::with_tid(&self.inner, tid)
    }

    /// Linearizable single-key read that serializes with transactions.
    #[must_use]
    pub fn get(&self, tid: usize, key: &K) -> Option<V> {
        snapshot_get(&self.inner, tid, key)
    }

    /// Commit/conflict counters of the underlying store.
    #[must_use]
    pub fn stats(&self) -> TxnStats {
        self.inner.txn_stats()
    }
}

impl<K, V, S> Clone for TxnStore<K, V, S> {
    fn clone(&self) -> Self {
        TxnStore {
            inner: Arc::clone(&self.inner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bundle::api::ConcurrentSet;
    use store::{uniform_splits, CitrusStore, LazyListStore, SkipListStore};

    #[test]
    fn write_txn_stages_commits_and_reports() {
        let store = Arc::new(SkipListStore::<u64, u64>::new(2, uniform_splits(4, 400)));
        let h = store.register();
        h.insert(10, 10);

        let mut txn = h.txn();
        assert!(txn.is_empty());
        txn.put(5, 50).put(250, 251).remove(&10).remove(&77);
        // Last write per key wins.
        txn.put(5, 51);
        assert_eq!(txn.len(), 4);
        // Read-your-writes.
        assert_eq!(txn.get(&5), Some(51));
        assert_eq!(txn.get(&10), None, "staged remove shadows the store");
        assert_eq!(txn.get(&999), None);
        let receipt = txn.commit();
        assert_eq!(
            receipt.applied,
            vec![(5, true), (10, true), (77, false), (250, true)]
        );
        assert_eq!(receipt.applied_count(), 3);
        assert_eq!(receipt.stats.commits, 1);

        assert_eq!(h.get(&5), Some(51));
        assert_eq!(h.snapshot_get(&5), Some(51));
        assert!(!h.contains(&10));
        assert_eq!(h.range_query_vec(&0, &400), vec![(5, 51), (250, 251)]);
    }

    #[test]
    fn write_txn_gets_share_one_snapshot() {
        let store = Arc::new(SkipListStore::<u64, u64>::new(2, uniform_splits(2, 100)));
        let h = store.register();
        h.insert(10, 1);
        let mut txn = h.txn();
        assert_eq!(txn.get(&10), Some(1));
        // A foreign update after the first get is invisible to the
        // transaction's later gets (one leased timestamp for all reads)...
        store.insert(1, 20, 2);
        store.remove(1, &10);
        assert_eq!(txn.get(&20), None);
        assert_eq!(txn.get(&10), Some(1));
        // ...and being unvalidated, the commit still succeeds.
        let receipt = txn.commit();
        assert_eq!(receipt.applied_count(), 0);
    }

    #[test]
    fn set_upserts_atomically() {
        let store = Arc::new(CitrusStore::<u64, u64>::new(2, uniform_splits(4, 400)));
        let h = store.register();
        h.insert(10, 1);
        h.insert(300, 3);
        let mut txn = h.txn();
        txn.set(10, 100).set(300, 301).set(200, 2);
        assert_eq!(txn.get(&10), Some(100), "read-your-writes sees the upsert");
        let receipt = txn.commit();
        // Set reports whether the key existed before.
        assert_eq!(receipt.applied, vec![(10, true), (200, false), (300, true)]);
        assert_eq!(
            h.range_query_vec(&0, &400),
            vec![(10, 100), (200, 2), (300, 301)]
        );
    }

    #[test]
    fn rollback_and_drop_leave_the_store_untouched() {
        let store = Arc::new(LazyListStore::<u64, u64>::new(1, uniform_splits(3, 90)));
        let h = store.register();
        h.insert(1, 1);
        {
            let mut txn = h.txn();
            txn.put(2, 2).remove(&1);
            txn.rollback();
        }
        {
            let mut txn = h.txn();
            txn.put(3, 3);
            // dropped without commit
        }
        assert_eq!(h.range_query_vec(&0, &90), vec![(1, 1)]);
        assert_eq!(store.txn_stats().commits, 0);
    }

    #[test]
    fn empty_commit_is_free() {
        let store = Arc::new(CitrusStore::<u64, u64>::new(1, uniform_splits(2, 100)));
        let h = store.register();
        let receipt = h.txn().commit();
        assert!(receipt.applied.is_empty());
        assert_eq!(receipt.stats.commits, 0, "empty batch never hits the store");
        assert_eq!(receipt.commit_ts, None, "nothing was published");
    }

    #[test]
    fn receipts_carry_the_commit_timestamp() {
        let store = Arc::new(SkipListStore::<u64, u64>::new(2, uniform_splits(4, 400)));
        let h = store.register();
        let mut txn = h.txn();
        txn.put(10, 1).put(300, 3);
        let receipt = txn.commit();
        let ts = receipt.commit_ts.expect("writes were published");
        assert_eq!(ts, store.context().read());
        // A later commit gets a strictly newer timestamp.
        let mut txn = h.txn();
        txn.set(10, 2);
        assert!(txn.commit().commit_ts.unwrap() > ts);
        // Read-only commits report their validation-window clock without
        // advancing it.
        let mut txn = h.rw_txn();
        assert_eq!(txn.get(&10), Some(2));
        let ro = txn.commit().expect("uncontended");
        assert_eq!(ro.commit_ts, Some(store.context().read()));
    }

    #[test]
    fn into_ops_hands_staged_writes_to_a_group_submission() {
        let store = Arc::new(SkipListStore::<u64, u64>::new(2, uniform_splits(4, 400)));
        let h = store.register();
        let mut txn = h.txn();
        txn.put(300, 3).set(10, 1).remove(&42).put(10, 99);
        let ops = txn.into_ops();
        // Key-sorted, deduplicated, last write per key wins.
        assert_eq!(
            ops,
            vec![TxnOp::Put(10, 99), TxnOp::Remove(42), TxnOp::Put(300, 3)]
        );
        // The batch is directly consumable by the grouped-apply path.
        let receipt = store.apply_grouped(h.tid(), &ops);
        assert_eq!(receipt.applied, vec![true, false, true]);
        assert_eq!(h.get(&10), Some(99));
    }

    #[test]
    fn rw_txn_validated_read_modify_write_round_trip() {
        let store = Arc::new(SkipListStore::<u64, u64>::new(2, uniform_splits(4, 400)));
        let h = store.register();
        h.insert(10, 5);
        h.insert(300, 7);

        let mut txn = h.rw_txn();
        let a = txn.get(&10).unwrap();
        let b = txn.get(&300).unwrap();
        assert_eq!(txn.read_ts(), txn.read_ts(), "one leased timestamp");
        assert!(txn.read_set_len() >= 2);
        txn.set(10, a + b).remove(&300);
        // Read-your-writes through the validated surface.
        assert_eq!(txn.get(&10), Some(12));
        assert_eq!(txn.get(&300), None);
        let receipt = txn.commit().expect("no interference");
        assert_eq!(receipt.applied, vec![(10, true), (300, true)]);
        assert_eq!(h.snapshot_get(&10), Some(12));
        assert!(!h.contains(&300));
        assert_eq!(store.txn_stats().validation_failures, 0);
    }

    #[test]
    fn rw_txn_aborts_on_stale_read_and_run_rw_retries() {
        let store = Arc::new(LazyListStoreU64::new(3, uniform_splits(3, 90)));
        let h = store.register();
        let interferer = store.register();
        h.insert(10, 1);

        // Manual transaction: a foreign write to the read key between the
        // read and the commit aborts it.
        let mut txn = h.rw_txn();
        let v = txn.get(&10).unwrap();
        interferer.remove(&10);
        interferer.insert(10, 50);
        txn.set(10, v + 1);
        assert_eq!(txn.commit(), Err(TxnAborted));
        assert_eq!(store.txn_stats().validation_failures, 1);
        assert_eq!(h.snapshot_get(&10), Some(50), "aborted write invisible");

        // run_rw: the retry converges once interference stops.
        let (seen, receipt) = h.run_rw(|txn| {
            let v = txn.get(&10).unwrap_or(0);
            txn.set(10, v * 2);
            v
        });
        assert_eq!(seen, 50);
        assert_eq!(receipt.applied, vec![(10, true)]);
        assert_eq!(h.snapshot_get(&10), Some(100));
    }

    type LazyListStoreU64 = LazyListStore<u64, u64>;

    #[test]
    fn rw_txn_range_reads_overlay_and_detect_phantoms() {
        let store = Arc::new(CitrusStore::<u64, u64>::new(2, uniform_splits(4, 400)));
        let h = store.register();
        let other = store.register();
        for k in [10u64, 150, 250] {
            h.insert(k, k);
        }

        let mut txn = h.rw_txn();
        txn.put(200, 2).remove(&150);
        let mut out = Vec::new();
        txn.range(&0, &399, &mut out);
        assert_eq!(
            out,
            vec![(10, 10), (200, 2), (250, 250)],
            "staged writes overlay the snapshot"
        );
        // A phantom inserted into the validated range aborts the commit.
        other.insert(300, 3);
        assert_eq!(txn.commit(), Err(TxnAborted));
        assert!(h.contains(&150), "aborted remove left the key in place");
        assert!(!h.contains(&200));

        // Unvalidated range peeks tolerate interference.
        let mut txn = h.rw_txn();
        txn.range_peek(&0, &399, &mut out);
        other.insert(310, 31);
        assert!(txn.commit().is_ok());
    }

    #[test]
    fn rw_txn_read_only_serializable_scan() {
        let store = Arc::new(SkipListStore::<u64, u64>::new(2, uniform_splits(2, 100)));
        let h = store.register();
        h.insert(10, 1);
        h.insert(60, 6);
        let clock = store.context().read();
        let mut txn = h.rw_txn();
        let mut out = Vec::new();
        txn.range(&0, &99, &mut out);
        assert_eq!(out, vec![(10, 1), (60, 6)]);
        let receipt = txn.commit().expect("uncontended read-only txn commits");
        assert!(receipt.applied.is_empty());
        assert_eq!(
            store.context().read(),
            clock,
            "read-only commit never advances the clock"
        );
    }

    #[test]
    fn txn_store_wrapper_round_trip() {
        let ts = SkipListTxnStore::<u64, u64>::new(2, uniform_splits(4, 1_000));
        let session = ts.register();
        let mut txn = session.txn();
        txn.put(10, 1).put(400, 2).put(900, 3);
        assert_eq!(txn.commit().applied_count(), 3);
        assert_eq!(ts.get(session.tid(), &400), Some(2));
        assert_eq!(ts.stats().commits, 1);
        let cloned = ts.clone();
        assert_eq!(cloned.inner().len(session.tid()), 3);
        drop(session);
        // A raw-tid read-write transaction through the wrapper.
        let h2 = cloned.try_register().expect("slot free again");
        let mut txn = cloned.rw_txn_with_tid(h2.tid());
        let v = txn.get(&400).unwrap();
        txn.set(400, v + 40).remove(&900);
        assert_eq!(txn.commit().unwrap().applied_count(), 2);
        assert_eq!(cloned.get(h2.tid(), &400), Some(42));
        assert_eq!(cloned.get(h2.tid(), &900), None);
    }

    #[test]
    fn concurrent_sessions_commit_atomically() {
        // Several sessions commit multi-shard batches while others take
        // snapshot reads; every batch is tagged so a torn commit would be
        // visible as a partial tag group.
        const WRITERS: usize = 3;
        const BATCHES: u64 = 120;
        let ts = Arc::new(LazyListTxnStore::<u64, u64>::new(
            WRITERS + 1,
            uniform_splits(4, 4_000),
        ));
        let mut joins = Vec::new();
        for w in 0..WRITERS as u64 {
            let ts = Arc::clone(&ts);
            joins.push(std::thread::spawn(move || {
                let h = ts.register();
                for b in 0..BATCHES {
                    let mut txn = h.txn();
                    for shard in 0..4u64 {
                        txn.put(shard * 1_000 + w * BATCHES + b, w);
                    }
                    assert_eq!(txn.commit().applied_count(), 4);
                }
            }));
        }
        let reader = {
            let ts = Arc::clone(&ts);
            std::thread::spawn(move || {
                let h = ts.register();
                let mut out = Vec::new();
                for _ in 0..200 {
                    h.range_query(&0, &4_000, &mut out);
                    assert!(
                        out.len().is_multiple_of(4),
                        "torn cross-shard commit observed: {} keys",
                        out.len()
                    );
                }
            })
        };
        for j in joins {
            j.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(ts.stats().commits, WRITERS as u64 * BATCHES);
        let h = ts.register();
        assert_eq!(h.len(), (WRITERS as u64 * BATCHES * 4) as usize);
    }

    #[test]
    fn concurrent_rw_counters_never_lose_updates() {
        // The OCC acid test: N threads each increment a shared counter M
        // times through read-modify-write transactions. Lost updates would
        // leave the counter below N*M; validated read sets forbid them.
        const THREADS: usize = 4;
        const INCREMENTS: u64 = 150;
        let ts = Arc::new(SkipListTxnStore::<u64, u64>::new(
            THREADS,
            uniform_splits(4, 400),
        ));
        {
            let h = ts.register();
            h.insert(42, 0);
            h.insert(342, 0);
        }
        let joins: Vec<_> = (0..THREADS)
            .map(|_| {
                let ts = Arc::clone(&ts);
                std::thread::spawn(move || {
                    let h = ts.register();
                    for _ in 0..INCREMENTS {
                        h.run_rw(|txn| {
                            // Two counters on different shards, one txn.
                            let a = txn.get(&42).unwrap();
                            let b = txn.get(&342).unwrap();
                            txn.set(42, a + 1).set(342, b + 1);
                        });
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        let h = ts.register();
        let total = THREADS as u64 * INCREMENTS;
        assert_eq!(h.snapshot_get(&42), Some(total), "no lost updates");
        assert_eq!(h.snapshot_get(&342), Some(total));
        let stats = ts.stats();
        assert_eq!(stats.commits, total, "one commit per increment");
        assert!(stats.read_set_size >= 2 * total);
    }
}
