//! The on-disk group record format.
//!
//! A segment file is an 8-byte header (`GWALSEG1`: magic + format
//! version) followed by length-prefixed, CRC-checksummed **frames**, one
//! per committed group:
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [payload: len bytes]
//! ```
//!
//! `crc32` is the CRC-32 (IEEE / zlib polynomial) of the payload alone;
//! `len` is bounded by [`MAX_PAYLOAD`] so a corrupt length prefix cannot
//! trigger a huge allocation. The payload is the [`GroupRecord`]:
//!
//! ```text
//! ts: u64            the group's single commit timestamp
//! shards: u32, [u32] shard-set length, then ascending shard indices
//! ops: u32, [op]     op count, then key-ascending operations:
//!   kind: u8           0 = Put, 1 = Set, 2 = Remove
//!   applied: u8        the pipeline fold's final outcome (1 = applied)
//!   key: K             via WalValue
//!   value: V           via WalValue (Put/Set only)
//! ```
//!
//! Everything is little-endian. Any decode failure — short frame header,
//! out-of-range length, CRC mismatch, trailing payload bytes, a key
//! order violation — is treated identically by recovery: the log is
//! valid exactly up to the last frame that parses, the rest is a torn
//! tail.

use store::TxnOp;

/// Segment file header: 7-byte magic plus a format-version byte.
pub const SEGMENT_MAGIC: [u8; 8] = *b"GWALSEG1";

/// Frame header size: `len` + `crc32`.
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a frame payload (64 MiB). A group is bounded by the
/// ingest ring capacities, orders of magnitude below this; the bound
/// exists so a corrupt length prefix is rejected instead of allocated.
pub const MAX_PAYLOAD: usize = 1 << 26;

/// CRC-32 (IEEE 802.3 / zlib polynomial, reflected), the checksum
/// guarding every frame payload.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// A key or value type the log knows how to put on disk.
///
/// Implementations must round-trip: `decode(encode(x)) == x` consuming
/// exactly the encoded bytes. The store's benchmark keyspace is `u64`,
/// provided here; applications with richer types implement this for
/// their own keys/values.
pub trait WalValue: Sized {
    /// Append the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode one value from the front of `buf`; returns the value and
    /// the number of bytes consumed, or `None` if `buf` is malformed.
    fn decode(buf: &[u8]) -> Option<(Self, usize)>;
}

impl WalValue for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Option<(Self, usize)> {
        let bytes: [u8; 8] = buf.get(..8)?.try_into().ok()?;
        Some((u64::from_le_bytes(bytes), 8))
    }
}

/// One operation of a logged group: the op plus the commit pipeline's
/// final outcome for it (`applied == false` is a fold-decided no-op,
/// e.g. a `Put` on an already-present key).
#[derive(Clone, Debug, PartialEq)]
pub struct GroupOp<K, V> {
    /// The operation, exactly as the pipeline committed it.
    pub op: TxnOp<K, V>,
    /// Whether the pipeline applied it (insert took / remove removed).
    pub applied: bool,
}

/// A decoded group record: one commit timestamp, the shard set, and the
/// key-ascending operations with their final outcomes.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupRecord<K, V> {
    /// The single commit timestamp every op of the group published at.
    pub ts: u64,
    /// Ascending indices of the shards the group wrote.
    pub shards: Vec<u32>,
    /// Key-ascending operations (the order `apply_grouped` wants).
    pub ops: Vec<GroupOp<K, V>>,
}

const KIND_PUT: u8 = 0;
const KIND_SET: u8 = 1;
const KIND_REMOVE: u8 = 2;

/// Encode one complete frame (header + payload) for a committed group
/// straight from the commit pipeline's hook arguments, appending to
/// `out`. `order[i]` is the caller index of the `i`-th op in
/// key-ascending order; `applied` is indexed by caller position.
pub fn encode_frame<K: WalValue, V: WalValue>(
    ts: u64,
    ops: &[TxnOp<K, V>],
    order: &[usize],
    applied: &[bool],
    shards: &[usize],
    out: &mut Vec<u8>,
) {
    let start = out.len();
    out.extend_from_slice(&[0u8; FRAME_HEADER]);
    out.extend_from_slice(&ts.to_le_bytes());
    out.extend_from_slice(&(shards.len() as u32).to_le_bytes());
    for &s in shards {
        out.extend_from_slice(&(s as u32).to_le_bytes());
    }
    out.extend_from_slice(&(order.len() as u32).to_le_bytes());
    for &pos in order {
        let (kind, outcome) = (op_kind(&ops[pos]), u8::from(applied[pos]));
        out.push(kind);
        out.push(outcome);
        match &ops[pos] {
            TxnOp::Put(k, v) | TxnOp::Set(k, v) => {
                k.encode(out);
                v.encode(out);
            }
            TxnOp::Remove(k) => k.encode(out),
        }
    }
    let payload_len = out.len() - start - FRAME_HEADER;
    assert!(
        payload_len <= MAX_PAYLOAD,
        "group record exceeds MAX_PAYLOAD"
    );
    let crc = crc32(&out[start + FRAME_HEADER..]);
    out[start..start + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
}

fn op_kind<K, V>(op: &TxnOp<K, V>) -> u8 {
    match op {
        TxnOp::Put(..) => KIND_PUT,
        TxnOp::Set(..) => KIND_SET,
        TxnOp::Remove(..) => KIND_REMOVE,
    }
}

/// Decode one frame from the front of `buf`. Returns the record and the
/// total bytes consumed (header + payload), or `None` if the prefix of
/// `buf` is not a complete, checksum-valid, well-formed frame — the torn
/// tail condition.
pub fn decode_frame<K: WalValue, V: WalValue>(buf: &[u8]) -> Option<(GroupRecord<K, V>, usize)> {
    let header = buf.get(..FRAME_HEADER)?;
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    if len > MAX_PAYLOAD {
        return None;
    }
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    let payload = buf.get(FRAME_HEADER..FRAME_HEADER + len)?;
    if crc32(payload) != crc {
        return None;
    }
    let record = decode_payload(payload)?;
    Some((record, FRAME_HEADER + len))
}

/// Decode a checksum-verified payload into a [`GroupRecord`]. `None` on
/// any structural violation, including trailing bytes (the length prefix
/// and the structure must agree exactly).
fn decode_payload<K: WalValue, V: WalValue>(payload: &[u8]) -> Option<GroupRecord<K, V>> {
    let mut at = 0usize;
    let ts = u64::from_le_bytes(payload.get(at..at + 8)?.try_into().ok()?);
    at += 8;
    let nshards = u32::from_le_bytes(payload.get(at..at + 4)?.try_into().ok()?) as usize;
    at += 4;
    let mut shards = Vec::with_capacity(nshards.min(1024));
    for _ in 0..nshards {
        shards.push(u32::from_le_bytes(
            payload.get(at..at + 4)?.try_into().ok()?,
        ));
        at += 4;
    }
    let nops = u32::from_le_bytes(payload.get(at..at + 4)?.try_into().ok()?) as usize;
    at += 4;
    let mut ops = Vec::with_capacity(nops.min(4096));
    for _ in 0..nops {
        let kind = *payload.get(at)?;
        let applied = match *payload.get(at + 1)? {
            0 => false,
            1 => true,
            _ => return None,
        };
        at += 2;
        let (key, used) = K::decode(payload.get(at..)?)?;
        at += used;
        let op = match kind {
            KIND_PUT | KIND_SET => {
                let (value, used) = V::decode(payload.get(at..)?)?;
                at += used;
                if kind == KIND_PUT {
                    TxnOp::Put(key, value)
                } else {
                    TxnOp::Set(key, value)
                }
            }
            KIND_REMOVE => TxnOp::Remove(key),
            _ => return None,
        };
        ops.push(GroupOp { op, applied });
    }
    if at != payload.len() {
        return None;
    }
    Some(GroupRecord { ts, shards, ops })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn frame_round_trips() {
        let ops: Vec<TxnOp<u64, u64>> =
            vec![TxnOp::Put(3, 30), TxnOp::Set(7, 70), TxnOp::Remove(9)];
        let order = [0usize, 1, 2];
        let applied = [true, true, false];
        let mut buf = Vec::new();
        encode_frame(42, &ops, &order, &applied, &[0, 1], &mut buf);
        let (rec, used) = decode_frame::<u64, u64>(&buf).expect("frame decodes");
        assert_eq!(used, buf.len());
        assert_eq!(rec.ts, 42);
        assert_eq!(rec.shards, vec![0, 1]);
        assert_eq!(rec.ops.len(), 3);
        assert_eq!(rec.ops[0].op, TxnOp::Put(3, 30));
        assert!(rec.ops[0].applied);
        assert_eq!(rec.ops[2].op, TxnOp::Remove(9));
        assert!(!rec.ops[2].applied);
    }

    #[test]
    fn frame_respects_sort_order_indirection() {
        // Caller order 9, 3; `order` maps to key-ascending 3, 9.
        let ops: Vec<TxnOp<u64, u64>> = vec![TxnOp::Put(9, 90), TxnOp::Put(3, 30)];
        let order = [1usize, 0];
        let applied = [false, true];
        let mut buf = Vec::new();
        encode_frame(7, &ops, &order, &applied, &[0], &mut buf);
        let (rec, _) = decode_frame::<u64, u64>(&buf).unwrap();
        assert_eq!(rec.ops[0].op, TxnOp::Put(3, 30));
        assert!(rec.ops[0].applied);
        assert_eq!(rec.ops[1].op, TxnOp::Put(9, 90));
        assert!(!rec.ops[1].applied);
    }

    #[test]
    fn corrupt_and_truncated_frames_are_rejected() {
        let ops: Vec<TxnOp<u64, u64>> = vec![TxnOp::Put(1, 10)];
        let mut buf = Vec::new();
        encode_frame(1, &ops, &[0], &[true], &[0], &mut buf);

        // Every strict prefix is torn.
        for cut in 0..buf.len() {
            assert!(
                decode_frame::<u64, u64>(&buf[..cut]).is_none(),
                "prefix of {cut} bytes must not decode"
            );
        }
        // Any single flipped payload byte fails the CRC.
        for i in FRAME_HEADER..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert!(decode_frame::<u64, u64>(&bad).is_none());
        }
        // A corrupt length prefix larger than MAX_PAYLOAD is rejected
        // without allocating.
        let mut bad = buf.clone();
        bad[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_frame::<u64, u64>(&bad).is_none());
    }
}
