//! Crash recovery: scan the log, truncate the torn tail, replay the
//! valid prefix into a fresh store.
//!
//! The recovery contract (see the crate docs' crash model): a crash may
//! cut the log at **any byte boundary**. Recovery accepts the longest
//! prefix of frames that parse — per segment, in segment order — and
//! treats the first short, checksum-invalid, or structurally malformed
//! frame as the start of the torn tail. Because rotation fsyncs a
//! segment before opening its successor, only the newest segment can be
//! torn in a genuine crash; recovery nevertheless validates everything,
//! so silent corruption in an old segment is also caught (and bounded:
//! everything after it is discarded rather than replayed out of
//! context).

use crate::codec::{self, GroupRecord, WalValue};
use crate::{segment_seq, LogPosition};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use store::{BundledStore, ShardBackend, TxnOp};

/// What a scan or replay found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Segments contributing to the valid prefix.
    pub segments: u64,
    /// Groups decoded (and, for [`WalRecovery::replay`], re-applied).
    pub groups: u64,
    /// Operations across those groups.
    pub ops: u64,
    /// Bytes of valid frames (headers included, segment magic excluded).
    pub bytes: u64,
    /// Bytes discarded as the torn tail (across all affected segments).
    pub truncated_bytes: u64,
    /// Commit timestamp of the last valid group (`0` if none). These are
    /// the *original* run's timestamps; a replayed store draws fresh
    /// ones from its own clock.
    pub last_ts: u64,
}

/// A decoded log: the valid group prefix plus its [`RecoveryStats`].
pub struct ScanOutcome<K, V> {
    /// Every group of the valid prefix, in log (= replay) order.
    pub records: Vec<GroupRecord<K, V>>,
    /// What the scan measured.
    pub stats: RecoveryStats,
}

struct ScanState<K, V> {
    records: Vec<GroupRecord<K, V>>,
    stats: RecoveryStats,
    /// End of the valid prefix; `None` when no segment has a valid
    /// header (recovery of an empty or unborn log).
    end: Option<LogPosition>,
    /// Segments wholly past the valid prefix (deleted by truncation).
    doomed: Vec<PathBuf>,
}

/// Namespace for the recovery entry points ([`WalRecovery::scan`],
/// [`WalRecovery::truncate_torn`], [`WalRecovery::replay`]) and the
/// crash-simulation helper ([`WalRecovery::cut`]).
pub struct WalRecovery;

impl WalRecovery {
    /// List `wal-<seq>.log` segments in `dir`, ascending by sequence.
    fn segments(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
        let mut segs = Vec::new();
        match std::fs::read_dir(dir) {
            Ok(entries) => {
                for entry in entries {
                    let entry = entry?;
                    if let Some(seq) = segment_seq(&entry.file_name().to_string_lossy()) {
                        segs.push((seq, entry.path()));
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        segs.sort_unstable_by_key(|(seq, _)| *seq);
        Ok(segs)
    }

    fn scan_state<K, V>(dir: &Path) -> std::io::Result<ScanState<K, V>>
    where
        K: WalValue + Ord,
        V: WalValue,
    {
        let mut state = ScanState {
            records: Vec::new(),
            stats: RecoveryStats::default(),
            end: None,
            doomed: Vec::new(),
        };
        let mut torn = false;
        let mut expected_seq = None;
        for (seq, path) in Self::segments(dir)? {
            // A sequence gap means the intermediate segment is gone:
            // nothing after the gap can be trusted in log order.
            let contiguous = expected_seq.is_none_or(|e| seq == e);
            expected_seq = Some(seq + 1);
            if torn || !contiguous {
                torn = true;
                state.stats.truncated_bytes += std::fs::metadata(&path)?.len();
                state.doomed.push(path);
                continue;
            }
            let data = std::fs::read(&path)?;
            let magic = codec::SEGMENT_MAGIC.len();
            if data.len() < magic || data[..magic] != codec::SEGMENT_MAGIC {
                // Empty or partial-header file: torn at byte 0.
                torn = true;
                state.stats.truncated_bytes += data.len() as u64;
                state.doomed.push(path);
                continue;
            }
            state.stats.segments += 1;
            let mut at = magic;
            state.end = Some(LogPosition {
                segment: seq,
                bytes: at as u64,
            });
            while at < data.len() {
                let Some((record, used)) = codec::decode_frame::<K, V>(&data[at..]) else {
                    break;
                };
                let ascending = record.ops.windows(2).all(|w| w[0].op.key() < w[1].op.key());
                if !ascending {
                    // Structurally impossible for a pipeline-produced
                    // group: treat like any other malformed frame.
                    break;
                }
                state.stats.groups += 1;
                state.stats.ops += record.ops.len() as u64;
                state.stats.bytes += used as u64;
                state.stats.last_ts = record.ts;
                state.records.push(record);
                at += used;
                state.end = Some(LogPosition {
                    segment: seq,
                    bytes: at as u64,
                });
            }
            if at < data.len() {
                torn = true;
                state.stats.truncated_bytes += (data.len() - at) as u64;
            }
        }
        Ok(state)
    }

    /// Decode the valid group prefix of the log in `dir` without
    /// touching the files. Tolerates a missing directory, empty or
    /// partial-header segments, torn trailing frames, CRC corruption,
    /// and sequence gaps — everything from the first defect on is
    /// counted in [`RecoveryStats::truncated_bytes`] and excluded.
    pub fn scan<K, V>(dir: impl AsRef<Path>) -> std::io::Result<ScanOutcome<K, V>>
    where
        K: WalValue + Ord,
        V: WalValue,
    {
        let state = Self::scan_state::<K, V>(dir.as_ref())?;
        Ok(ScanOutcome {
            records: state.records,
            stats: state.stats,
        })
    }

    /// Physically truncate the torn tail found by [`WalRecovery::scan`]:
    /// the segment holding the end of the valid prefix is truncated to
    /// it, and every later (or headerless) segment file is deleted.
    /// Returns the end of the surviving log, or `None` if nothing
    /// valid survives (all segments removed).
    pub fn truncate_torn<K, V>(dir: impl AsRef<Path>) -> std::io::Result<Option<LogPosition>>
    where
        K: WalValue + Ord,
        V: WalValue,
    {
        let dir = dir.as_ref();
        let state = Self::scan_state::<K, V>(dir)?;
        for path in &state.doomed {
            std::fs::remove_file(path)?;
        }
        if let Some(end) = state.end {
            let path = dir.join(format!("wal-{:06}.log", end.segment));
            let file = std::fs::OpenOptions::new().write(true).open(&path)?;
            if file.metadata()?.len() > end.bytes {
                file.set_len(end.bytes)?;
                file.sync_data()?;
            }
        }
        Ok(state.end)
    }

    /// Crash simulation: cut the log to `pos` plus `extra` bytes, as a
    /// kill at that moment could leave it. Segments before `pos.segment`
    /// survive whole, the segment at `pos` keeps `pos.bytes + extra`
    /// bytes (a non-zero `extra` models unsynced page-cache writeback
    /// reaching disk — usually a torn frame), later segments are lost.
    /// Returns the number of bytes dropped.
    pub fn cut(dir: impl AsRef<Path>, pos: LogPosition, extra: u64) -> std::io::Result<u64> {
        let dir = dir.as_ref();
        let mut dropped = 0u64;
        for (seq, path) in Self::segments(dir)? {
            if seq < pos.segment {
                continue;
            }
            let len = std::fs::metadata(&path)?.len();
            if seq > pos.segment {
                dropped += len;
                std::fs::remove_file(&path)?;
            } else {
                let keep = (pos.bytes + extra).min(len);
                if len > keep {
                    dropped += len - keep;
                    let file = std::fs::OpenOptions::new().write(true).open(&path)?;
                    file.set_len(keep)?;
                    file.sync_data()?;
                }
            }
        }
        Ok(dropped)
    }

    /// Rebuild a store from the log: scan the valid prefix and re-apply
    /// every group, in log order, through `store`'s own
    /// [`BundledStore::apply_grouped`] pipeline. `store` must be fresh
    /// (empty); pass a store built with the same shard splits as the
    /// original so the shard sets stay meaningful.
    ///
    /// Replay is deterministic: each op's outcome depends only on its
    /// shard's prior state, and the log orders any two groups touching
    /// a common shard (their intent locks were held across logging) —
    /// so the re-applied outcomes must equal the logged ones, which is
    /// debug-asserted. Timestamps are drawn fresh from the recovered
    /// store's clock; [`RecoveryStats::last_ts`] reports the original
    /// run's final group timestamp.
    ///
    /// If the store carries an [`obs::MetricsRegistry`], the replayed
    /// group count is exported as `wal.recovery_replayed_groups`.
    pub fn replay<K, V, S>(
        dir: impl AsRef<Path>,
        store: &Arc<BundledStore<K, V, S>>,
    ) -> std::io::Result<RecoveryStats>
    where
        K: WalValue + Copy + Ord + Default + Send + Sync,
        V: WalValue + Clone + Send + Sync,
        S: ShardBackend<K, V>,
    {
        let outcome = Self::scan::<K, V>(dir.as_ref())?;
        let handle = store.register();
        let mut ops: Vec<TxnOp<K, V>> = Vec::new();
        for record in &outcome.records {
            ops.clear();
            ops.extend(record.ops.iter().map(|g| g.op.clone()));
            let receipt = handle.apply_grouped(&ops);
            debug_assert_eq!(
                receipt.applied,
                record.ops.iter().map(|g| g.applied).collect::<Vec<_>>(),
                "replay outcomes diverged from the logged fold (ts {})",
                record.ts
            );
        }
        if let Some(registry) = store.obs_registry() {
            registry
                .counter("wal.recovery_replayed_groups")
                .add(handle.tid(), outcome.stats.groups);
        }
        Ok(outcome.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GroupWal, SyncPolicy};
    use std::path::PathBuf;
    use store::CommitLog;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wal-rec-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn log_keys(wal: &GroupWal<u64, u64>, ts: u64, keys: &[u64]) {
        let ops: Vec<TxnOp<u64, u64>> = keys.iter().map(|&k| TxnOp::Put(k, k * 10)).collect();
        let order: Vec<usize> = (0..ops.len()).collect();
        let applied = vec![true; ops.len()];
        wal.log_group(0, ts, &ops, &order, &applied, &[0]);
    }

    fn write_n_groups(dir: &Path, n: u64, policy: SyncPolicy) {
        let wal = GroupWal::<u64, u64>::create(dir, policy).unwrap();
        for ts in 1..=n {
            log_keys(&wal, ts, &[ts, ts + 1000]);
        }
        wal.sync();
    }

    #[test]
    fn scan_reads_back_everything() {
        let dir = tmpdir("scan-all");
        write_n_groups(&dir, 5, SyncPolicy::Off);
        let out = WalRecovery::scan::<u64, u64>(&dir).unwrap();
        assert_eq!(out.stats.groups, 5);
        assert_eq!(out.stats.ops, 10);
        assert_eq!(out.stats.truncated_bytes, 0);
        assert_eq!(out.stats.last_ts, 5);
        assert_eq!(out.records[2].ops[1].op, TxnOp::Put(1003, 10030));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_or_empty_dir_scans_empty() {
        let dir = tmpdir("scan-missing");
        let out = WalRecovery::scan::<u64, u64>(&dir).unwrap();
        assert_eq!(out.stats, RecoveryStats::default());
        assert!(out.records.is_empty());
        assert_eq!(WalRecovery::truncate_torn::<u64, u64>(&dir).unwrap(), None);
    }

    #[test]
    fn torn_tail_at_every_byte_boundary() {
        let dir = tmpdir("torn-sweep");
        write_n_groups(&dir, 3, SyncPolicy::Off);
        let full = std::fs::read(dir.join("wal-000001.log")).unwrap();
        let boundaries: Vec<usize> = {
            let out = WalRecovery::scan::<u64, u64>(&dir).unwrap();
            let mut at = codec::SEGMENT_MAGIC.len();
            let mut b = vec![at];
            for _ in 0..out.stats.groups {
                let (_, used) = codec::decode_frame::<u64, u64>(&full[at..]).unwrap();
                at += used;
                b.push(at);
            }
            b
        };
        // Cut the single segment at EVERY byte length; the valid prefix
        // must be exactly the groups whose frames fit entirely.
        for cut in 0..=full.len() {
            std::fs::write(dir.join("wal-000001.log"), &full[..cut]).unwrap();
            let out = WalRecovery::scan::<u64, u64>(&dir).unwrap();
            let expect = if cut < codec::SEGMENT_MAGIC.len() {
                0
            } else {
                boundaries.iter().filter(|&&b| b <= cut).count() as u64 - 1
            };
            assert_eq!(out.stats.groups, expect, "cut at byte {cut}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_torn_physically_removes_the_tail() {
        let dir = tmpdir("truncate");
        write_n_groups(&dir, 3, SyncPolicy::Off);
        let path = dir.join("wal-000001.log");
        let full = std::fs::read(&path).unwrap();
        // Chop mid-frame: drop the last 5 bytes.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let end = WalRecovery::truncate_torn::<u64, u64>(&dir)
            .unwrap()
            .unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), end.bytes);
        let out = WalRecovery::scan::<u64, u64>(&dir).unwrap();
        assert_eq!(out.stats.groups, 2);
        assert_eq!(
            out.stats.truncated_bytes, 0,
            "tail is gone after truncation"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc_corruption_cuts_the_prefix_there() {
        let dir = tmpdir("crc");
        write_n_groups(&dir, 4, SyncPolicy::Off);
        let path = dir.join("wal-000001.log");
        let mut data = std::fs::read(&path).unwrap();
        // Flip one payload byte of the SECOND frame.
        let at = codec::SEGMENT_MAGIC.len();
        let (_, used) = codec::decode_frame::<u64, u64>(&data[at..]).unwrap();
        let victim = at + used + codec::FRAME_HEADER + 3;
        data[victim] ^= 0x01;
        std::fs::write(&path, &data).unwrap();
        let out = WalRecovery::scan::<u64, u64>(&dir).unwrap();
        assert_eq!(
            out.stats.groups, 1,
            "valid prefix stops before the corrupt frame"
        );
        assert!(out.stats.truncated_bytes > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_header_segment_is_discarded() {
        let dir = tmpdir("partial-header");
        write_n_groups(&dir, 2, SyncPolicy::Off);
        // A crash right after rotation created the file: 3 header bytes.
        std::fs::write(dir.join("wal-000002.log"), &codec::SEGMENT_MAGIC[..3]).unwrap();
        let out = WalRecovery::scan::<u64, u64>(&dir).unwrap();
        assert_eq!(out.stats.groups, 2);
        assert_eq!(out.stats.truncated_bytes, 3);
        let end = WalRecovery::truncate_torn::<u64, u64>(&dir)
            .unwrap()
            .unwrap();
        assert_eq!(end.segment, 1);
        assert!(!dir.join("wal-000002.log").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_boundaries_recover_across_segments() {
        let dir = tmpdir("rotate-rec");
        let wal = GroupWal::<u64, u64>::create(&dir, SyncPolicy::Off)
            .unwrap()
            .with_segment_bytes(128);
        // Append until the log spans 3+ segments AND the open segment
        // holds at least one frame (so the torn-tail cut below bites).
        let mut appended = 0u64;
        loop {
            appended += 1;
            log_keys(&wal, appended, &[appended]);
            let pos = wal.position();
            if pos.segment >= 3 && pos.bytes > codec::SEGMENT_MAGIC.len() as u64 {
                break;
            }
        }
        let pos = wal.position();
        drop(wal);
        let out = WalRecovery::scan::<u64, u64>(&dir).unwrap();
        assert_eq!(out.stats.groups, appended);
        assert_eq!(out.stats.segments, pos.segment);
        // Torn tail in the NEWEST segment only loses that segment's
        // trailing frames, not the rotated ones.
        let newest = dir.join(format!("wal-{:06}.log", pos.segment));
        let data = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &data[..data.len().saturating_sub(3)]).unwrap();
        let out = WalRecovery::scan::<u64, u64>(&dir).unwrap();
        assert_eq!(out.stats.groups, appended - 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequence_gap_invalidates_later_segments() {
        let dir = tmpdir("gap");
        let wal = GroupWal::<u64, u64>::create(&dir, SyncPolicy::Off)
            .unwrap()
            .with_segment_bytes(64);
        for ts in 1..=10 {
            log_keys(&wal, ts, &[ts]);
        }
        assert!(wal.position().segment >= 3);
        drop(wal);
        let before = WalRecovery::scan::<u64, u64>(&dir).unwrap().stats.groups;
        std::fs::remove_file(dir.join("wal-000002.log")).unwrap();
        let out = WalRecovery::scan::<u64, u64>(&dir).unwrap();
        assert!(out.stats.groups < before);
        assert_eq!(
            out.stats.segments, 1,
            "only segment 1 is trusted past the gap"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cut_then_reopen_appends_after_surviving_prefix() {
        let dir = tmpdir("cut-reopen");
        {
            let wal = GroupWal::<u64, u64>::create(&dir, SyncPolicy::EveryNGroups(2)).unwrap();
            for ts in 1..=5 {
                log_keys(&wal, ts, &[ts]);
            }
            // 4 groups durable (every=2), group 5 in the volatile tail.
            let durable = wal.durable_position();
            WalRecovery::cut(&dir, durable, 3).unwrap();
        }
        let wal = GroupWal::<u64, u64>::open(&dir, SyncPolicy::Always).unwrap();
        log_keys(&wal, 6, &[6]);
        drop(wal);
        let out = WalRecovery::scan::<u64, u64>(&dir).unwrap();
        let ts: Vec<u64> = out.records.iter().map(|r| r.ts).collect();
        assert_eq!(
            ts,
            vec![1, 2, 3, 4, 6],
            "durable prefix + post-reopen append"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
