//! # wal — group-commit write-ahead logging and crash recovery
//!
//! The store's group-commit front-end already produces the exact durable
//! unit a write-ahead log wants: one commit timestamp, one atomic cut,
//! per-key outcomes reconstructible from the ingest fold. This crate
//! logs per *group*, so the classic WAL fsync amortization falls out of
//! the batch that already exists — the same piggybacking the bundling
//! paper exploits for range-query metadata.
//!
//! ## Pieces
//!
//! * [`GroupWal`] — an append-only, CRC-checksummed, length-prefixed
//!   group log implementing [`store::CommitLog`]. Attach it to a
//!   [`store::BundledStore`] (before sharing) and every committing
//!   write group is appended — and, per [`SyncPolicy`], fsynced —
//!   *between* validation and finalization, while concurrent readers
//!   still spin on the group's pending bundle entries. The durable
//!   prefix of the log is therefore always a prefix of the visible
//!   history, and an `ingest` ticket (resolved after the group commits)
//!   implies durability under [`SyncPolicy::Always`].
//! * [`SyncPolicy`] — `Always` (fsync every group), `EveryNGroups`
//!   (bounded-loss batching), `Off` (the default: explicit
//!   [`store::CommitLog::sync`] barriers only; segment rotation still
//!   syncs).
//! * Segment rotation — the log is a directory of `wal-<seq>.log`
//!   files, rotated at a configurable size. Rotation fsyncs the old
//!   segment before opening the next, so only the newest segment can
//!   ever hold a torn tail.
//! * [`WalRecovery`] — scans the log, truncates the torn tail
//!   (tolerating a crash at any byte boundary), and replays the valid
//!   prefix into a fresh store through the same `apply_grouped`
//!   pipeline that produced it.
//! * Observability — [`GroupWal::attach_obs`] registers `wal.append_ns`
//!   / `wal.fsync_ns` histograms and `wal.bytes` / `wal.groups`
//!   counters; [`WalRecovery::replay`] counts
//!   `wal.recovery_replayed_groups`. All export through the existing
//!   `/metrics` endpoint.
//!
//! The crate is pure `std` — no new shims (see `shims/README.md`).
//!
//! ## Crash model
//!
//! `log_group` returns only after `write(2)` (plus `fsync(2)` when the
//! policy says so) succeeds. A crash can cut the log at **any byte
//! boundary** of the newest segment: recovery decodes frames until the
//! first one that is short, checksum-invalid, or structurally malformed,
//! and discards from there. Because groups are logged before they become
//! visible, the recovered store is the visible history truncated at the
//! last durable group boundary — never a state the live store could not
//! have shown.

#![forbid(unsafe_code)]

mod codec;
mod recovery;

pub use codec::{
    crc32, decode_frame, encode_frame, GroupOp, GroupRecord, WalValue, FRAME_HEADER, MAX_PAYLOAD,
    SEGMENT_MAGIC,
};
pub use recovery::{RecoveryStats, ScanOutcome, WalRecovery};

use obs::{Counter, Histogram, MetricsRegistry};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;
use store::TxnOp;

/// When the log forces appended groups to stable storage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every appended group: an acknowledged operation is a
    /// durable operation. The fsync is amortized over the whole group —
    /// the ingest committers pay one per published super-batch.
    Always,
    /// fsync once every `n` appended groups (`n >= 1`; `1` behaves like
    /// [`SyncPolicy::Always`]). A crash loses at most the last `n`
    /// groups' acknowledgements.
    EveryNGroups(u32),
    /// Never fsync on append — only explicit [`store::CommitLog::sync`]
    /// barriers ([`Ingest::flush`], shutdown) and segment rotation
    /// reach stable storage. The default.
    ///
    /// [`Ingest::flush`]: ../ingest/struct.Ingest.html#method.flush
    #[default]
    Off,
}

impl SyncPolicy {
    /// Parse a CLI spelling: `always`, `every=N`, or `off`.
    #[must_use]
    pub fn parse(s: &str) -> Option<SyncPolicy> {
        match s {
            "always" => Some(SyncPolicy::Always),
            "off" => Some(SyncPolicy::Off),
            _ => {
                let n: u32 = s.strip_prefix("every=")?.parse().ok()?;
                (n >= 1).then_some(SyncPolicy::EveryNGroups(n))
            }
        }
    }

    /// The label exported as the `durability` dimension of
    /// `store_build_info` and the `--json` run records.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            SyncPolicy::Always => "always".to_string(),
            SyncPolicy::EveryNGroups(n) => format!("every={n}"),
            SyncPolicy::Off => "off".to_string(),
        }
    }
}

/// A position in the log: a segment sequence number and a byte offset
/// within that segment. Ordered lexicographically, which is log order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LogPosition {
    /// Segment sequence number (`wal-<segment>.log`).
    pub segment: u64,
    /// Byte offset within the segment (includes the 8-byte header).
    pub bytes: u64,
}

/// Observability instruments of one log (see [`GroupWal::attach_obs`]).
struct WalObs {
    append_ns: Histogram,
    fsync_ns: Histogram,
    bytes: Counter,
    groups: Counter,
}

struct Inner {
    file: File,
    /// Sequence number of the open segment.
    seq: u64,
    /// Bytes written to the open segment (header included).
    len: u64,
    /// Groups appended since the last fsync.
    since_sync: u64,
    /// Log position at the last fsync: everything at or before it
    /// survives a crash.
    durable: LogPosition,
}

/// The group-commit write-ahead log: a directory of `wal-<seq>.log`
/// segment files appended under an internal mutex (group commit already
/// serializes overlapping writers through the store's intent locks; the
/// mutex orders the disjoint remainder).
///
/// Attach to a store with [`store::BundledStore::attach_commit_log`];
/// recover with [`WalRecovery::replay`]. I/O errors on the append path
/// panic: a write-ahead log that silently drops groups would let the
/// store acknowledge operations that were never durable.
pub struct GroupWal<K, V> {
    dir: PathBuf,
    policy: SyncPolicy,
    segment_bytes: u64,
    inner: Mutex<Inner>,
    obs: Option<WalObs>,
    _marker: PhantomData<fn(K, V)>,
}

/// Default segment rotation threshold (64 MiB).
pub const DEFAULT_SEGMENT_BYTES: u64 = 64 << 20;

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:06}.log"))
}

/// Parse `wal-<seq>.log` back to `seq`.
pub(crate) fn segment_seq(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    // Durability of segment creation itself (metadata). Directories can
    // be opened and synced on the platforms we run on; if the platform
    // refuses, the data fsyncs still hold for existing files.
    if let Ok(d) = File::open(dir) {
        d.sync_all()?;
    }
    Ok(())
}

impl<K, V> GroupWal<K, V> {
    /// Create a fresh log in `dir` (created if missing). Fails with
    /// [`std::io::ErrorKind::AlreadyExists`] if `dir` already holds
    /// segment files — a fresh log never silently appends to (or
    /// clobbers) an existing history; recover or remove it explicitly.
    pub fn create(dir: impl AsRef<Path>, policy: SyncPolicy) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            if segment_seq(&entry.file_name().to_string_lossy()).is_some() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AlreadyExists,
                    format!("{} already holds WAL segments", dir.display()),
                ));
            }
        }
        let (file, len) = Self::new_segment(&dir, 1)?;
        Ok(GroupWal {
            dir,
            policy,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            inner: Mutex::new(Inner {
                file,
                seq: 1,
                len,
                since_sync: 0,
                durable: LogPosition {
                    segment: 1,
                    bytes: len,
                },
            }),
            obs: None,
            _marker: PhantomData,
        })
    }

    /// Open an existing log for appending: validates the record stream,
    /// physically truncates any torn tail (see [`WalRecovery`]), and
    /// positions the writer at the end of the newest surviving segment.
    /// An empty or missing directory behaves like [`GroupWal::create`].
    pub fn open(dir: impl AsRef<Path>, policy: SyncPolicy) -> std::io::Result<Self>
    where
        K: WalValue + Ord,
        V: WalValue,
    {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let end = WalRecovery::truncate_torn::<K, V>(&dir)?;
        let Some(end) = end else {
            return Self::create(dir, policy);
        };
        let file = OpenOptions::new()
            .append(true)
            .open(segment_path(&dir, end.segment))?;
        Ok(GroupWal {
            dir,
            policy,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            inner: Mutex::new(Inner {
                file,
                seq: end.segment,
                len: end.bytes,
                since_sync: 0,
                durable: end,
            }),
            obs: None,
            _marker: PhantomData,
        })
    }

    /// Set the segment rotation threshold (builder-style; the default is
    /// [`DEFAULT_SEGMENT_BYTES`]). A segment rotates after the append
    /// that carries it past the threshold, so segments exceed it by at
    /// most one frame.
    #[must_use]
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes.max(codec::SEGMENT_MAGIC.len() as u64 + 1);
        self
    }

    /// Register the `wal.*` instruments (`wal.append_ns`, `wal.fsync_ns`
    /// histograms; `wal.bytes`, `wal.groups` counters) in `registry`.
    /// Without this — or with a disabled registry — the log records
    /// nothing.
    pub fn attach_obs(&mut self, registry: &MetricsRegistry) {
        self.obs = Some(WalObs {
            append_ns: registry.histogram("wal.append_ns"),
            fsync_ns: registry.histogram("wal.fsync_ns"),
            bytes: registry.counter("wal.bytes"),
            groups: registry.counter("wal.groups"),
        });
    }

    /// The configured sync policy.
    #[must_use]
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// The log directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The position of the last fsync: everything at or before it is
    /// stable. The crash-simulation harness samples this (without
    /// flushing!) to cut the log where a real crash could.
    #[must_use]
    pub fn durable_position(&self) -> LogPosition {
        self.inner.lock().expect("wal mutex poisoned").durable
    }

    /// The current end-of-log write position (`>=` the durable position).
    #[must_use]
    pub fn position(&self) -> LogPosition {
        let inner = self.inner.lock().expect("wal mutex poisoned");
        LogPosition {
            segment: inner.seq,
            bytes: inner.len,
        }
    }

    fn new_segment(dir: &Path, seq: u64) -> std::io::Result<(File, u64)> {
        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(segment_path(dir, seq))?;
        file.write_all(&codec::SEGMENT_MAGIC)?;
        file.sync_data()?;
        fsync_dir(dir)?;
        Ok((file, codec::SEGMENT_MAGIC.len() as u64))
    }

    fn fsync_locked(&self, inner: &mut Inner, tid: usize) {
        let t0 = self.obs.as_ref().map(|_| Instant::now());
        inner.file.sync_data().expect("wal fsync failed");
        inner.since_sync = 0;
        inner.durable = LogPosition {
            segment: inner.seq,
            bytes: inner.len,
        };
        if let (Some(obs), Some(t0)) = (&self.obs, t0) {
            obs.fsync_ns.record(tid, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Rotate: fsync the finished segment (a rotation is always a
    /// durability point — only the newest segment can hold a torn
    /// tail), then open the next.
    fn rotate_locked(&self, inner: &mut Inner, tid: usize) {
        self.fsync_locked(inner, tid);
        let seq = inner.seq + 1;
        let (file, len) = Self::new_segment(&self.dir, seq).expect("wal segment rotation failed");
        inner.file = file;
        inner.seq = seq;
        inner.len = len;
        inner.since_sync = 0;
        // The new segment's header was fsynced by new_segment.
        inner.durable = LogPosition {
            segment: seq,
            bytes: len,
        };
    }
}

impl<K, V> store::CommitLog<K, V> for GroupWal<K, V>
where
    K: WalValue + Send + Sync,
    V: WalValue + Send + Sync,
{
    fn log_group(
        &self,
        tid: usize,
        ts: u64,
        ops: &[TxnOp<K, V>],
        order: &[usize],
        applied: &[bool],
        shards: &[usize],
    ) {
        let t0 = self.obs.as_ref().map(|_| Instant::now());
        let mut frame = Vec::with_capacity(64 + order.len() * 24);
        codec::encode_frame(ts, ops, order, applied, shards, &mut frame);
        let mut inner = self.inner.lock().expect("wal mutex poisoned");
        let inner = &mut *inner;
        inner.file.write_all(&frame).expect("wal append failed");
        inner.len += frame.len() as u64;
        inner.since_sync += 1;
        if let (Some(obs), Some(t0)) = (&self.obs, t0) {
            obs.append_ns.record(tid, t0.elapsed().as_nanos() as u64);
            obs.bytes.add(tid, frame.len() as u64);
            obs.groups.incr(tid);
        }
        let want_sync = match self.policy {
            SyncPolicy::Always => true,
            SyncPolicy::EveryNGroups(n) => inner.since_sync >= u64::from(n),
            SyncPolicy::Off => false,
        };
        if want_sync {
            self.fsync_locked(inner, tid);
        }
        if inner.len >= self.segment_bytes {
            self.rotate_locked(inner, tid);
        }
    }

    fn sync(&self) {
        let mut inner = self.inner.lock().expect("wal mutex poisoned");
        let inner = &mut *inner;
        let at_end = inner.durable.segment == inner.seq && inner.durable.bytes == inner.len;
        if !at_end || inner.since_sync > 0 {
            self.fsync_locked(inner, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use store::CommitLog;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wal-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn put(k: u64) -> TxnOp<u64, u64> {
        TxnOp::Put(k, k * 10)
    }

    fn log_keys(wal: &GroupWal<u64, u64>, ts: u64, keys: &[u64]) {
        let ops: Vec<_> = keys.iter().map(|&k| put(k)).collect();
        let order: Vec<usize> = (0..ops.len()).collect();
        let applied = vec![true; ops.len()];
        wal.log_group(0, ts, &ops, &order, &applied, &[0]);
    }

    #[test]
    fn sync_policy_parse_and_label() {
        assert_eq!(SyncPolicy::parse("always"), Some(SyncPolicy::Always));
        assert_eq!(SyncPolicy::parse("off"), Some(SyncPolicy::Off));
        assert_eq!(
            SyncPolicy::parse("every=8"),
            Some(SyncPolicy::EveryNGroups(8))
        );
        assert_eq!(SyncPolicy::parse("every=0"), None);
        assert_eq!(SyncPolicy::parse("sometimes"), None);
        assert_eq!(SyncPolicy::EveryNGroups(8).label(), "every=8");
        assert_eq!(SyncPolicy::default(), SyncPolicy::Off);
    }

    #[test]
    fn create_refuses_existing_segments() {
        let dir = tmpdir("create-refuses");
        {
            let _wal = GroupWal::<u64, u64>::create(&dir, SyncPolicy::Off).unwrap();
        }
        let err = match GroupWal::<u64, u64>::create(&dir, SyncPolicy::Off) {
            Err(e) => e,
            Ok(_) => panic!("create over an existing log must fail"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn always_policy_advances_durable_position_per_group() {
        let dir = tmpdir("always-durable");
        let wal = GroupWal::<u64, u64>::create(&dir, SyncPolicy::Always).unwrap();
        let before = wal.durable_position();
        log_keys(&wal, 1, &[1, 2, 3]);
        let after = wal.durable_position();
        assert!(after > before);
        assert_eq!(after, wal.position(), "Always: durable == written");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn off_policy_leaves_tail_volatile_until_sync() {
        let dir = tmpdir("off-volatile");
        let wal = GroupWal::<u64, u64>::create(&dir, SyncPolicy::Off).unwrap();
        let durable0 = wal.durable_position();
        log_keys(&wal, 1, &[1]);
        log_keys(&wal, 2, &[2]);
        assert_eq!(wal.durable_position(), durable0, "Off: no fsync on append");
        assert!(wal.position() > durable0);
        wal.sync();
        assert_eq!(wal.durable_position(), wal.position());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_n_policy_syncs_on_the_nth_group() {
        let dir = tmpdir("every-n");
        let wal = GroupWal::<u64, u64>::create(&dir, SyncPolicy::EveryNGroups(3)).unwrap();
        let durable0 = wal.durable_position();
        log_keys(&wal, 1, &[1]);
        log_keys(&wal, 2, &[2]);
        assert_eq!(wal.durable_position(), durable0);
        log_keys(&wal, 3, &[3]);
        assert_eq!(wal.durable_position(), wal.position());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_starts_new_segments_and_keeps_old_ones_durable() {
        let dir = tmpdir("rotate");
        let wal = GroupWal::<u64, u64>::create(&dir, SyncPolicy::Off)
            .unwrap()
            .with_segment_bytes(96);
        for ts in 1..=8 {
            log_keys(&wal, ts, &[ts]);
        }
        let pos = wal.position();
        assert!(pos.segment > 1, "log must have rotated");
        // Every finished segment exists on disk with the header magic.
        for seq in 1..pos.segment {
            let bytes = std::fs::read(segment_path(&dir, seq)).unwrap();
            assert_eq!(&bytes[..8], &codec::SEGMENT_MAGIC);
            assert!(bytes.len() as u64 >= 96 - 8, "rotated past threshold");
        }
        // Rotation is a durability point: only the open segment can be
        // ahead of the durable position.
        assert_eq!(wal.durable_position().segment, pos.segment);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
