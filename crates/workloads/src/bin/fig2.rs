//! Figure 2: throughput (Mops/s) of the skip list (a–e) and Citrus tree
//! (f–j) under the five `U − C − RQ` workload mixes, as a function of the
//! number of threads.
//!
//! Usage: `cargo run --release -p workloads --bin fig2 [-- skiplist|citrus]`
//! Thread counts come from `BUNDLE_THREADS`, duration from
//! `BUNDLE_DURATION_MS`.

use std::sync::Arc;

use workloads::{
    duration_ms, make_structure, print_series_table, run_workload, thread_counts, write_csv, Point,
    RunConfig, StructureKind, WorkloadMix,
};

fn sweep(label: &str, kinds: &[StructureKind], key_range: u64) {
    for mix in WorkloadMix::FIGURE2 {
        let mut points = Vec::new();
        for &threads in &thread_counts() {
            for &kind in kinds {
                let s = make_structure(kind, threads);
                let cfg = RunConfig::new(threads, duration_ms(), key_range, mix);
                let t = run_workload(&Arc::clone(&s), &cfg);
                points.push(Point {
                    series: kind.name().to_string(),
                    x: threads.to_string(),
                    y: t.mops(),
                });
            }
        }
        let title = format!("Figure 2 [{label}] workload {}", mix.label());
        print_series_table(&title, "threads", "Mops/s", &points);
        write_csv(
            &format!("fig2_{label}_{}", mix.label()),
            "threads",
            "mops",
            &points,
        );
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "both".into());
    if which == "skiplist" || which == "both" {
        sweep(
            "skiplist",
            &[StructureKind::SkipListBundle, StructureKind::SkipListUnsafe],
            RunConfig::TREE_KEY_RANGE,
        );
    }
    if which == "citrus" || which == "both" {
        sweep(
            "citrus",
            &[StructureKind::CitrusBundle, StructureKind::CitrusUnsafe],
            RunConfig::TREE_KEY_RANGE,
        );
    }
}
