//! Crash-recovery scenario: group-commit ingestion over a [`wal::GroupWal`],
//! a simulated kill at the durability boundary, and a full replay + verify
//! pass — the end-to-end check that the durable prefix of the log is a
//! prefix of the acknowledged history.
//!
//! The run, per backend:
//!
//! 1. Build an **empty** store (recovery rebuilds from the log alone, so
//!    the run starts with nothing outside it), attach a [`wal::GroupWal`]
//!    with the requested `--sync-policy`, and spawn the ingest front-end.
//! 2. Producer threads submit put/set/remove batches over **disjoint key
//!    stripes** (`key % producers == p`), waiting every ticket before the
//!    next batch, and journal each acknowledged op — key, kind, value,
//!    applied flag — in acknowledgment order. Striping means each key's
//!    journal is its complete, totally-ordered history.
//! 3. Once the store has committed `--kill-after` groups the producers
//!    stop and the harness samples the WAL's **durable position without
//!    flushing** — that sample is the crash point. The clean
//!    `Ingest::shutdown` that follows fsyncs the tail like any orderly
//!    exit, but the simulated kill ignores it: [`wal::WalRecovery::cut`]
//!    truncates the log back to the sampled position (plus `--torn-bytes`
//!    of torn frame past it, exercising mid-frame tears).
//! 4. A fresh store (same splits) is rebuilt via
//!    [`wal::WalRecovery::replay`] and verified three ways:
//!    * **A (replay = decode)** — the recovered store's full range scan
//!      equals a plain decode-and-fold of the cut log: replaying through
//!      the real commit pipeline and folding the records by hand agree.
//!    * **B (journal-prefix consistency)** — every key's recovered value
//!      is reachable by folding some prefix of that key's acked journal:
//!      recovery never invents state and never reorders a key's history.
//!    * **C (`always` = lose nothing acked)** — under
//!      [`wal::SyncPolicy::Always`] every acknowledged op survives: the
//!      recovered store equals the fold of **every** journal in full.
//!
//! The binary exits non-zero if any check fails. `--json` writes one
//! schema-6 record per backend with the `durability` field set to the
//! policy label and (under `--obs`) the flattened `obs.*` snapshot —
//! including the `wal.append_ns` / `wal.fsync_ns` / `wal.bytes` /
//! `wal.groups` / `wal.recovery_replayed_groups` instruments. `--serve`
//! starts the live introspection endpoint with the `durability` label on
//! `store_build_info`.
//!
//! Usage:
//! `cargo run --release -p workloads --bin store_recovery -- [store-skiplist|store-citrus|store-list] [--sync-policy always|every=N|off] [--kill-after G] [--torn-bytes B] [--producers N] [--json <path>] [--obs] [--serve <addr>]`
//! (default: all three backends, `--sync-policy always`). Shard count
//! comes from `BUNDLE_SHARDS`.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ingest::{Ingest, IngestConfig};
use store::{uniform_splits, BundledStore, CommitLog, ShardBackend, TxnOp};
use wal::{GroupWal, SyncPolicy, WalRecovery};
use workloads::{
    write_json, RunRecord, StructureKind, DEFAULT_STORE_SHARDS, SCHEMA_VERSION, TXN_STORE_KINDS,
};

/// Keyspace: deliberately small so same-key traffic is dense and the
/// journals exercise applied/not-applied outcomes (duplicate puts,
/// removes of absent keys) rather than only fresh inserts.
const KEY_RANGE: u64 = 4096;

/// Ops per submitted batch (one ticket, one group membership).
const BATCH: usize = 8;

/// Producers stop on their own after this long even if the group target
/// was never reached (a safety valve for tiny `--kill-after` sweeps on
/// loaded machines; the checks hold for whatever prefix was produced).
const MAX_RUN: Duration = Duration::from_secs(10);

fn shard_count() -> usize {
    std::env::var("BUNDLE_SHARDS")
        .ok()
        .and_then(|s| s.split(',').next().and_then(|t| t.trim().parse().ok()))
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_STORE_SHARDS)
}

fn xorshift(seed: &mut u64) -> u64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    *seed
}

/// One acknowledged operation of one producer's journal, in ack order.
#[derive(Clone, Copy)]
struct JournalOp {
    key: u64,
    /// 0 = put, 1 = set, 2 = remove (mirrors the WAL record kinds).
    kind: u8,
    value: u64,
    applied: bool,
}

impl JournalOp {
    /// Fold this op into a model state, honoring the journaled outcome.
    /// A `Set` upsert always lands (its flag only reports whether the key
    /// existed); `Put` and `Remove` take effect only when applied.
    fn apply(&self, state: &mut BTreeMap<u64, u64>) {
        match self.kind {
            0 if self.applied => {
                state.insert(self.key, self.value);
            }
            1 => {
                state.insert(self.key, self.value);
            }
            2 if self.applied => {
                state.remove(&self.key);
            }
            _ => {}
        }
    }
}

/// Everything the verification pass needs from one backend's run.
struct RecoveryReport {
    groups_committed: u64,
    acked_ops: u64,
    durable: wal::LogPosition,
    tail: wal::LogPosition,
    cut_bytes: u64,
    stats: wal::RecoveryStats,
    recovered_keys: usize,
    failures: Vec<String>,
    snapshot: Option<obs::MetricsSnapshot>,
}

struct Cli {
    policy: SyncPolicy,
    kill_after: u64,
    torn_bytes: u64,
    producers: usize,
    with_obs: bool,
}

/// Run the write → kill → replay → verify sequence for one backend.
fn run_backend<S>(kind_name: &str, cli: &Cli, server: Option<&obs::ExportServer>) -> RecoveryReport
where
    S: ShardBackend<u64, u64> + Send + Sync + 'static,
{
    let shards = shard_count();
    let splits = uniform_splits(shards, KEY_RANGE);
    let dir =
        std::env::temp_dir().join(format!("store-recovery-{kind_name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Both stores (the killed original and the recovered one) share one
    // registry so the final snapshot carries the write-side wal.* series
    // and the replay counter together.
    let registry = obs::MetricsRegistry::new();
    let committers = shards.min(2);
    let serving = server.is_some() && cli.with_obs;
    let slots = cli.producers + committers + 2 + usize::from(serving);
    let mut original = if cli.with_obs {
        BundledStore::<u64, u64, S>::with_obs(
            slots,
            store::ReclaimMode::Reclaim,
            splits.clone(),
            &registry,
        )
    } else {
        BundledStore::<u64, u64, S>::new(slots, splits.clone())
    };
    let mut wal = GroupWal::<u64, u64>::create(&dir, cli.policy).expect("create wal dir");
    if cli.with_obs {
        wal.attach_obs(&registry);
    }
    let wal = Arc::new(wal);
    original.attach_commit_log(Arc::clone(&wal) as Arc<dyn CommitLog<u64, u64>>);
    let original = Arc::new(original);

    if serving {
        let server = server.expect("serving implies a server");
        let h = original.register();
        server.install(
            obs::ExportSources::new()
                .with_snapshot(move || {
                    h.store()
                        .obs_snapshot(h.tid())
                        .expect("store built with obs")
                })
                .with_build_info(vec![
                    ("schema".into(), SCHEMA_VERSION.to_string()),
                    ("bench".into(), "store_recovery".into()),
                    ("backend".into(), kind_name.into()),
                    ("durability".into(), cli.policy.label()),
                ]),
        );
    }

    let ingest = Arc::new(Ingest::spawn(
        Arc::clone(&original),
        IngestConfig {
            committers,
            ..IngestConfig::default()
        },
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let producers: Vec<_> = (0..cli.producers)
        .map(|p| {
            let ingest = Arc::clone(&ingest);
            let stop = Arc::clone(&stop);
            let producers = cli.producers as u64;
            std::thread::spawn(move || {
                let mut seed = (p as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let mut journal: Vec<JournalOp> = Vec::new();
                // Stripe: this producer owns exactly the keys congruent to
                // p, so no other thread ever writes them and the journal
                // is the key's total history.
                let stripe = KEY_RANGE / producers;
                while !stop.load(Ordering::Relaxed) {
                    let mut ops = Vec::with_capacity(BATCH);
                    let mut meta = Vec::with_capacity(BATCH);
                    for _ in 0..BATCH {
                        let r = xorshift(&mut seed);
                        let key = p as u64 + producers * (r % stripe);
                        let value = r >> 13;
                        let (kind, op) = match r % 3 {
                            0 => (0, TxnOp::Put(key, value)),
                            1 => (1, TxnOp::Set(key, value)),
                            _ => (2, TxnOp::Remove(key)),
                        };
                        ops.push(op);
                        meta.push((key, kind, value));
                    }
                    // One ticket per batch, waited immediately: every
                    // journaled op was acknowledged, in journal order, and
                    // each batch lands whole in a single group.
                    let outcome = ingest.submit_batch(ops).wait();
                    for ((key, kind, value), &applied) in
                        meta.into_iter().zip(outcome.applied.iter())
                    {
                        journal.push(JournalOp {
                            key,
                            kind,
                            value,
                            applied,
                        });
                    }
                }
                journal
            })
        })
        .collect();

    // Kill trigger: watch the store's group-commit counter; the producers
    // stop submitting once the target is reached (or MAX_RUN elapses).
    let started = Instant::now();
    loop {
        let groups = original.txn_stats().group_commits;
        if groups >= cli.kill_after || started.elapsed() >= MAX_RUN {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    stop.store(true, Ordering::Relaxed);
    let journals: Vec<Vec<JournalOp>> = producers
        .into_iter()
        .map(|p| p.join().expect("producer panicked"))
        .collect();

    // The crash point: sample the durable position with NO flush — this
    // is exactly what a kill here would preserve. The clean shutdown
    // below fsyncs the tail (as documented on `Ingest::flush`), but the
    // cut rewinds the file to this sample, so the orderly exit does not
    // leak durability into the simulated crash.
    let durable = wal.durable_position();
    let tail = wal.position();
    ingest.shutdown();
    let groups_committed = original.txn_stats().group_commits;
    let acked_ops: u64 = journals.iter().map(|j| j.len() as u64).sum();
    drop(ingest);
    drop(original);

    let cut_bytes = WalRecovery::cut(&dir, durable, cli.torn_bytes).expect("cut log");

    // Rebuild from the cut log through the real commit pipeline.
    let recovered = Arc::new(if cli.with_obs {
        BundledStore::<u64, u64, S>::with_obs(2, store::ReclaimMode::Reclaim, splits, &registry)
    } else {
        BundledStore::<u64, u64, S>::new(2, splits)
    });
    let stats = WalRecovery::replay(&dir, &recovered).expect("replay");
    let handle = recovered.register();
    let recovered_state: BTreeMap<u64, u64> =
        handle.range_query_vec(&0, &u64::MAX).into_iter().collect();

    let mut failures = Vec::new();

    // Check A: replay through the pipeline == plain decode-and-fold of
    // the cut log. The log is the oracle; the two consumers must agree.
    let decoded = WalRecovery::scan::<u64, u64>(&dir).expect("scan");
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    for record in &decoded.records {
        for gop in &record.ops {
            match &gop.op {
                // A Set upsert always lands; Put and Remove only when
                // their logged outcome says they applied.
                TxnOp::Put(k, v) if gop.applied => {
                    oracle.insert(*k, *v);
                }
                TxnOp::Set(k, v) => {
                    oracle.insert(*k, *v);
                }
                TxnOp::Remove(k) if gop.applied => {
                    oracle.remove(k);
                }
                _ => {}
            }
        }
    }
    if recovered_state != oracle {
        failures.push(format!(
            "check A: recovered store ({} keys) != decode-fold of cut log ({} keys)",
            recovered_state.len(),
            oracle.len()
        ));
    }

    // Check B: every key's recovered value is the fold of SOME prefix of
    // that key's acked journal (keys are striped, so the per-producer
    // journal is the key's total history; batches land whole in one
    // group, so recovery points align with journal prefixes).
    let mut per_key: BTreeMap<u64, Vec<JournalOp>> = BTreeMap::new();
    for op in journals.iter().flatten() {
        per_key.entry(op.key).or_default().push(*op);
    }
    for (&key, history) in &per_key {
        let recovered_value = recovered_state.get(&key).copied();
        let mut state: BTreeMap<u64, u64> = BTreeMap::new();
        let mut reachable = state.get(&key).copied() == recovered_value;
        for op in history {
            op.apply(&mut state);
            reachable |= state.get(&key).copied() == recovered_value;
        }
        if !reachable {
            failures.push(format!(
                "check B: key {key} recovered as {recovered_value:?}, unreachable by any \
                 prefix of its {}-op acked journal",
                history.len()
            ));
            if failures.len() > 8 {
                break;
            }
        }
    }
    // Keys never acked must not exist (the log cannot invent keys, but a
    // replay bug could smear a value across shard boundaries).
    for key in recovered_state.keys() {
        if !per_key.contains_key(key) {
            failures.push(format!("check B: recovered key {key} was never submitted"));
        }
    }

    // Check C: under Always every acknowledged op is durable — the
    // recovered store must equal the fold of every journal in full.
    if cli.policy == SyncPolicy::Always {
        let mut full: BTreeMap<u64, u64> = BTreeMap::new();
        for (_, history) in per_key {
            for op in history {
                op.apply(&mut full);
            }
        }
        if recovered_state != full {
            failures.push(format!(
                "check C: policy=always but recovered store ({} keys) != full acked fold \
                 ({} keys) — an acknowledged op was lost",
                recovered_state.len(),
                full.len()
            ));
        }
    }

    let snapshot = recovered.obs_snapshot(handle.tid());
    RecoveryReport {
        groups_committed,
        acked_ops,
        durable,
        tail,
        cut_bytes,
        stats,
        recovered_keys: recovered_state.len(),
        failures,
        snapshot,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kind_arg: Option<String> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut serve_addr: Option<String> = None;
    let mut cli = Cli {
        policy: SyncPolicy::Always,
        kill_after: 64,
        torn_bytes: 37,
        producers: 3,
        with_obs: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sync-policy" => {
                cli.policy = match args.get(i + 1).and_then(|s| SyncPolicy::parse(s)) {
                    Some(p) => p,
                    None => {
                        eprintln!("--sync-policy requires one of: always, every=N, off");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--kill-after" => {
                cli.kill_after = match args.get(i + 1).and_then(|s| s.parse().ok()) {
                    Some(g) => g,
                    None => {
                        eprintln!("--kill-after requires a group count");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--torn-bytes" => {
                cli.torn_bytes = match args.get(i + 1).and_then(|s| s.parse().ok()) {
                    Some(b) => b,
                    None => {
                        eprintln!("--torn-bytes requires a byte count");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--producers" => {
                cli.producers = match args.get(i + 1).and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0 => n,
                    _ => {
                        eprintln!("--producers requires a positive thread count");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--json" => {
                json_path = args.get(i + 1).map(PathBuf::from);
                if json_path.is_none() {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--serve" => {
                serve_addr = args.get(i + 1).cloned();
                if serve_addr.is_none() {
                    eprintln!("--serve requires an address (e.g. 127.0.0.1:0)");
                    std::process::exit(2);
                }
                cli.with_obs = true;
                i += 2;
            }
            "--obs" => {
                cli.with_obs = true;
                i += 1;
            }
            other => {
                kind_arg = Some(other.to_string());
                i += 1;
            }
        }
    }
    let kinds: Vec<StructureKind> = match kind_arg.as_deref() {
        None | Some("all") => TXN_STORE_KINDS.to_vec(),
        Some(name) => match StructureKind::parse(name) {
            Some(kind) if kind.is_store() => vec![kind],
            _ => {
                eprintln!(
                    "unknown store kind {name:?}; expected one of: {}",
                    TXN_STORE_KINDS.map(|k| k.name()).join(", ")
                );
                std::process::exit(2);
            }
        },
    };
    let server = serve_addr.map(|addr| {
        match obs::ExportServer::spawn(addr.as_str(), obs::ExportSources::new()) {
            Ok(s) => {
                println!("serving on {}", s.local_addr());
                s
            }
            Err(e) => {
                eprintln!("--serve {addr}: bind failed: {e}");
                std::process::exit(2);
            }
        }
    });

    let mut records = Vec::new();
    let mut ok = true;
    for kind in kinds {
        let name = kind.name();
        let report = match kind {
            StructureKind::StoreSkipList => {
                run_backend::<skiplist::BundledSkipList<u64, u64>>(name, &cli, server.as_ref())
            }
            StructureKind::StoreCitrus => {
                run_backend::<citrus::BundledCitrusTree<u64, u64>>(name, &cli, server.as_ref())
            }
            StructureKind::StoreList => {
                run_backend::<lazylist::BundledLazyList<u64, u64>>(name, &cli, server.as_ref())
            }
            other => panic!("{other:?} is not a sharded store kind"),
        };
        println!(
            "store_recovery [{name}] policy={} groups={} acked_ops={} durable={}:{} \
             tail={}:{} cut_bytes={} replayed_groups={} replayed_ops={} truncated_bytes={} \
             recovered_keys={}",
            cli.policy.label(),
            report.groups_committed,
            report.acked_ops,
            report.durable.segment,
            report.durable.bytes,
            report.tail.segment,
            report.tail.bytes,
            report.cut_bytes,
            report.stats.groups,
            report.stats.ops,
            report.stats.truncated_bytes,
            report.recovered_keys,
        );
        for f in &report.failures {
            eprintln!("store_recovery [{name}] FAILED {f}");
            ok = false;
        }
        if report.failures.is_empty() {
            println!(
                "store_recovery [{name}] verified: replay==decode, journal-prefix \
                 consistent{}",
                if cli.policy == SyncPolicy::Always {
                    ", nothing acked lost"
                } else {
                    ""
                }
            );
        }
        let mut metrics = vec![
            ("groups_committed".into(), report.groups_committed as f64),
            ("acked_ops".into(), report.acked_ops as f64),
            ("kill_after".into(), cli.kill_after as f64),
            ("torn_bytes".into(), cli.torn_bytes as f64),
            ("durable_segment".into(), report.durable.segment as f64),
            ("durable_bytes".into(), report.durable.bytes as f64),
            ("cut_bytes".into(), report.cut_bytes as f64),
            ("replayed_groups".into(), report.stats.groups as f64),
            ("replayed_ops".into(), report.stats.ops as f64),
            ("replayed_bytes".into(), report.stats.bytes as f64),
            (
                "replay_truncated_bytes".into(),
                report.stats.truncated_bytes as f64,
            ),
            ("recovered_keys".into(), report.recovered_keys as f64),
            (
                "verify_ok".into(),
                if report.failures.is_empty() { 1.0 } else { 0.0 },
            ),
        ];
        if let Some(snap) = &report.snapshot {
            metrics.extend(snap.flatten("obs."));
        }
        records.push(RunRecord {
            schema: SCHEMA_VERSION,
            bench: "store_recovery".into(),
            kind: name.into(),
            mix: format!("kill-{}", cli.kill_after),
            threads: cli.producers,
            durability: cli.policy.label(),
            metrics,
            windows: Vec::new(),
            health: Vec::new(),
        });
    }
    if let Some(path) = json_path {
        match write_json(&path, &records) {
            Ok(()) => println!(
                "\nwrote {} run records to {}",
                records.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
