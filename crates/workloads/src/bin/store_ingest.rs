//! Group-commit ingestion scenario: grouped-put throughput of the
//! `ingest` front-end versus the per-op `apply_txn` put path, for every
//! store backend, with a submission-window (batch-size) sweep.
//!
//! Two configurations run per (backend, thread count):
//!
//! * **direct** — each worker commits one `TxnOp::Put` per `apply_txn`
//!   call: one clock advance and one intent round per operation (the
//!   pre-ingest baseline; exactly 1.0 clock advances per op).
//! * **ingest** — workers submit the same puts to the group-commit
//!   front-end in pipelined windows of `W` tickets
//!   (`Ingest::submit_all`, then wait), for each `W` in the window
//!   sweep. Committer threads coalesce everything that accumulates into
//!   super-batches published under **one clock advance per group**.
//!
//! The table reports resolved operations/s for both paths, the
//! ingest/direct speedup, measured **clock advances per op** (from
//! [`bundle::RqContext::advance_calls`] — amortization is measured, not
//! assumed), and the mean group size. `--json` additionally writes one
//! machine-readable record per configuration.
//!
//! A third **staging panel** isolates the prepare-cursor win: identical
//! key-sorted groups of [`STAGING_GROUP`] ops are committed through the
//! cursor-driven pipeline (`apply_grouped`) and through the legacy
//! point-descent shim (`apply_grouped_unhinted`), reporting
//! `staging_ns_per_op` for each. `--check-staging` exits non-zero if the
//! hinted path fails to beat the unhinted path on any backend — the CI
//! regression gate for sub-logarithmic batch staging.
//!
//! Usage:
//! `cargo run --release -p workloads --bin store_ingest -- [store-skiplist|store-citrus|store-list] [--json <path>] [--check-staging]`
//! (default: all three backends). Thread counts come from
//! `BUNDLE_THREADS`, duration from `BUNDLE_DURATION_MS`, shard count from
//! `BUNDLE_SHARDS`, the window sweep from `BUNDLE_INGEST_WINDOWS`
//! (comma-separated, default "1,16,64,256" — from latency-oriented
//! trickle to throughput-oriented firehose) and the committer-thread
//! count from `BUNDLE_INGEST_COMMITTERS` (default: half the machine's
//! available parallelism, clamped to [1, shards] — a committer beyond
//! the shard count would own no submission queue).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ingest::{Ingest, IngestConfig};
use store::{uniform_splits, BundledStore, ShardBackend, TxnOp};
use workloads::{
    duration_ms, print_series_table, thread_counts, write_csv, write_json, Point, RunRecord,
    StructureKind, DEFAULT_STORE_SHARDS, TXN_STORE_KINDS,
};

/// Keyspace (half prefilled, like every harness scenario).
const KEY_RANGE: u64 = 100_000;

fn shard_count() -> usize {
    std::env::var("BUNDLE_SHARDS")
        .ok()
        .and_then(|s| s.split(',').next().and_then(|t| t.trim().parse().ok()))
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_STORE_SHARDS)
}

/// Pipelined submission windows to sweep (tickets in flight per worker).
fn windows() -> Vec<usize> {
    std::env::var("BUNDLE_INGEST_WINDOWS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect::<Vec<_>>()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 16, 64, 256])
}

/// Committers compete with producers for cores, so default to half the
/// *machine's* parallelism (not the producer count): on a small box one
/// committer drains everything and forms the biggest groups, on a big one
/// several committers keep the prepare work parallel across shards.
fn committer_count(shards: usize) -> usize {
    std::env::var("BUNDLE_INGEST_COMMITTERS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get() / 2)
                .unwrap_or(1)
                .max(1)
        })
        .clamp(1, shards)
}

fn xorshift(seed: &mut u64) -> u64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    *seed
}

struct RunResult {
    ops_per_sec: f64,
    advances_per_op: f64,
    ops_per_group: f64,
}

/// Baseline: every put is its own `apply_txn` commit (one clock advance
/// and one intent round per op).
fn run_direct<S>(threads: usize, dur: Duration, shards: usize) -> RunResult
where
    S: ShardBackend<u64, u64> + Send + Sync + 'static,
{
    let store = Arc::new(BundledStore::<u64, u64, S>::new(
        threads,
        uniform_splits(shards, KEY_RANGE),
    ));
    {
        let h = store.register();
        for k in (0..KEY_RANGE).step_by(2) {
            h.insert(k, k);
        }
    }
    let advances_before = store.context().advance_calls();
    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..threads)
        .map(|w| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let ops = Arc::clone(&ops);
            std::thread::spawn(move || {
                let handle = store.register();
                let mut seed = (w as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15);
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = xorshift(&mut seed) % KEY_RANGE;
                    let _ = handle.apply_txn(&[TxnOp::Put(k, k)]);
                    local += 1;
                }
                ops.fetch_add(local, Ordering::Relaxed);
            })
        })
        .collect();
    let start = Instant::now();
    std::thread::sleep(dur);
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("direct worker panicked");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let total = ops.load(Ordering::Relaxed);
    let advances = store.context().advance_calls() - advances_before;
    RunResult {
        ops_per_sec: total as f64 / elapsed,
        advances_per_op: advances as f64 / total.max(1) as f64,
        ops_per_group: 1.0,
    }
}

/// Outstanding batch tickets each ingest worker keeps in flight (the
/// pipeline depth; the window sweep sizes the batches themselves).
const PIPELINE: usize = 4;

/// Grouped path: workers submit the same puts through the ingest
/// front-end as `window`-sized batch submissions, [`PIPELINE`] tickets in
/// flight each.
fn run_ingest<S>(
    threads: usize,
    dur: Duration,
    window: usize,
    committers: usize,
    shards: usize,
) -> RunResult
where
    S: ShardBackend<u64, u64> + Send + Sync + 'static,
{
    let store = Arc::new(BundledStore::<u64, u64, S>::new(
        threads + committers,
        uniform_splits(shards, KEY_RANGE),
    ));
    {
        let h = store.register();
        for k in (0..KEY_RANGE).step_by(2) {
            h.insert(k, k);
        }
    }
    let ingest = Arc::new(Ingest::spawn(
        Arc::clone(&store),
        IngestConfig {
            committers,
            ..IngestConfig::default()
        },
    ));
    let advances_before = store.context().advance_calls();
    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..threads)
        .map(|w| {
            let ingest = Arc::clone(&ingest);
            let stop = Arc::clone(&stop);
            let ops = Arc::clone(&ops);
            std::thread::spawn(move || {
                let mut seed = (w as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15);
                let mut local = 0u64;
                let mut pending = std::collections::VecDeque::with_capacity(PIPELINE);
                while !stop.load(Ordering::Relaxed) {
                    let batch: Vec<TxnOp<u64, u64>> = (0..window)
                        .map(|_| {
                            let k = xorshift(&mut seed) % KEY_RANGE;
                            TxnOp::Put(k, k)
                        })
                        .collect();
                    pending.push_back(ingest.submit_batch(batch));
                    if pending.len() >= PIPELINE {
                        let outcome = pending.pop_front().expect("pipeline non-empty").wait();
                        local += outcome.applied.len() as u64;
                    }
                }
                for ticket in pending {
                    local += ticket.wait().applied.len() as u64;
                }
                ops.fetch_add(local, Ordering::Relaxed);
            })
        })
        .collect();
    let start = Instant::now();
    std::thread::sleep(dur);
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("ingest worker panicked");
    }
    let elapsed = start.elapsed().as_secs_f64();
    ingest.flush();
    let total = ops.load(Ordering::Relaxed);
    let advances = store.context().advance_calls() - advances_before;
    let stats = ingest.stats();
    ingest.shutdown();
    RunResult {
        ops_per_sec: total as f64 / elapsed,
        advances_per_op: advances as f64 / total.max(1) as f64,
        ops_per_group: stats.ops_per_group(),
    }
}

fn sweep(kind: StructureKind, records: &mut Vec<RunRecord>) {
    let shards = shard_count();
    let dur = Duration::from_millis(duration_ms());
    let windows = windows();
    for &threads in &thread_counts() {
        let committers = committer_count(shards);
        let (direct, ingest_runs): (RunResult, Vec<(usize, RunResult)>) = match kind {
            StructureKind::StoreSkipList => run_kind::<skiplist::BundledSkipList<u64, u64>>(
                threads, dur, &windows, committers, shards,
            ),
            StructureKind::StoreCitrus => run_kind::<citrus::BundledCitrusTree<u64, u64>>(
                threads, dur, &windows, committers, shards,
            ),
            StructureKind::StoreList => run_kind::<lazylist::BundledLazyList<u64, u64>>(
                threads, dur, &windows, committers, shards,
            ),
            other => panic!("{other:?} is not a sharded store kind"),
        };
        let mut points = vec![Point {
            series: "direct ops/s".into(),
            x: threads.to_string(),
            y: direct.ops_per_sec,
        }];
        for (window, r) in &ingest_runs {
            points.push(Point {
                series: format!("ingest w={window} ops/s"),
                x: threads.to_string(),
                y: r.ops_per_sec,
            });
            let speedup = r.ops_per_sec / direct.ops_per_sec.max(1.0);
            records.push(RunRecord {
                bench: "store_ingest".into(),
                kind: kind.name().into(),
                mix: format!("win-{window}"),
                threads,
                metrics: vec![
                    ("ops_per_sec".into(), r.ops_per_sec),
                    ("direct_ops_per_sec".into(), direct.ops_per_sec),
                    ("speedup".into(), speedup),
                    ("advances_per_op".into(), r.advances_per_op),
                    ("direct_advances_per_op".into(), direct.advances_per_op),
                    ("ops_per_group".into(), r.ops_per_group),
                    ("committers".into(), committers as f64),
                ],
            });
        }
        let title = format!(
            "store_ingest [{}] put firehose, {shards} shards, {committers} committers, \
             {threads} threads",
            kind.name()
        );
        print_series_table(&title, "threads", "puts per second", &points);
        for (window, r) in &ingest_runs {
            println!(
                "  w={window}: {:.3}x direct, {:.4} clock advances/op (direct {:.4}), \
                 {:.1} ops/group",
                r.ops_per_sec / direct.ops_per_sec.max(1.0),
                r.advances_per_op,
                direct.advances_per_op,
                r.ops_per_group,
            );
        }
        write_csv(
            &format!("store_ingest_{}_{threads}t", kind.name()),
            "threads",
            "per_sec",
            &points,
        );
    }
}

fn run_kind<S>(
    threads: usize,
    dur: Duration,
    windows: &[usize],
    committers: usize,
    shards: usize,
) -> (RunResult, Vec<(usize, RunResult)>)
where
    S: ShardBackend<u64, u64> + Send + Sync + 'static,
{
    let direct = run_direct::<S>(threads, dur, shards);
    let ingest_runs = windows
        .iter()
        .map(|&w| (w, run_ingest::<S>(threads, dur, w, committers, shards)))
        .collect();
    (direct, ingest_runs)
}

/// Ops per group in the staging panel (the `--check-staging` gate runs
/// at this size, matching the issue's acceptance criterion).
const STAGING_GROUP: usize = 1024;

/// Measured rounds of the staging panel (plus one warmup); each path
/// reports its best round, de-noising the single-shot measurement.
const STAGING_ROUNDS: usize = 4;

/// Nanoseconds per staged op for the hinted (cursor) and unhinted
/// (point-descent) pipelines on identical key-sorted groups.
struct StagingResult {
    hinted_ns: f64,
    unhinted_ns: f64,
}

/// The staging panel: one single-threaded store per backend, odd keys
/// prefilled (shuffled insertion order for the Citrus tree so it is not
/// a degenerate spine; descending for the lists, whose prefill cost is
/// position-dependent). Each round commits a **contiguous window** of
/// [`STAGING_GROUP`] fresh even keys in ascending order — the shape
/// sequential ingest produces (auto-increment ids, time-ordered keys,
/// the NEW_ORDER firehose), and the regime the cursor exists for: after
/// the first op locates the window, every later seek is a short warm
/// forward walk, while the point path re-descends from the root through
/// the whole structure per op. The window then drains again through
/// removes, so put+remove pairs keep the structure at its baseline
/// between measurements and both paths see identical state; only the
/// `apply_grouped*` calls are timed, and bundle cleanup runs between
/// rounds.
fn run_staging<S>(shards: usize, shuffle: bool) -> StagingResult
where
    S: ShardBackend<u64, u64> + Send + Sync + 'static,
{
    let store = Arc::new(BundledStore::<u64, u64, S>::new(
        2,
        uniform_splits(shards, KEY_RANGE),
    ));
    let h = store.register();
    let mut prefill: Vec<u64> = (1..KEY_RANGE).step_by(2).collect();
    if shuffle {
        let mut seed = 0x9e3779b97f4a7c15u64;
        for i in (1..prefill.len()).rev() {
            prefill.swap(i, (xorshift(&mut seed) % (i as u64 + 1)) as usize);
        }
    } else {
        prefill.reverse();
    }
    for k in prefill {
        h.insert(k, k);
    }
    // Contiguous even slots per window; rounds rotate the window origin
    // so every measured window stages fresh keys into a clean region.
    let span = (STAGING_GROUP as u64) * 2;
    type OpVec = Vec<TxnOp<u64, u64>>;
    let window = |round: u64| -> (OpVec, OpVec) {
        let start = ((round * span * 7) % (KEY_RANGE - span)) & !1;
        let keys: Vec<u64> = (0..STAGING_GROUP as u64).map(|i| start + 2 * i).collect();
        let puts = keys.iter().map(|&k| TxnOp::Put(k, k)).collect();
        let removes = keys.iter().map(|&k| TxnOp::Remove(k)).collect();
        (puts, removes)
    };
    let mut hinted_ns = f64::INFINITY;
    let mut unhinted_ns = f64::INFINITY;
    for round in 0..=(STAGING_ROUNDS as u64) {
        let (puts, removes) = window(round);
        // Alternate which path touches the round's window first, so
        // neither side systematically inherits the other's warm caches.
        let measure = |hinted: bool| -> Duration {
            let t = Instant::now();
            let (applied, removed) = if hinted {
                (h.apply_grouped(&puts), h.apply_grouped(&removes))
            } else {
                (
                    h.apply_grouped_unhinted(&puts),
                    h.apply_grouped_unhinted(&removes),
                )
            };
            let elapsed = t.elapsed();
            assert!(
                applied.applied.iter().all(|b| *b) && removed.applied.iter().all(|b| *b),
                "staging window keys must be fresh"
            );
            elapsed
        };
        let (hinted, unhinted) = if round % 2 == 0 {
            let a = measure(true);
            let b = measure(false);
            (a, b)
        } else {
            let b = measure(false);
            let a = measure(true);
            (a, b)
        };
        store.cleanup_bundles(1);
        if round == 0 {
            continue; // warmup
        }
        let per_op = |d: Duration| d.as_nanos() as f64 / (2 * STAGING_GROUP) as f64;
        hinted_ns = hinted_ns.min(per_op(hinted));
        unhinted_ns = unhinted_ns.min(per_op(unhinted));
    }
    StagingResult {
        hinted_ns,
        unhinted_ns,
    }
}

/// Run and report the staging panel for `kind`; returns `false` when the
/// hinted path failed to beat the unhinted path (the `--check-staging`
/// regression signal).
fn staging_panel(kind: StructureKind, records: &mut Vec<RunRecord>) -> bool {
    let shards = shard_count();
    let r = match kind {
        StructureKind::StoreSkipList => {
            run_staging::<skiplist::BundledSkipList<u64, u64>>(shards, false)
        }
        StructureKind::StoreCitrus => {
            run_staging::<citrus::BundledCitrusTree<u64, u64>>(shards, true)
        }
        StructureKind::StoreList => {
            run_staging::<lazylist::BundledLazyList<u64, u64>>(shards, false)
        }
        other => panic!("{other:?} is not a sharded store kind"),
    };
    let speedup = r.unhinted_ns / r.hinted_ns.max(1.0);
    println!(
        "store_ingest [{}] staging panel, {shards} shards, {STAGING_GROUP}-op sorted groups:\n  \
         hinted (cursor) {:.1} ns/op, unhinted (point descents) {:.1} ns/op — {:.2}x",
        kind.name(),
        r.hinted_ns,
        r.unhinted_ns,
        speedup,
    );
    records.push(RunRecord {
        bench: "store_ingest".into(),
        kind: kind.name().into(),
        mix: format!("staging-{STAGING_GROUP}"),
        threads: 1,
        metrics: vec![
            ("staging_ns_per_op_hinted".into(), r.hinted_ns),
            ("staging_ns_per_op_unhinted".into(), r.unhinted_ns),
            ("staging_speedup".into(), speedup),
            ("group_size".into(), STAGING_GROUP as f64),
        ],
    });
    let ok = r.hinted_ns <= r.unhinted_ns;
    if !ok {
        eprintln!(
            "STAGING REGRESSION [{}]: hinted {:.1} ns/op is slower than unhinted {:.1} ns/op",
            kind.name(),
            r.hinted_ns,
            r.unhinted_ns,
        );
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kind_arg: Option<String> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut check_staging = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                json_path = args.get(i + 1).map(PathBuf::from);
                if json_path.is_none() {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--check-staging" => {
                check_staging = true;
                i += 1;
            }
            other => {
                kind_arg = Some(other.to_string());
                i += 1;
            }
        }
    }

    let kinds: Vec<StructureKind> = match kind_arg.as_deref() {
        None => TXN_STORE_KINDS.to_vec(),
        Some(name) => match StructureKind::parse(name) {
            Some(kind) if kind.is_store() => vec![kind],
            _ => {
                eprintln!(
                    "unknown store kind {name:?}; expected one of: {}",
                    TXN_STORE_KINDS.map(|k| k.name()).join(", ")
                );
                std::process::exit(2);
            }
        },
    };
    let mut records = Vec::new();
    let mut staging_ok = true;
    for kind in kinds {
        sweep(kind, &mut records);
        staging_ok &= staging_panel(kind, &mut records);
    }
    if let Some(path) = json_path {
        match write_json(&path, &records) {
            Ok(()) => println!(
                "\nwrote {} run records to {}",
                records.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if check_staging && !staging_ok {
        eprintln!("--check-staging: hinted cursor staging regressed below the unhinted path");
        std::process::exit(1);
    }
}
