//! Group-commit ingestion scenario: grouped-put throughput of the
//! `ingest` front-end versus the per-op `apply_txn` put path, for every
//! store backend, with a submission-window (batch-size) sweep.
//!
//! Two configurations run per (backend, thread count):
//!
//! * **direct** — each worker commits one `TxnOp::Put` per `apply_txn`
//!   call: one clock advance and one intent round per operation (the
//!   pre-ingest baseline; exactly 1.0 clock advances per op).
//! * **ingest** — workers submit the same puts to the group-commit
//!   front-end in pipelined windows of `W` tickets
//!   (`Ingest::submit_all`, then wait), for each `W` in the window
//!   sweep. Committer threads coalesce everything that accumulates into
//!   super-batches published under **one clock advance per group**.
//!
//! The table reports resolved operations/s for both paths, the
//! ingest/direct speedup, measured **clock advances per op** (from
//! [`bundle::RqContext::advance_calls`] — amortization is measured, not
//! assumed), and the mean group size. `--json` additionally writes one
//! machine-readable record per configuration.
//!
//! A third **overhead panel** prices the observability layer: three
//! identical single-threaded stores — one built plain (instrumentation
//! disabled, the production default), one built over a live
//! `obs::MetricsRegistry` with the flight recorder off (metrics only),
//! one fully traced (metrics + flight recorder) — commit identical
//! key-sorted groups of [`OVERHEAD_GROUP`] ops through `apply_grouped`,
//! reporting `staging_ns_per_op` for each. `--check-obs-overhead` exits
//! non-zero if the metrics-only store regresses more than
//! [`OVERHEAD_LIMIT`] or the traced store more than
//! [`TRACE_OVERHEAD_LIMIT`] over the plain one on any backend — and
//! since the plain store *is* the disabled mode (every record site one
//! never-taken branch), the gate bounds the disabled-mode cost from
//! above by the full instrumentation cost.
//!
//! A fourth **submit-path panel** prices the submission queue itself:
//! [`SUBMIT_PRODUCERS`] producer threads hammer non-blocking pushes
//! against a deliberately slow consumer through two implementations of
//! the same bounded queue — the pre-ring `Mutex<VecDeque>` + depth
//! check, and the lock-free [`ingest::ring::MpscRing`] the front-end
//! now uses — reporting `submit_ns_per_op` (mean wall time per push
//! attempt, accepted or shed) for both and their ratio as
//! `submit_speedup`. `--check-submit-path` exits non-zero if the ring
//! path is slower than the locked path (median-of-rounds with one
//! documented retry): the lock-free claim is measured, not assumed.
//!
//! `--obs` additionally builds the ingest-path stores over a live
//! registry, prints the metrics table after the last thread count of
//! each backend (queue depth, group size, linger occupancy, ticket wait
//! latency, plus the whole store pipeline), and merges the flattened
//! `obs.*` metrics into the `--json` records. `--trace <path>` dumps
//! the flight recorder of the last ingest configuration as JSON lines;
//! `--timeseries <ms>` samples every ingest run at the given cadence,
//! prints one JSON line per window, and embeds the windows in the
//! `--json` records — both imply `--obs`. `--serve <addr>` (e.g.
//! `127.0.0.1:0`) starts the live introspection endpoint (`/metrics`
//! Prometheus text, `/snapshot.json`, `/windows.json`,
//! `/anomalies.json`, `/health.json`) and prints
//! `serving on <bound addr>`; `--slo <spec>` attaches an
//! `obs::HealthMonitor` to the sampler and embeds its findings in the
//! `--json` records (`health` array). Both imply `--obs`, and `--slo`
//! defaults `--timeseries` to 100 ms when unset.
//!
//! Usage:
//! `cargo run --release -p workloads --bin store_ingest -- [store-skiplist|store-citrus|store-list] [--json <path>] [--obs] [--trace <path>] [--timeseries <ms>] [--serve <addr>] [--slo <spec>] [--check-obs-overhead] [--check-submit-path]`
//! (default: all three backends). Thread counts come from
//! `BUNDLE_THREADS`, duration from `BUNDLE_DURATION_MS`, shard count from
//! `BUNDLE_SHARDS`, the window sweep from `BUNDLE_INGEST_WINDOWS`
//! (comma-separated, default "1,16,64,256" — from latency-oriented
//! trickle to throughput-oriented firehose) and the committer-thread
//! count from `BUNDLE_INGEST_COMMITTERS` (default: half the machine's
//! available parallelism, clamped to [1, shards] — a committer beyond
//! the shard count would own no submission queue).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ingest::{Ingest, IngestConfig};
use store::{uniform_splits, BundledStore, ShardBackend, TxnOp};
use workloads::{
    duration_ms, print_series_table, thread_counts, write_csv, write_json, Point, RunRecord,
    StructureKind, DEFAULT_STORE_SHARDS, SCHEMA_VERSION, TXN_STORE_KINDS,
};

/// Keyspace (half prefilled, like every harness scenario).
const KEY_RANGE: u64 = 100_000;

fn shard_count() -> usize {
    std::env::var("BUNDLE_SHARDS")
        .ok()
        .and_then(|s| s.split(',').next().and_then(|t| t.trim().parse().ok()))
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_STORE_SHARDS)
}

/// Pipelined submission windows to sweep (tickets in flight per worker).
fn windows() -> Vec<usize> {
    std::env::var("BUNDLE_INGEST_WINDOWS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect::<Vec<_>>()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 16, 64, 256])
}

/// Committers compete with producers for cores, so default to half the
/// *machine's* parallelism (not the producer count): on a small box one
/// committer drains everything and forms the biggest groups, on a big one
/// several committers keep the prepare work parallel across shards.
fn committer_count(shards: usize) -> usize {
    std::env::var("BUNDLE_INGEST_COMMITTERS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get() / 2)
                .unwrap_or(1)
                .max(1)
        })
        .clamp(1, shards)
}

fn xorshift(seed: &mut u64) -> u64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    *seed
}

struct RunResult {
    ops_per_sec: f64,
    advances_per_op: f64,
    ops_per_group: f64,
}

/// Baseline: every put is its own `apply_txn` commit (one clock advance
/// and one intent round per op).
fn run_direct<S>(threads: usize, dur: Duration, shards: usize) -> RunResult
where
    S: ShardBackend<u64, u64> + Send + Sync + 'static,
{
    let store = Arc::new(BundledStore::<u64, u64, S>::new(
        threads,
        uniform_splits(shards, KEY_RANGE),
    ));
    {
        let h = store.register();
        for k in (0..KEY_RANGE).step_by(2) {
            h.insert(k, k);
        }
    }
    let advances_before = store.context().advance_calls();
    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..threads)
        .map(|w| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let ops = Arc::clone(&ops);
            std::thread::spawn(move || {
                let handle = store.register();
                let mut seed = (w as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15);
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = xorshift(&mut seed) % KEY_RANGE;
                    let _ = handle.apply_txn(&[TxnOp::Put(k, k)]);
                    local += 1;
                }
                ops.fetch_add(local, Ordering::Relaxed);
            })
        })
        .collect();
    let start = Instant::now();
    std::thread::sleep(dur);
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("direct worker panicked");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let total = ops.load(Ordering::Relaxed);
    let advances = store.context().advance_calls() - advances_before;
    RunResult {
        ops_per_sec: total as f64 / elapsed,
        advances_per_op: advances as f64 / total.max(1) as f64,
        ops_per_group: 1.0,
    }
}

/// Outstanding batch tickets each ingest worker keeps in flight (the
/// pipeline depth; the window sweep sizes the batches themselves).
const PIPELINE: usize = 4;

/// Everything one ingest configuration produced.
struct IngestRun {
    result: RunResult,
    snapshot: Option<obs::MetricsSnapshot>,
    windows: Vec<obs::Window>,
    health: Vec<obs::health::Finding>,
    trace: Option<Arc<obs::TraceRecorder>>,
}

/// Grouped path: workers submit the same puts through the ingest
/// front-end as `window`-sized batch submissions, [`PIPELINE`] tickets in
/// flight each.
#[allow(clippy::too_many_arguments)]
fn run_ingest<S>(
    threads: usize,
    dur: Duration,
    window: usize,
    committers: usize,
    shards: usize,
    with_obs: bool,
    timeseries: Option<Duration>,
    slo: Option<&obs::SloPolicy>,
    server: Option<&obs::ExportServer>,
    kind_name: &str,
) -> IngestRun
where
    S: ShardBackend<u64, u64> + Send + Sync + 'static,
{
    let splits = uniform_splits(shards, KEY_RANGE);
    // One extra registered slot each for the time-series sampler's
    // dedicated session when sampling and the export server's snapshot
    // closure when serving (scrapes serialize on the server's sources
    // mutex, so one registered handle is race-free).
    let serving = server.is_some() && with_obs;
    let slots = threads + committers + usize::from(timeseries.is_some()) + usize::from(serving);
    let store = Arc::new(if with_obs {
        BundledStore::<u64, u64, S>::with_obs(
            slots,
            store::ReclaimMode::Reclaim,
            splits,
            &obs::MetricsRegistry::new(),
        )
    } else {
        BundledStore::<u64, u64, S>::new(slots, splits)
    });
    // The health monitor consumes each sampling window as it closes.
    let monitor = slo.and_then(|policy| {
        store.obs_registry().map(|registry| {
            Arc::new(obs::HealthMonitor::new(
                policy.clone(),
                registry,
                store.obs_trace().cloned(),
            ))
        })
    });
    // Spawn the sampler before the prefill so its base snapshot sees zero
    // counters and the window deltas sum to the final counter values. The
    // registered handle gives the sampler thread its own dense tid.
    let sampler = timeseries.filter(|_| with_obs).map(|every| {
        let h = store.register();
        let observer = monitor.as_ref().map(|m| {
            let m = Arc::clone(m);
            Box::new(move |w: &obs::Window| {
                let _ = m.observe(w);
            }) as obs::timeseries::WindowObserver
        });
        let dropped = store
            .obs_registry()
            .map(|r| r.gauge("obs.timeseries.dropped_windows"));
        obs::TimeseriesSampler::spawn_with(
            every,
            obs::timeseries::DEFAULT_WINDOW_CAPACITY,
            move || {
                h.store()
                    .obs_snapshot(h.tid())
                    .expect("store built with obs")
            },
            observer,
            dropped,
        )
    });
    // Install this run's sources before the prefill so scrapes answer
    // for the whole run (the last run's sources stay installed after it
    // ends, so post-run scrapes still answer).
    if serving {
        let server = server.expect("serving implies a server");
        let h = store.register();
        let mut sources = obs::ExportSources::new()
            .with_snapshot(move || {
                h.store()
                    .obs_snapshot(h.tid())
                    .expect("store built with obs")
            })
            .with_build_info(vec![
                ("schema".into(), SCHEMA_VERSION.to_string()),
                ("bench".into(), "store_ingest".into()),
                ("backend".into(), kind_name.into()),
                ("durability".into(), "off".into()),
            ]);
        if let Some(s) = &sampler {
            let reader = s.reader();
            sources = sources.with_windows(move || reader.windows());
        }
        if let Some(tr) = store.obs_trace().cloned() {
            sources = sources.with_anomalies(move || tr.anomalies());
        }
        if let Some(m) = &monitor {
            let m = Arc::clone(m);
            sources = sources.with_health(move || m.report().json());
        }
        server.install(sources);
    }
    {
        let h = store.register();
        for k in (0..KEY_RANGE).step_by(2) {
            h.insert(k, k);
        }
    }
    let ingest = Arc::new(Ingest::spawn(
        Arc::clone(&store),
        IngestConfig {
            committers,
            ..IngestConfig::default()
        },
    ));
    let advances_before = store.context().advance_calls();
    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..threads)
        .map(|w| {
            let ingest = Arc::clone(&ingest);
            let stop = Arc::clone(&stop);
            let ops = Arc::clone(&ops);
            std::thread::spawn(move || {
                let mut seed = (w as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15);
                let mut local = 0u64;
                let mut pending = std::collections::VecDeque::with_capacity(PIPELINE);
                while !stop.load(Ordering::Relaxed) {
                    let batch: Vec<TxnOp<u64, u64>> = (0..window)
                        .map(|_| {
                            let k = xorshift(&mut seed) % KEY_RANGE;
                            TxnOp::Put(k, k)
                        })
                        .collect();
                    pending.push_back(ingest.submit_batch(batch));
                    if pending.len() >= PIPELINE {
                        let outcome = pending.pop_front().expect("pipeline non-empty").wait();
                        local += outcome.applied.len() as u64;
                    }
                }
                for ticket in pending {
                    local += ticket.wait().applied.len() as u64;
                }
                ops.fetch_add(local, Ordering::Relaxed);
            })
        })
        .collect();
    let start = Instant::now();
    std::thread::sleep(dur);
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("ingest worker panicked");
    }
    let elapsed = start.elapsed().as_secs_f64();
    ingest.flush();
    let total = ops.load(Ordering::Relaxed);
    let advances = store.context().advance_calls() - advances_before;
    let stats = ingest.stats();
    ingest.shutdown();
    // Every mutator (workers, committers) is quiescent: the sampler's
    // final partial window closes on the same counters the snapshot sees.
    let windows = sampler
        .map(obs::TimeseriesSampler::stop)
        .unwrap_or_default();
    let snapshot = store.obs_snapshot(0);
    IngestRun {
        result: RunResult {
            ops_per_sec: total as f64 / elapsed,
            advances_per_op: advances as f64 / total.max(1) as f64,
            ops_per_group: stats.ops_per_group(),
        },
        snapshot,
        windows,
        health: monitor.map(|m| m.report().findings).unwrap_or_default(),
        trace: store.obs_trace().cloned(),
    }
}

#[allow(clippy::too_many_arguments)]
fn sweep(
    kind: StructureKind,
    with_obs: bool,
    timeseries: Option<Duration>,
    slo: Option<&obs::SloPolicy>,
    server: Option<&obs::ExportServer>,
    records: &mut Vec<RunRecord>,
    last_trace: &mut Option<Arc<obs::TraceRecorder>>,
) {
    let shards = shard_count();
    let dur = Duration::from_millis(duration_ms());
    let windows = windows();
    let mut last_snapshot = None;
    for &threads in &thread_counts() {
        let committers = committer_count(shards);
        let name = kind.name();
        let (direct, ingest_runs): (RunResult, Vec<(usize, IngestRun)>) = match kind {
            StructureKind::StoreSkipList => run_kind::<skiplist::BundledSkipList<u64, u64>>(
                threads, dur, &windows, committers, shards, with_obs, timeseries, slo, server, name,
            ),
            StructureKind::StoreCitrus => run_kind::<citrus::BundledCitrusTree<u64, u64>>(
                threads, dur, &windows, committers, shards, with_obs, timeseries, slo, server, name,
            ),
            StructureKind::StoreList => run_kind::<lazylist::BundledLazyList<u64, u64>>(
                threads, dur, &windows, committers, shards, with_obs, timeseries, slo, server, name,
            ),
            other => panic!("{other:?} is not a sharded store kind"),
        };
        let mut points = vec![Point {
            series: "direct ops/s".into(),
            x: threads.to_string(),
            y: direct.ops_per_sec,
        }];
        for (window, run) in &ingest_runs {
            let r = &run.result;
            for w in &run.windows {
                println!("{}", w.json_line());
            }
            for f in &run.health {
                println!("slo finding: {}", obs::health::finding_json(f));
            }
            if run.trace.is_some() {
                *last_trace = run.trace.clone();
            }
            points.push(Point {
                series: format!("ingest w={window} ops/s"),
                x: threads.to_string(),
                y: r.ops_per_sec,
            });
            let speedup = r.ops_per_sec / direct.ops_per_sec.max(1.0);
            let mut metrics = vec![
                ("ops_per_sec".into(), r.ops_per_sec),
                ("direct_ops_per_sec".into(), direct.ops_per_sec),
                ("speedup".into(), speedup),
                ("advances_per_op".into(), r.advances_per_op),
                ("direct_advances_per_op".into(), direct.advances_per_op),
                ("ops_per_group".into(), r.ops_per_group),
                ("committers".into(), committers as f64),
            ];
            if let Some(snap) = &run.snapshot {
                metrics.extend(snap.flatten("obs."));
                last_snapshot = Some(snap.clone());
            }
            records.push(RunRecord {
                schema: SCHEMA_VERSION,
                bench: "store_ingest".into(),
                kind: kind.name().into(),
                mix: format!("win-{window}"),
                threads,
                durability: "off".into(),
                metrics,
                windows: run.windows.iter().map(obs::Window::flatten).collect(),
                health: run.health.clone(),
            });
        }
        let title = format!(
            "store_ingest [{}] put firehose, {shards} shards, {committers} committers, \
             {threads} threads",
            kind.name()
        );
        print_series_table(&title, "threads", "puts per second", &points);
        for (window, run) in &ingest_runs {
            let r = &run.result;
            println!(
                "  w={window}: {:.3}x direct, {:.4} clock advances/op (direct {:.4}), \
                 {:.1} ops/group",
                r.ops_per_sec / direct.ops_per_sec.max(1.0),
                r.advances_per_op,
                direct.advances_per_op,
                r.ops_per_group,
            );
        }
        write_csv(
            &format!("store_ingest_{}_{threads}t", kind.name()),
            "threads",
            "per_sec",
            &points,
        );
    }
    if let Some(snap) = last_snapshot {
        println!(
            "\n-- obs [{}] (last configuration) --\n{}",
            kind.name(),
            snap.render_table()
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn run_kind<S>(
    threads: usize,
    dur: Duration,
    windows: &[usize],
    committers: usize,
    shards: usize,
    with_obs: bool,
    timeseries: Option<Duration>,
    slo: Option<&obs::SloPolicy>,
    server: Option<&obs::ExportServer>,
    kind_name: &str,
) -> (RunResult, Vec<(usize, IngestRun)>)
where
    S: ShardBackend<u64, u64> + Send + Sync + 'static,
{
    let direct = run_direct::<S>(threads, dur, shards);
    let ingest_runs = windows
        .iter()
        .map(|&w| {
            (
                w,
                run_ingest::<S>(
                    threads, dur, w, committers, shards, with_obs, timeseries, slo, server,
                    kind_name,
                ),
            )
        })
        .collect();
    (direct, ingest_runs)
}

/// Ops per group in the overhead panel (the `--check-obs-overhead` gate
/// runs at this size, matching the issue's acceptance criterion).
const OVERHEAD_GROUP: usize = 1024;

/// Measured rounds of the overhead panel (plus one warmup); the gate
/// takes the **median** round's ratios, so a minority of noisy rounds
/// (a scheduler hiccup, a page fault storm) cannot fail or pass the
/// gate on its own.
const OVERHEAD_ROUNDS: usize = 6;

/// Maximum tolerated `metrics-enabled / disabled` staging-cost ratio
/// (5%).
const OVERHEAD_LIMIT: f64 = 1.05;

/// Maximum tolerated `traced / disabled` staging-cost ratio (10%): the
/// flight recorder adds one seqlock ring write per pipeline stage on
/// top of the metric records.
const TRACE_OVERHEAD_LIMIT: f64 = 1.10;

/// Nanoseconds per staged op and median ratios for the three
/// instrumentation tiers of the overhead panel.
struct OverheadResult {
    disabled_ns: f64,
    enabled_ns: f64,
    traced_ns: f64,
    /// Median per-round `enabled / disabled` ratio.
    metrics_ratio: f64,
    /// Median per-round `traced / disabled` ratio.
    traced_ratio: f64,
}

/// Upper median of an unsorted sample (total order via `f64::total_cmp`;
/// the panel never produces NaN — durations are finite and the disabled
/// denominator is clamped to ≥ 1 ns).
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// The obs overhead panel: three identical single-threaded stores — one
/// built plain (instrumentation **disabled**: the `obs` slot is `None`
/// and every record site is one never-taken branch, the production
/// default), one **metrics-only** (a live `obs::MetricsRegistry` with
/// the flight recorder off: stage timestamps, histogram records,
/// counter adds all active), one fully **traced** (metrics plus one
/// ring write per pipeline stage) — each commit identical key-sorted
/// [`OVERHEAD_GROUP`]-op windows through the grouped pipeline. Odd keys
/// are prefilled (shuffled insertion order for the Citrus tree so it is
/// not a degenerate spine; descending for the lists); each round stages
/// a contiguous window of fresh even keys in ascending order and then
/// drains it again through removes, so all stores stay at baseline size
/// and see identical state. Only the `apply_grouped` calls are timed.
/// Each round runs every store four times in two mirrored passes (d,
/// m, t, t, m, d — then flipped) and pairs the round-local minima, so a
/// machine-load spike hits both sides of a ratio or neither; the gate
/// takes the **median** round's ratios. The metrics/disabled gap is the
/// full metric-instrumentation cost, which bounds the disabled-mode
/// cost (the never-taken branches) from above — so the
/// `--check-obs-overhead` gates `metrics <= OVERHEAD_LIMIT * disabled`
/// and `traced <= TRACE_OVERHEAD_LIMIT * disabled` pin the whole layer.
fn run_overhead<S>(shards: usize, shuffle: bool) -> OverheadResult
where
    S: ShardBackend<u64, u64> + Send + Sync + 'static,
{
    let disabled = Arc::new(BundledStore::<u64, u64, S>::new(
        2,
        uniform_splits(shards, KEY_RANGE),
    ));
    // Metrics without the flight recorder: trace capacity 0.
    let metrics_only = Arc::new(BundledStore::<u64, u64, S>::with_obs_trace_capacity(
        2,
        store::ReclaimMode::Reclaim,
        uniform_splits(shards, KEY_RANGE),
        &obs::MetricsRegistry::new(),
        0,
    ));
    let traced = Arc::new(BundledStore::<u64, u64, S>::with_obs(
        2,
        store::ReclaimMode::Reclaim,
        uniform_splits(shards, KEY_RANGE),
        &obs::MetricsRegistry::new(),
    ));
    let mut prefill: Vec<u64> = (1..KEY_RANGE).step_by(2).collect();
    if shuffle {
        let mut seed = 0x9e3779b97f4a7c15u64;
        for i in (1..prefill.len()).rev() {
            prefill.swap(i, (xorshift(&mut seed) % (i as u64 + 1)) as usize);
        }
    } else {
        prefill.reverse();
    }
    let hd = disabled.register();
    let hm = metrics_only.register();
    let ht = traced.register();
    for &k in &prefill {
        hd.insert(k, k);
        hm.insert(k, k);
        ht.insert(k, k);
    }
    // Contiguous even slots per window; rounds rotate the window origin
    // so every measured window stages fresh keys into a clean region.
    let span = (OVERHEAD_GROUP as u64) * 2;
    type OpVec = Vec<TxnOp<u64, u64>>;
    let window = |round: u64| -> (OpVec, OpVec) {
        let start = ((round * span * 7) % (KEY_RANGE - span)) & !1;
        let keys: Vec<u64> = (0..OVERHEAD_GROUP as u64).map(|i| start + 2 * i).collect();
        let puts = keys.iter().map(|&k| TxnOp::Put(k, k)).collect();
        let removes = keys.iter().map(|&k| TxnOp::Remove(k)).collect();
        (puts, removes)
    };
    let mut rounds: Vec<(f64, f64, f64)> = Vec::with_capacity(OVERHEAD_ROUNDS);
    for round in 0..=(OVERHEAD_ROUNDS as u64) {
        let (puts, removes) = window(round);
        // A window stages fresh keys and then drains them, so one store
        // can measure it repeatedly; mirrored order within a round means
        // no side systematically inherits the others' warm caches or
        // eats a load spike alone.
        let measure = |h: &store::StoreHandle<u64, u64, S>| -> Duration {
            let t = Instant::now();
            let applied = h.apply_grouped(&puts);
            let removed = h.apply_grouped(&removes);
            let elapsed = t.elapsed();
            assert!(
                applied.applied.iter().all(|b| *b) && removed.applied.iter().all(|b| *b),
                "overhead window keys must be fresh"
            );
            elapsed
        };
        let (mut d, mut m, mut t) = (Duration::MAX, Duration::MAX, Duration::MAX);
        for pass in 0..2u64 {
            if (round + pass) % 2 == 0 {
                d = d.min(measure(&hd));
                m = m.min(measure(&hm));
                t = t.min(measure(&ht));
                t = t.min(measure(&ht));
                m = m.min(measure(&hm));
                d = d.min(measure(&hd));
            } else {
                t = t.min(measure(&ht));
                m = m.min(measure(&hm));
                d = d.min(measure(&hd));
                d = d.min(measure(&hd));
                m = m.min(measure(&hm));
                t = t.min(measure(&ht));
            }
        }
        disabled.cleanup_bundles(1);
        metrics_only.cleanup_bundles(1);
        traced.cleanup_bundles(1);
        if round == 0 {
            continue; // warmup
        }
        let per_op = |t: Duration| t.as_nanos() as f64 / (2 * OVERHEAD_GROUP) as f64;
        rounds.push((per_op(d), per_op(m), per_op(t)));
    }
    OverheadResult {
        disabled_ns: median(rounds.iter().map(|r| r.0).collect()),
        enabled_ns: median(rounds.iter().map(|r| r.1).collect()),
        traced_ns: median(rounds.iter().map(|r| r.2).collect()),
        metrics_ratio: median(rounds.iter().map(|r| r.1 / r.0.max(1.0)).collect()),
        traced_ratio: median(rounds.iter().map(|r| r.2 / r.0.max(1.0)).collect()),
    }
}

/// Run and report the overhead panel for `kind`; returns `false` when
/// the metrics-only store regressed past [`OVERHEAD_LIMIT`] or the
/// traced store past [`TRACE_OVERHEAD_LIMIT`] (the
/// `--check-obs-overhead` regression signal).
///
/// A failed first attempt is retried once with fresh stores: on a
/// one-core CI box a background hiccup (image pulls, log shipping) can
/// poison a majority of rounds, which the per-run median cannot absorb
/// — but it rarely spans two full panels, while a real regression fails
/// both. The retried result is the one reported and gated.
fn overhead_panel(kind: StructureKind, records: &mut Vec<RunRecord>) -> bool {
    let shards = shard_count();
    let run = || match kind {
        StructureKind::StoreSkipList => {
            run_overhead::<skiplist::BundledSkipList<u64, u64>>(shards, false)
        }
        StructureKind::StoreCitrus => {
            run_overhead::<citrus::BundledCitrusTree<u64, u64>>(shards, true)
        }
        StructureKind::StoreList => {
            run_overhead::<lazylist::BundledLazyList<u64, u64>>(shards, false)
        }
        other => panic!("{other:?} is not a sharded store kind"),
    };
    let gate = |r: &OverheadResult| {
        r.metrics_ratio <= OVERHEAD_LIMIT && r.traced_ratio <= TRACE_OVERHEAD_LIMIT
    };
    let mut r = run();
    if !gate(&r) {
        eprintln!(
            "obs overhead panel [{}] over budget ({:.3}x metrics / {:.3}x traced); \
             retrying once with fresh stores",
            kind.name(),
            r.metrics_ratio,
            r.traced_ratio,
        );
        r = run();
    }
    println!(
        "store_ingest [{}] obs overhead panel, {shards} shards, {OVERHEAD_GROUP}-op sorted \
         groups:\n  \
         obs disabled {:.1} ns/op, metrics {:.1} ns/op — {:.3}x (limit {OVERHEAD_LIMIT}x), \
         traced {:.1} ns/op — {:.3}x (limit {TRACE_OVERHEAD_LIMIT}x)",
        kind.name(),
        r.disabled_ns,
        r.enabled_ns,
        r.metrics_ratio,
        r.traced_ns,
        r.traced_ratio,
    );
    records.push(RunRecord {
        schema: SCHEMA_VERSION,
        bench: "store_ingest".into(),
        kind: kind.name().into(),
        mix: format!("obs-overhead-{OVERHEAD_GROUP}"),
        threads: 1,
        durability: "off".into(),
        metrics: vec![
            ("staging_ns_per_op_disabled".into(), r.disabled_ns),
            ("staging_ns_per_op_enabled".into(), r.enabled_ns),
            ("staging_ns_per_op_traced".into(), r.traced_ns),
            ("obs_overhead_ratio".into(), r.metrics_ratio),
            ("obs_trace_overhead_ratio".into(), r.traced_ratio),
            ("group_size".into(), OVERHEAD_GROUP as f64),
        ],
        windows: Vec::new(),
        health: Vec::new(),
    });
    let ok = gate(&r);
    if !ok {
        eprintln!(
            "OBS OVERHEAD REGRESSION [{}]: metrics {:.1} ns/op at {:.3}x (limit \
             {OVERHEAD_LIMIT}x), traced {:.1} ns/op at {:.3}x (limit {TRACE_OVERHEAD_LIMIT}x) \
             over disabled {:.1} ns/op",
            kind.name(),
            r.enabled_ns,
            r.metrics_ratio,
            r.traced_ns,
            r.traced_ratio,
            r.disabled_ns,
        );
    }
    ok
}

/// Producer threads of the submit-path panel (the issue's acceptance
/// criterion gates the ring at this fan-in).
const SUBMIT_PRODUCERS: usize = 8;

/// Depth bound of both queues under test — deep enough that accepts
/// happen, shallow enough that the slow consumer keeps the queues mostly
/// full (the shed path is the contended one).
const SUBMIT_BOUND: usize = 64;

/// Push attempts per producer per measured round.
const SUBMIT_ATTEMPTS: u64 = 30_000;

/// Measured rounds (plus one warmup); the gate takes the median round,
/// so a minority of noisy rounds cannot fail or pass it alone.
const SUBMIT_ROUNDS: usize = 5;

/// Spin iterations the consumer burns per popped value — the
/// "deliberately slow committer" that keeps the queues saturated.
const SUBMIT_CONSUMER_SPINS: u32 = 128;

/// The `--check-submit-path` floor: the ring must be at least this many
/// times the locked path (1.0 = no regression; the point of the panel
/// is that the measured ratio lands in the JSON artifact either way).
const SUBMIT_SPEEDUP_FLOOR: f64 = 1.0;

/// The submit-path panel's queue contract: multi-producer non-blocking
/// push, single-consumer pop (the harness dedicates one consumer
/// thread, mirroring the committer's shard ownership).
trait SubmitQueue: Send + Sync + 'static {
    /// Push, or report full (the value itself is irrelevant here — the
    /// panel times the attempt, not the payload).
    fn try_push(&self, v: u64) -> bool;
    /// Pop the oldest value; called only from the single consumer.
    fn pop_one(&self) -> Option<u64>;
}

/// The pre-ring submission queue shape: one mutex guarding a `VecDeque`
/// plus a depth check — what every producer used to serialize on.
struct LockedQueue {
    q: std::sync::Mutex<std::collections::VecDeque<u64>>,
    bound: usize,
}

impl SubmitQueue for LockedQueue {
    fn try_push(&self, v: u64) -> bool {
        let mut q = self.q.lock().expect("submit panel poisoned");
        if q.len() >= self.bound {
            false
        } else {
            q.push_back(v);
            true
        }
    }

    fn pop_one(&self) -> Option<u64> {
        self.q.lock().expect("submit panel poisoned").pop_front()
    }
}

/// The front-end's actual ring. `pop` is `unsafe` with a single-consumer
/// contract; the panel upholds it by popping from exactly one thread.
struct RingQueue(ingest::ring::MpscRing<u64>);

impl SubmitQueue for RingQueue {
    fn try_push(&self, v: u64) -> bool {
        self.0.try_push(v).is_ok()
    }

    fn pop_one(&self) -> Option<u64> {
        // SAFETY: `submit_round` calls `pop_one` from its single
        // consumer thread only.
        unsafe { self.0.pop() }
    }
}

/// One round: [`SUBMIT_PRODUCERS`] threads each fire
/// [`SUBMIT_ATTEMPTS`] back-to-back push attempts at `q` while one slow
/// consumer drains it; returns mean nanoseconds per attempt across all
/// producers (accepted and shed attempts both count — under a saturated
/// queue the shed path *is* the contended submit path).
fn submit_round<Q: SubmitQueue>(q: Arc<Q>) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let consumer = {
        let q = Arc::clone(&q);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || loop {
            match q.pop_one() {
                Some(_) => {
                    for _ in 0..SUBMIT_CONSUMER_SPINS {
                        std::hint::spin_loop();
                    }
                }
                None => {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    std::hint::spin_loop();
                }
            }
        })
    };
    let producers: Vec<_> = (0..SUBMIT_PRODUCERS as u64)
        .map(|p| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut accepted = 0u64;
                let t0 = Instant::now();
                for i in 0..SUBMIT_ATTEMPTS {
                    if q.try_push((p << 32) | i) {
                        accepted += 1;
                    }
                }
                (t0.elapsed(), accepted)
            })
        })
        .collect();
    let mut total_ns = 0.0;
    let mut accepted = 0u64;
    for h in producers {
        let (elapsed, acc) = h.join().expect("submit panel producer panicked");
        total_ns += elapsed.as_nanos() as f64;
        accepted += acc;
    }
    stop.store(true, Ordering::Relaxed);
    consumer.join().expect("submit panel consumer panicked");
    assert!(accepted > 0, "the slow consumer must still accept pushes");
    total_ns / (SUBMIT_PRODUCERS as u64 * SUBMIT_ATTEMPTS) as f64
}

/// Median ns-per-attempt for both queue implementations and their ratio.
struct SubmitPathResult {
    locked_ns: f64,
    ring_ns: f64,
    /// `locked_ns / ring_ns`: > 1 means the ring is faster.
    speedup: f64,
}

fn run_submit_path() -> SubmitPathResult {
    let mut locked = Vec::with_capacity(SUBMIT_ROUNDS);
    let mut ring = Vec::with_capacity(SUBMIT_ROUNDS);
    for round in 0..=SUBMIT_ROUNDS {
        // Alternate the order per round so neither side systematically
        // inherits warm caches or eats a load spike alone; round 0 warms
        // up and is discarded.
        let (l, r) = if round % 2 == 0 {
            let l = submit_round(Arc::new(LockedQueue {
                q: std::sync::Mutex::new(std::collections::VecDeque::new()),
                bound: SUBMIT_BOUND,
            }));
            let r = submit_round(Arc::new(RingQueue(ingest::ring::MpscRing::with_bound(
                SUBMIT_BOUND,
            ))));
            (l, r)
        } else {
            let r = submit_round(Arc::new(RingQueue(ingest::ring::MpscRing::with_bound(
                SUBMIT_BOUND,
            ))));
            let l = submit_round(Arc::new(LockedQueue {
                q: std::sync::Mutex::new(std::collections::VecDeque::new()),
                bound: SUBMIT_BOUND,
            }));
            (l, r)
        };
        if round == 0 {
            continue;
        }
        locked.push(l);
        ring.push(r);
    }
    let locked_ns = median(locked);
    let ring_ns = median(ring);
    SubmitPathResult {
        locked_ns,
        ring_ns,
        speedup: locked_ns / ring_ns.max(1e-9),
    }
}

/// Run and report the submit-path panel; returns `false` when the ring
/// came out slower than the locked baseline (the `--check-submit-path`
/// regression signal). Like the overhead panel, a failed first attempt
/// is retried once with fresh queues — a CI-box hiccup rarely spans two
/// panels, a real regression fails both. The measurement is
/// data-structure-level, so `kind` only labels the record.
fn submit_panel(kind: StructureKind, records: &mut Vec<RunRecord>) -> bool {
    let mut r = run_submit_path();
    if r.speedup < SUBMIT_SPEEDUP_FLOOR {
        eprintln!(
            "submit-path panel [{}] below floor ({:.3}x); retrying once with fresh queues",
            kind.name(),
            r.speedup,
        );
        r = run_submit_path();
    }
    println!(
        "store_ingest [{}] submit-path panel, {SUBMIT_PRODUCERS} producers, bound \
         {SUBMIT_BOUND}:\n  \
         locked Mutex<VecDeque> {:.1} ns/attempt, MPSC ring {:.1} ns/attempt — {:.3}x \
         (floor {SUBMIT_SPEEDUP_FLOOR}x)",
        kind.name(),
        r.locked_ns,
        r.ring_ns,
        r.speedup,
    );
    records.push(RunRecord {
        schema: SCHEMA_VERSION,
        bench: "store_ingest".into(),
        kind: kind.name().into(),
        mix: "submit-path".into(),
        threads: SUBMIT_PRODUCERS,
        durability: "off".into(),
        metrics: vec![
            ("submit_ns_per_op_locked".into(), r.locked_ns),
            ("submit_ns_per_op_ring".into(), r.ring_ns),
            ("submit_speedup".into(), r.speedup),
            ("submit_bound".into(), SUBMIT_BOUND as f64),
            (
                "submit_attempts".into(),
                (SUBMIT_PRODUCERS as u64 * SUBMIT_ATTEMPTS) as f64,
            ),
        ],
        windows: Vec::new(),
        health: Vec::new(),
    });
    let ok = r.speedup >= SUBMIT_SPEEDUP_FLOOR;
    if !ok {
        eprintln!(
            "SUBMIT PATH REGRESSION [{}]: ring {:.1} ns/attempt vs locked {:.1} ns/attempt \
             ({:.3}x, floor {SUBMIT_SPEEDUP_FLOOR}x) at {SUBMIT_PRODUCERS} producers",
            kind.name(),
            r.ring_ns,
            r.locked_ns,
            r.speedup,
        );
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kind_arg: Option<String> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut timeseries: Option<Duration> = None;
    let mut serve_addr: Option<String> = None;
    let mut slo: Option<obs::SloPolicy> = None;
    let mut with_obs = false;
    let mut check_overhead = false;
    let mut check_submit = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--serve" => {
                serve_addr = args.get(i + 1).cloned();
                if serve_addr.is_none() {
                    eprintln!("--serve requires an address (e.g. 127.0.0.1:0)");
                    std::process::exit(2);
                }
                with_obs = true;
                i += 2;
            }
            "--slo" => {
                let Some(spec) = args.get(i + 1) else {
                    eprintln!("--slo requires a spec (key=value,... or \"\" for defaults)");
                    std::process::exit(2);
                };
                match obs::SloPolicy::parse(spec) {
                    Ok(p) => slo = Some(p),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
                with_obs = true;
                i += 2;
            }
            "--json" => {
                json_path = args.get(i + 1).map(PathBuf::from);
                if json_path.is_none() {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--trace" => {
                trace_path = args.get(i + 1).map(PathBuf::from);
                if trace_path.is_none() {
                    eprintln!("--trace requires a path");
                    std::process::exit(2);
                }
                with_obs = true;
                i += 2;
            }
            "--timeseries" => {
                timeseries = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .filter(|&ms| ms > 0)
                    .map(Duration::from_millis);
                if timeseries.is_none() {
                    eprintln!("--timeseries requires a window length in ms");
                    std::process::exit(2);
                }
                with_obs = true;
                i += 2;
            }
            "--obs" => {
                with_obs = true;
                i += 1;
            }
            "--check-obs-overhead" => {
                check_overhead = true;
                i += 1;
            }
            "--check-submit-path" => {
                check_submit = true;
                i += 1;
            }
            other => {
                kind_arg = Some(other.to_string());
                i += 1;
            }
        }
    }

    let kinds: Vec<StructureKind> = match kind_arg.as_deref() {
        None => TXN_STORE_KINDS.to_vec(),
        Some(name) => match StructureKind::parse(name) {
            Some(kind) if kind.is_store() => vec![kind],
            _ => {
                eprintln!(
                    "unknown store kind {name:?}; expected one of: {}",
                    TXN_STORE_KINDS.map(|k| k.name()).join(", ")
                );
                std::process::exit(2);
            }
        },
    };
    // The health monitor consumes sampling windows, so --slo without
    // --timeseries turns sampling on at a 100 ms cadence.
    if slo.is_some() && timeseries.is_none() {
        timeseries = Some(Duration::from_millis(100));
    }
    // One server across every run; each run installs its own sources
    // right after its store is built. The overhead and submit panels run
    // with the server spawned but idle — the `--check-obs-overhead` gate
    // holds with the endpoint up.
    let server = serve_addr.map(|addr| {
        match obs::ExportServer::spawn(addr.as_str(), obs::ExportSources::new()) {
            Ok(s) => {
                println!("serving on {}", s.local_addr());
                s
            }
            Err(e) => {
                eprintln!("--serve {addr}: bind failed: {e}");
                std::process::exit(2);
            }
        }
    });
    let mut records = Vec::new();
    let mut overhead_ok = true;
    let mut submit_ok = true;
    let mut last_trace = None;
    for kind in kinds {
        sweep(
            kind,
            with_obs,
            timeseries,
            slo.as_ref(),
            server.as_ref(),
            &mut records,
            &mut last_trace,
        );
        overhead_ok &= overhead_panel(kind, &mut records);
        submit_ok &= submit_panel(kind, &mut records);
    }
    if let Some(path) = trace_path {
        match workloads::write_trace_dump(&path, last_trace.as_deref()) {
            Ok(lines) => println!("wrote {lines} trace lines to {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = json_path {
        match write_json(&path, &records) {
            Ok(()) => println!(
                "\nwrote {} run records to {}",
                records.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if check_overhead && !overhead_ok {
        eprintln!(
            "--check-obs-overhead: instrumentation cost regressed past the budget \
             (metrics 5%, traced 10%)"
        );
        std::process::exit(1);
    }
    if check_submit && !submit_ok {
        eprintln!(
            "--check-submit-path: the lock-free submission ring came out slower than the \
             locked queue it replaced"
        );
        std::process::exit(1);
    }
}
