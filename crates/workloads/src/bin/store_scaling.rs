//! Sharded-store scenario: throughput of the `BundledStore` as a function
//! of shard count, against the unsharded bundled structure baseline
//! (shards = 1 is the store wrapper around a single structure; `baseline`
//! is the raw structure with no store layer at all).
//!
//! Every configuration keeps the paper's update-heavy `50-40-10` mix plus
//! a pure-scan `0-0-100` mix, so the table shows both where sharding wins
//! (update traffic spread over independent lock domains) and what the
//! cross-shard snapshot machinery costs on scans.
//!
//! Usage: `cargo run --release -p workloads --bin store_scaling [-- skiplist|citrus|list] [--json <path>] [--obs] [--trace <path>] [--timeseries <ms>] [--serve <addr>] [--slo <spec>]`
//! (`--json` writes one machine-readable record per configuration;
//! `--obs` builds the store runs over a live `obs::MetricsRegistry`,
//! prints the metrics table after the last configuration of each mix,
//! and merges the flattened `obs.*` metrics into the `--json` records;
//! `--trace` additionally dumps the flight recorder of the last store
//! configuration as JSON lines — note this scenario drives *primitive*
//! set ops, so the dump only carries events if the run hits a traced
//! path (commit pipeline, conflicts, ingest); an empty dump here is
//! normal, use `store_txn`/`store_ingest` for a populated one;
//! `--timeseries` samples every store run
//! at the given cadence, prints one JSON line per window, and embeds the
//! windows in the `--json` records — both imply `--obs`;
//! `--serve <addr>` starts the live introspection endpoint (`/metrics`
//! Prometheus text, `/snapshot.json`, `/windows.json`,
//! `/anomalies.json`, `/health.json`) and prints
//! `serving on <bound addr>`; `--slo <spec>` attaches an
//! `obs::HealthMonitor` to the sampler and embeds its findings in the
//! `--json` records — both imply `--obs`, and `--slo` defaults
//! `--timeseries` to 100 ms when unset).
//! Thread counts come from `BUNDLE_THREADS`, duration from
//! `BUNDLE_DURATION_MS`, shard counts from `BUNDLE_SHARDS`
//! (comma-separated, default "1,2,4,8,16").

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use workloads::{
    duration_ms, make_obs_store_structure, make_store_structure, make_structure,
    print_series_table, run_workload, thread_counts, write_csv, write_json, Point, RunConfig,
    RunRecord, StructureKind, WorkloadMix, SCHEMA_VERSION,
};

fn shard_counts() -> Vec<usize> {
    std::env::var("BUNDLE_SHARDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect::<Vec<_>>()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8, 16])
}

#[allow(clippy::too_many_arguments)]
fn sweep(
    label: &str,
    store_kind: StructureKind,
    baseline: StructureKind,
    with_obs: bool,
    timeseries: Option<Duration>,
    slo: Option<&obs::SloPolicy>,
    server: Option<&obs::ExportServer>,
    records: &mut Vec<RunRecord>,
) -> Option<Arc<obs::TraceRecorder>> {
    let key_range = store_kind.default_key_range();
    let mut last_trace = None;
    for mix in [WorkloadMix::new(50, 40, 10), WorkloadMix::new(0, 0, 100)] {
        let mut points = Vec::new();
        let mut last_snapshot = None;
        for &threads in &thread_counts() {
            let cfg = RunConfig::new(threads, duration_ms(), key_range, mix);
            // Unsharded structure, no store layer: the reference line.
            let s = make_structure(baseline, threads);
            let t = run_workload(&Arc::clone(&s), &cfg);
            points.push(Point {
                series: "baseline".into(),
                x: threads.to_string(),
                y: t.mops(),
            });
            records.push(RunRecord {
                schema: SCHEMA_VERSION,
                bench: "store_scaling".into(),
                kind: format!("{label}-baseline"),
                mix: mix.label(),
                threads,
                durability: "off".into(),
                metrics: vec![("mops".into(), t.mops())],
                windows: Vec::new(),
                health: Vec::new(),
            });
            for &shards in &shard_counts() {
                let mut metrics = vec![("shards".into(), shards as f64)];
                let mut windows = Vec::new();
                let mut health = Vec::new();
                let t = if with_obs {
                    let registry = obs::MetricsRegistry::new();
                    // Extra reserved slots beyond the workload workers
                    // (tids 0..threads): tid `threads` for the background
                    // sampler when sampling, the next tid for the export
                    // server's snapshot closure when serving (scrapes
                    // serialize on the server's sources mutex, so one
                    // reserved slot is race-free).
                    let serving = server.is_some();
                    let slots = threads + usize::from(timeseries.is_some()) + usize::from(serving);
                    let parts =
                        make_obs_store_structure(store_kind, slots, shards, key_range, &registry);
                    // The health monitor consumes each sampling window as
                    // it closes.
                    let monitor = slo.map(|policy| {
                        Arc::new(obs::HealthMonitor::new(
                            policy.clone(),
                            &registry,
                            parts.trace.clone(),
                        ))
                    });
                    let sampler = timeseries.map(|every| {
                        let observer = monitor.as_ref().map(|m| {
                            let m = Arc::clone(m);
                            Box::new(move |w: &obs::Window| {
                                let _ = m.observe(w);
                            }) as obs::timeseries::WindowObserver
                        });
                        obs::TimeseriesSampler::spawn_with(
                            every,
                            obs::timeseries::DEFAULT_WINDOW_CAPACITY,
                            (parts.timeseries_source)(threads),
                            observer,
                            Some(registry.gauge("obs.timeseries.dropped_windows")),
                        )
                    });
                    // Install this configuration's sources before the run
                    // so scrapes answer while the workload hammers (the
                    // last configuration's sources stay installed after).
                    if let Some(server) = server {
                        let server_tid = threads + usize::from(timeseries.is_some());
                        let snapshot = (parts.timeseries_source)(server_tid);
                        let mut sources = obs::ExportSources::new()
                            .with_snapshot(snapshot)
                            .with_build_info(vec![
                                ("schema".into(), SCHEMA_VERSION.to_string()),
                                ("bench".into(), "store_scaling".into()),
                                ("backend".into(), label.into()),
                                ("durability".into(), "off".into()),
                            ]);
                        if let Some(s) = &sampler {
                            let reader = s.reader();
                            sources = sources.with_windows(move || reader.windows());
                        }
                        if let Some(tr) = parts.trace.clone() {
                            sources = sources.with_anomalies(move || tr.anomalies());
                        }
                        if let Some(m) = &monitor {
                            let m = Arc::clone(m);
                            sources = sources.with_health(move || m.report().json());
                        }
                        server.install(sources);
                    }
                    let t = run_workload(&parts.set, &cfg);
                    if let Some(sampler) = sampler {
                        let ws = sampler.stop();
                        for w in &ws {
                            println!("{}", w.json_line());
                        }
                        windows = ws.iter().map(obs::Window::flatten).collect();
                    }
                    if let Some(m) = monitor {
                        health = m.report().findings;
                        for f in &health {
                            println!("slo finding: {}", obs::health::finding_json(f));
                        }
                    }
                    let snap = (parts.sampler)();
                    metrics.extend(snap.flatten("obs."));
                    last_snapshot = Some(snap);
                    last_trace = parts.trace;
                    t
                } else {
                    let s = make_store_structure(store_kind, threads, shards, key_range);
                    run_workload(&Arc::clone(&s), &cfg)
                };
                points.push(Point {
                    series: format!("{shards}-shard"),
                    x: threads.to_string(),
                    y: t.mops(),
                });
                metrics.push(("mops".into(), t.mops()));
                records.push(RunRecord {
                    schema: SCHEMA_VERSION,
                    bench: "store_scaling".into(),
                    kind: label.into(),
                    mix: mix.label(),
                    threads,
                    durability: "off".into(),
                    metrics,
                    windows,
                    health,
                });
            }
        }
        let title = format!("Store scaling [{label}] workload {}", mix.label());
        print_series_table(&title, "threads", "Mops/s", &points);
        if let Some(snap) = last_snapshot {
            println!(
                "\n-- obs [{label}] mix {} (last configuration) --\n{}",
                mix.label(),
                snap.render_table()
            );
        }
        write_csv(
            &format!("store_scaling_{label}_{}", mix.label()),
            "threads",
            "mops",
            &points,
        );
    }
    last_trace
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Option<String> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut timeseries: Option<Duration> = None;
    let mut serve_addr: Option<String> = None;
    let mut slo: Option<obs::SloPolicy> = None;
    let mut with_obs = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--serve" => {
                serve_addr = args.get(i + 1).cloned();
                if serve_addr.is_none() {
                    eprintln!("--serve requires an address (e.g. 127.0.0.1:0)");
                    std::process::exit(2);
                }
                with_obs = true;
                i += 2;
            }
            "--slo" => {
                let Some(spec) = args.get(i + 1) else {
                    eprintln!("--slo requires a spec (key=value,... or \"\" for defaults)");
                    std::process::exit(2);
                };
                match obs::SloPolicy::parse(spec) {
                    Ok(p) => slo = Some(p),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
                with_obs = true;
                i += 2;
            }
            "--json" => {
                json_path = args.get(i + 1).map(PathBuf::from);
                if json_path.is_none() {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--trace" => {
                trace_path = args.get(i + 1).map(PathBuf::from);
                if trace_path.is_none() {
                    eprintln!("--trace requires a path");
                    std::process::exit(2);
                }
                with_obs = true;
                i += 2;
            }
            "--timeseries" => {
                timeseries = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .filter(|&ms| ms > 0)
                    .map(Duration::from_millis);
                if timeseries.is_none() {
                    eprintln!("--timeseries requires a window length in ms");
                    std::process::exit(2);
                }
                with_obs = true;
                i += 2;
            }
            "--obs" => {
                with_obs = true;
                i += 1;
            }
            other => {
                which = Some(other.to_string());
                i += 1;
            }
        }
    }
    let which = which.unwrap_or_else(|| "skiplist".into());
    // The health monitor consumes sampling windows, so --slo without
    // --timeseries turns sampling on at a 100 ms cadence.
    if slo.is_some() && timeseries.is_none() {
        timeseries = Some(Duration::from_millis(100));
    }
    // One server across every configuration; each installs its own
    // sources right after its store is built.
    let server = serve_addr.map(|addr| {
        match obs::ExportServer::spawn(addr.as_str(), obs::ExportSources::new()) {
            Ok(s) => {
                println!("serving on {}", s.local_addr());
                s
            }
            Err(e) => {
                eprintln!("--serve {addr}: bind failed: {e}");
                std::process::exit(2);
            }
        }
    });
    let mut records = Vec::new();
    let trace = match which.as_str() {
        "skiplist" => sweep(
            "skiplist",
            StructureKind::StoreSkipList,
            StructureKind::SkipListBundle,
            with_obs,
            timeseries,
            slo.as_ref(),
            server.as_ref(),
            &mut records,
        ),
        "citrus" => sweep(
            "citrus",
            StructureKind::StoreCitrus,
            StructureKind::CitrusBundle,
            with_obs,
            timeseries,
            slo.as_ref(),
            server.as_ref(),
            &mut records,
        ),
        "list" => sweep(
            "list",
            StructureKind::StoreList,
            StructureKind::ListBundle,
            with_obs,
            timeseries,
            slo.as_ref(),
            server.as_ref(),
            &mut records,
        ),
        other => {
            eprintln!("unknown backend {other:?}; expected skiplist|citrus|list");
            std::process::exit(2);
        }
    };
    if let Some(path) = trace_path {
        match workloads::write_trace_dump(&path, trace.as_deref()) {
            Ok(events) => println!("wrote {events} trace lines to {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = json_path {
        match write_json(&path, &records) {
            Ok(()) => println!(
                "\nwrote {} run records to {}",
                records.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
