//! Figure 4: index-operation throughput (Mops/s) of DBx1000-style TPC-C
//! (NEW_ORDER 50%, PAYMENT 45%, DELIVERY 5%, 10 warehouses) with the
//! bundled skip list (a) and bundled Citrus tree (b) as the database
//! indexes, compared against their Unsafe baselines.

use std::sync::Arc;

use dbsim::{run_tpcc, DynIndex, TpccConfig};
use workloads::{duration_ms, print_series_table, thread_counts, write_csv, Point, StructureKind};

fn factory_for(kind: StructureKind) -> Box<dyn Fn(usize) -> DynIndex + Send + Sync> {
    Box::new(move |threads: usize| workloads::make_structure(kind, threads))
}

fn main() {
    let cfg = TpccConfig::default();
    let pairs = [
        (
            "skiplist",
            StructureKind::SkipListBundle,
            StructureKind::SkipListUnsafe,
        ),
        (
            "citrus",
            StructureKind::CitrusBundle,
            StructureKind::CitrusUnsafe,
        ),
    ];
    for (label, bundled, unsafe_kind) in pairs {
        let mut points = Vec::new();
        for &threads in &thread_counts() {
            for kind in [bundled, unsafe_kind] {
                let factory = factory_for(kind);
                let t = run_tpcc(cfg, factory.as_ref(), threads, duration_ms());
                points.push(Point {
                    series: kind.name().to_string(),
                    x: threads.to_string(),
                    y: t.index_mops(),
                });
            }
        }
        let title = format!("Figure 4 [{label}] TPC-C index throughput");
        print_series_table(&title, "threads", "index Mops/s", &points);
        write_csv(&format!("fig4_{label}"), "threads", "index_mops", &points);
    }
    let _ = Arc::new(());
}
