//! Figure 4: index-operation throughput (Mops/s) of DBx1000-style TPC-C
//! (NEW_ORDER 50%, PAYMENT 45%, DELIVERY 5%, 10 warehouses) with the
//! bundled skip list (a) and bundled Citrus tree (b) as the database
//! indexes, compared against their Unsafe baselines.
//!
//! Beyond the paper: a third panel compares the **store-backed**
//! configuration (`store-txn` series — every index a tagged view over one
//! sharded `BundledStore`, NEW_ORDER's three-index insert committing as a
//! single cross-shard write transaction) against the same single-structure
//! bundled skip-list indexes, quantifying what the atomic multi-index
//! guarantee costs.

use std::sync::Arc;

use dbsim::{run_tpcc, run_tpcc_db, DynIndex, TpccConfig, TpccDb};
use workloads::{duration_ms, print_series_table, thread_counts, write_csv, Point, StructureKind};

fn factory_for(kind: StructureKind) -> Box<dyn Fn(usize) -> DynIndex + Send + Sync> {
    Box::new(move |threads: usize| workloads::make_structure(kind, threads))
}

fn main() {
    let cfg = TpccConfig::default();
    let pairs = [
        (
            "skiplist",
            StructureKind::SkipListBundle,
            StructureKind::SkipListUnsafe,
        ),
        (
            "citrus",
            StructureKind::CitrusBundle,
            StructureKind::CitrusUnsafe,
        ),
    ];
    // Panel (a)'s bundled skip-list measurements double as the per-index
    // baseline of the store panel below — no need to re-run them.
    let mut skiplist_baseline: Vec<Point> = Vec::new();
    for (label, bundled, unsafe_kind) in pairs {
        let mut points = Vec::new();
        for &threads in &thread_counts() {
            for kind in [bundled, unsafe_kind] {
                let factory = factory_for(kind);
                let t = run_tpcc(cfg, factory.as_ref(), threads, duration_ms());
                let point = Point {
                    series: kind.name().to_string(),
                    x: threads.to_string(),
                    y: t.index_mops(),
                };
                if kind == StructureKind::SkipListBundle {
                    skiplist_baseline.push(point.clone());
                }
                points.push(point);
            }
        }
        let title = format!("Figure 4 [{label}] TPC-C index throughput");
        print_series_table(&title, "threads", "index Mops/s", &points);
        write_csv(&format!("fig4_{label}"), "threads", "index_mops", &points);
    }

    // Store-backed TPC-C: one sharded store behind all indexes, NEW_ORDER
    // as one atomic cross-shard transaction, vs. the per-index baseline.
    let mut points = Vec::new();
    for &threads in &thread_counts() {
        let t = run_tpcc_db(
            Arc::new(TpccDb::store_backed(cfg, threads)),
            threads,
            duration_ms(),
        );
        points.push(Point {
            series: "store-txn".to_string(),
            x: threads.to_string(),
            y: t.index_mops(),
        });
    }
    points.extend(skiplist_baseline);
    print_series_table(
        "Figure 4 [store] store-backed TPC-C (atomic NEW_ORDER) vs per-index",
        "threads",
        "index Mops/s",
        &points,
    );
    write_csv("fig4_store", "threads", "index_mops", &points);
}
