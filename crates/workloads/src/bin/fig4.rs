//! Figure 4: index-operation throughput (Mops/s) of DBx1000-style TPC-C
//! (NEW_ORDER 50%, PAYMENT 45%, DELIVERY 5%, 10 warehouses) with the
//! bundled skip list (a) and bundled Citrus tree (b) as the database
//! indexes, compared against their Unsafe baselines.
//!
//! Beyond the paper: a third panel compares the **store-backed**
//! configuration (`store-txn` series — every index a tagged view over one
//! sharded `BundledStore`; NEW_ORDER commits as a cross-shard write
//! transaction, PAYMENT and DELIVERY as serializable read-write
//! transactions) against the same single-structure bundled skip-list
//! indexes, quantifying what the transactional guarantees cost. A fourth
//! panel isolates that cost on the store itself: commit throughput of
//! write-only `WriteTxn` batches vs serializable read-modify-write
//! `ReadWriteTxn`s of the same size (the gap is the price of validated
//! read sets).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dbsim::{run_tpcc, run_tpcc_db, DynIndex, TpccConfig, TpccDb};
use store::{uniform_splits, SkipListStore};
use txn::StoreTxnExt;
use workloads::{duration_ms, print_series_table, thread_counts, write_csv, Point, StructureKind};

fn factory_for(kind: StructureKind) -> Box<dyn Fn(usize) -> DynIndex + Send + Sync> {
    Box::new(move |threads: usize| workloads::make_structure(kind, threads))
}

/// Committed transactions per second on a sharded skip-list store, with
/// every worker either committing write-only batches (2 upserts) or
/// serializable read-modify-writes (2 validated reads feeding 2 upserts,
/// retried on validation abort).
fn store_commit_rate(threads: usize, dur_ms: u64, rw: bool) -> f64 {
    const KEY_RANGE: u64 = 50_000;
    let store = Arc::new(SkipListStore::<u64, u64>::new(
        threads,
        uniform_splits(8, KEY_RANGE),
    ));
    {
        let h = store.register();
        for k in (0..KEY_RANGE).step_by(2) {
            h.insert(k, k);
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..threads)
        .map(|w| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let committed = Arc::clone(&committed);
            std::thread::spawn(move || {
                let h = store.register();
                let mut seed = (w as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15);
                let mut local = 0u64;
                let next = move |s: &mut u64| {
                    *s ^= *s << 13;
                    *s ^= *s >> 7;
                    *s ^= *s << 17;
                    *s
                };
                while !stop.load(Ordering::Relaxed) {
                    let a = next(&mut seed) % KEY_RANGE;
                    let b = next(&mut seed) % KEY_RANGE;
                    if a == b {
                        continue;
                    }
                    if rw {
                        h.run_rw(|txn| {
                            let va = txn.get(&a).unwrap_or(0);
                            let vb = txn.get(&b).unwrap_or(0);
                            txn.set(a, va.wrapping_add(1)).set(b, vb.wrapping_add(1));
                        });
                    } else {
                        let mut txn = h.txn();
                        txn.set(a, a).set(b, b);
                        txn.commit();
                    }
                    local += 1;
                }
                committed.fetch_add(local, Ordering::Relaxed);
            })
        })
        .collect();
    let start = Instant::now();
    std::thread::sleep(Duration::from_millis(dur_ms));
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("fig4 store worker panicked");
    }
    committed.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let cfg = TpccConfig::default();
    let pairs = [
        (
            "skiplist",
            StructureKind::SkipListBundle,
            StructureKind::SkipListUnsafe,
        ),
        (
            "citrus",
            StructureKind::CitrusBundle,
            StructureKind::CitrusUnsafe,
        ),
    ];
    // Panel (a)'s bundled skip-list measurements double as the per-index
    // baseline of the store panel below — no need to re-run them.
    let mut skiplist_baseline: Vec<Point> = Vec::new();
    for (label, bundled, unsafe_kind) in pairs {
        let mut points = Vec::new();
        for &threads in &thread_counts() {
            for kind in [bundled, unsafe_kind] {
                let factory = factory_for(kind);
                let t = run_tpcc(cfg, factory.as_ref(), threads, duration_ms());
                let point = Point {
                    series: kind.name().to_string(),
                    x: threads.to_string(),
                    y: t.index_mops(),
                };
                if kind == StructureKind::SkipListBundle {
                    skiplist_baseline.push(point.clone());
                }
                points.push(point);
            }
        }
        let title = format!("Figure 4 [{label}] TPC-C index throughput");
        print_series_table(&title, "threads", "index Mops/s", &points);
        write_csv(&format!("fig4_{label}"), "threads", "index_mops", &points);
    }

    // Store-backed TPC-C: one sharded store behind all indexes, NEW_ORDER
    // as one atomic cross-shard transaction, vs. the per-index baseline.
    let mut points = Vec::new();
    for &threads in &thread_counts() {
        let t = run_tpcc_db(
            Arc::new(TpccDb::store_backed(cfg, threads)),
            threads,
            duration_ms(),
        );
        points.push(Point {
            series: "store-txn".to_string(),
            x: threads.to_string(),
            y: t.index_mops(),
        });
    }
    points.extend(skiplist_baseline);
    print_series_table(
        "Figure 4 [store] store-backed TPC-C (serializable txns) vs per-index",
        "threads",
        "index Mops/s",
        &points,
    );
    write_csv("fig4_store", "threads", "index_mops", &points);

    // Panel (d): the isolated cost of validated read sets — commit
    // throughput of write-only vs read-write transactions of the same
    // write size on one sharded store.
    let mut points = Vec::new();
    for &threads in &thread_counts() {
        for (series, rw) in [
            ("write-only commits/s", false),
            ("read-write commits/s", true),
        ] {
            points.push(Point {
                series: series.to_string(),
                x: threads.to_string(),
                y: store_commit_rate(threads, duration_ms(), rw),
            });
        }
    }
    print_series_table(
        "Figure 4 [store-txn-kinds] write-only vs read-write commit throughput",
        "threads",
        "commits/s",
        &points,
    );
    write_csv(
        "fig4_store_txn_kinds",
        "threads",
        "commits_per_sec",
        &points,
    );
}
