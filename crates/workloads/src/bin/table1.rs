//! Table 1 (Appendix B): % throughput overhead of enabling memory
//! reclamation (node EBR + bundle-entry recycling with a background cleanup
//! thread) relative to the leaky configuration, for cleanup delays
//! d ∈ {0, 1, 10, 100} ms and update percentages {0, 10, 50, 90, 100}.

use std::sync::Arc;
use std::time::Duration;

use ebr::ReclaimMode;
use skiplist::BundledSkipList;
use workloads::{
    duration_ms, print_series_table, run_workload, thread_counts, write_csv, Point, RunConfig,
    WorkloadMix,
};

const DELAYS_MS: [u64; 4] = [0, 1, 10, 100];
const UPDATE_PCTS: [u32; 5] = [0, 10, 50, 90, 100];

fn mix_for(update_pct: u32) -> WorkloadMix {
    // Keep 10% range queries where possible, contains fill the rest, as in
    // the paper's mixed workloads.
    let rq = if update_pct == 100 { 0 } else { 10 };
    WorkloadMix::new(update_pct, 100 - update_pct - rq, rq)
}

fn run(mode: ReclaimMode, delay: Option<Duration>, threads: usize, mix: WorkloadMix) -> f64 {
    let s = Arc::new(BundledSkipList::<u64, u64>::with_mode(threads + 1, mode));
    let recycler = delay.map(|d| s.spawn_recycler(threads, d));
    let cfg = RunConfig::new(threads, duration_ms(), RunConfig::TREE_KEY_RANGE, mix);
    let t = run_workload(&s, &cfg);
    drop(recycler);
    t.mops()
}

fn main() {
    let threads = *thread_counts().last().unwrap_or(&2);
    let mut points = Vec::new();
    for &u in &UPDATE_PCTS {
        let mix = mix_for(u);
        let leaky = run(ReclaimMode::Leaky, None, threads, mix);
        for &d in &DELAYS_MS {
            let reclaiming = run(
                ReclaimMode::Reclaim,
                Some(Duration::from_millis(d)),
                threads,
                mix,
            );
            let overhead_pct = if leaky > 0.0 {
                ((leaky - reclaiming) / leaky * 100.0).max(0.0)
            } else {
                0.0
            };
            points.push(Point {
                series: format!("d={d}ms"),
                x: format!("{u}% upd"),
                y: overhead_pct,
            });
        }
    }
    print_series_table(
        "Table 1: % overhead of enabling memory reclamation (bundled skip list)",
        "update %",
        "% overhead",
        &points,
    );
    write_csv("table1_reclamation", "update_pct", "overhead_pct", &points);
}
