//! §8.1 "Linked Lists": relative throughput of the bundled lazy list versus
//! the Unsafe lazy list for the five Figure 2 mixes (key range 10,000).
//! The paper reports that the best techniques (Bundle included) stay close
//! to Unsafe because traversal time dominates.

use std::sync::Arc;

use workloads::{
    duration_ms, make_structure, print_series_table, run_workload, thread_counts, write_csv, Point,
    RunConfig, StructureKind, WorkloadMix,
};

fn main() {
    let mut points = Vec::new();
    for mix in WorkloadMix::FIGURE2 {
        for &threads in &thread_counts() {
            let cfg = RunConfig::new(threads, duration_ms(), RunConfig::LIST_KEY_RANGE, mix);
            let unsafe_mops = {
                let s = make_structure(StructureKind::ListUnsafe, threads);
                run_workload(&Arc::clone(&s), &cfg).mops()
            };
            let bundle_mops = {
                let s = make_structure(StructureKind::ListBundle, threads);
                run_workload(&Arc::clone(&s), &cfg).mops()
            };
            points.push(Point {
                series: format!("t={threads}"),
                x: mix.label(),
                y: if unsafe_mops > 0.0 {
                    bundle_mops / unsafe_mops
                } else {
                    0.0
                },
            });
        }
    }
    print_series_table(
        "Lazy list: bundled throughput relative to Unsafe",
        "workload",
        "ratio",
        &points,
    );
    write_csv("list_relative", "workload", "relative_throughput", &points);
}
