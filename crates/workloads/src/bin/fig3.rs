//! Figure 3: throughput relative to Unsafe for increasing range query sizes
//! (1, 10, 50, 100, 250, 500) under a `50−0−50` mix, for the skip list
//! (top) and Citrus tree (bottom).

use std::sync::Arc;

use workloads::{
    duration_ms, make_structure, print_series_table, run_workload, thread_counts, write_csv, Point,
    RunConfig, StructureKind, WorkloadMix,
};

const RQ_SIZES: [u64; 6] = [1, 10, 50, 100, 250, 500];

fn sweep(label: &str, bundle: StructureKind) {
    let unsafe_kind = bundle.unsafe_counterpart();
    let mut points = Vec::new();
    for &rq_size in &RQ_SIZES {
        for &threads in &thread_counts() {
            let mut cfg = RunConfig::new(
                threads,
                duration_ms(),
                RunConfig::TREE_KEY_RANGE,
                WorkloadMix::HALF_UPDATES_HALF_RQ,
            );
            cfg.rq_size = rq_size;
            let reference = {
                let s = make_structure(unsafe_kind, threads);
                run_workload(&Arc::clone(&s), &cfg).mops()
            };
            let measured = {
                let s = make_structure(bundle, threads);
                run_workload(&Arc::clone(&s), &cfg).mops()
            };
            points.push(Point {
                series: format!("{} t={}", bundle.name(), threads),
                x: rq_size.to_string(),
                y: if reference > 0.0 {
                    measured / reference
                } else {
                    0.0
                },
            });
        }
    }
    let title = format!("Figure 3 [{label}] relative throughput vs Unsafe (50-0-50)");
    print_series_table(&title, "rq size", "ratio", &points);
    write_csv(
        &format!("fig3_{label}"),
        "rq_size",
        "relative_throughput",
        &points,
    );
}

fn main() {
    sweep("skiplist", StructureKind::SkipListBundle);
    sweep("citrus", StructureKind::CitrusBundle);
}
